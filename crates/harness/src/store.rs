//! The shared trace store: record each kernel's instruction stream once,
//! replay it for every prefetcher column, sweep point, and figure binary.
//!
//! Every run funneled through [`run_kernel`](crate::run_kernel) consults the
//! process-global store ([`TraceStore::global`]), so the whole experiment
//! matrix — `Matrix::run`, `Matrix::run_parallel` workers, the calibration
//! probe, and all the figure binaries — pays each kernel's generation cost
//! once per process instead of once per cell. With `SEMLOC_TRACE_DIR` set,
//! captures also persist in the `SEMLOC02` format so separate processes
//! (e.g. the individual `fig*` binaries) reuse each other's traces.
//!
//! Correctness rests on the prefix property documented in
//! [`semloc_workloads::replay`]: a capture at budget `B` replays
//! bit-identically to generation at any budget ≤ `B`, so one capture at the
//! largest budget needed serves the probe and the main run alike. The
//! golden-digest test pins generated == replayed == the published digest.

// semloc-lint rule D1 does not govern the harness crate: these maps are keyed
// caches that are never iterated, so their order cannot reach simulator output.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use semloc_trace::{DecodedChunk, DecodedTrace, FaultPlan, ShortWriter, TraceBuffer, BLOCK_LEN};
use semloc_workloads::{capture_kernel, CapturedTrace, Kernel, ReplayKernel};

use crate::pool::{pool_threads, run_sharded};
use crate::runner::{Digest, RunResult};

type Slot = Arc<Mutex<Option<Arc<CapturedTrace>>>>;

/// Default decoded-lane cache budget when `SEMLOC_DECODE_CACHE_MB` is
/// unset: enough for a full production matrix of 200k-instruction traces
/// (~33 B/instr × 16 kernels ≈ 106 MB) with headroom, small enough not to
/// matter on any machine that can run the simulator.
const DEFAULT_DECODE_CACHE_MB: usize = 256;

/// The decoded-lane LRU: fully-decoded traces keyed by trace key, bounded
/// by a byte budget over [`DecodedTrace::bytes`]. Purely an accelerator —
/// an evicted (or never-admitted) entry just means the engine streams the
/// varint decode instead, with bit-identical results.
#[derive(Debug, Default)]
#[allow(clippy::disallowed_types)] // keyed-only cache; iteration order never reaches output
struct DecodeCache {
    entries: HashMap<String, Arc<DecodedTrace>>,
    /// LRU order, oldest first. A handful of kernels per process, so the
    /// O(n) touch is noise next to a single decoded block.
    recency: Vec<String>,
    bytes: usize,
}

/// A snapshot of the decoded-lane cache counters, read by
/// [`TraceStore::decode_stats`]. The replay bench pins the decode-once
/// property on these ("≤ 1 miss per kernel per run"), and the CLI's
/// report surfaces them in both text and `--json` form.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Replays served from an already-decoded trace.
    pub hits: u64,
    /// Decodes performed (cache misses, including first-touch).
    pub misses: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
}

impl DecodeCacheStats {
    /// Hits as a fraction of all lookups, `0.0` when there were none.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A lazily-populated, thread-safe cache of captured kernel traces, keyed by
/// [`Kernel::trace_key`] (the kernel's full configuration — name, placement,
/// sizes, seed) and covering budgets per the prefix property.
#[derive(Debug, Default)]
#[allow(clippy::disallowed_types)] // keyed-only memo maps, never iterated (see note on the `use`)
pub struct TraceStore {
    /// Two-level locking: the outer map lock is held only to find/insert a
    /// slot, the per-key slot lock is held across capture — so the same
    /// kernel is captured exactly once while *different* kernels capture
    /// concurrently (the `run_parallel` workers hammer this).
    slots: Mutex<HashMap<String, Slot>>,
    /// Memoized calibration-probe results, keyed by
    /// `trace_key + probe config` (see [`TraceStore::probe_result`]).
    probes: Mutex<HashMap<String, RunResult>>,
    /// Memoized full-run results, keyed by
    /// `trace_key + prefetcher kind + config` (see [`TraceStore::result`]).
    /// Runs are deterministic, so a memoized clone is bit-identical to
    /// recomputation; the matrix, the storage sweep, and the figure
    /// binaries share repeated cells (every sweep re-runs the no-prefetch
    /// baseline and the default-context column) through this map.
    results: Mutex<HashMap<String, RunResult>>,
    /// Memoization opt-out for benchmarks measuring the un-memoized cost.
    disable_result_memo: bool,
    /// On-disk cache directory (`SEMLOC_TRACE_DIR`), if configured.
    dir: Option<PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    result_hits: AtomicU64,
    result_misses: AtomicU64,
    /// On-disk captures that were found but rejected as unreadable, corrupt,
    /// or inconsistent with their file-name metadata. Every injected storage
    /// fault must either land here (detected) or provably leave no cache
    /// file behind (tolerated) — the fault-injection suite asserts both.
    disk_rejects: AtomicU64,
    /// Fault injection for the save path (testing only): corruptions applied
    /// to the serialized bytes before they reach disk, and an optional write
    /// budget in bytes after which the underlying writer fails.
    save_faults: Mutex<SaveFaults>,
    /// Decoded-lane cache behind every [`TraceStore::replay`], so the whole
    /// matrix decodes each stream once instead of once per cell.
    decode: Mutex<DecodeCache>,
    /// Decode-cache byte budget override; `None` consults
    /// `SEMLOC_DECODE_CACHE_MB` (default [`DEFAULT_DECODE_CACHE_MB`],
    /// `0` disables decoding entirely).
    decode_budget: Option<usize>,
    decode_hits: AtomicU64,
    decode_misses: AtomicU64,
    decode_evictions: AtomicU64,
}

/// Injected failure modes for [`TraceStore::save_to_disk`].
#[derive(Debug, Default)]
struct SaveFaults {
    plan: FaultPlan,
    short_write: Option<usize>,
}

impl TraceStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store that also persists captures under `dir` (created on first
    /// write) in the `SEMLOC02` format.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        TraceStore {
            dir: Some(dir.into()),
            ..Self::default()
        }
    }

    /// An in-memory store with full-run result memoization disabled: every
    /// [`run_kernel_with_store`](crate::run_kernel_with_store) call
    /// simulates its cell even when an identical cell already ran. This is
    /// the "before" side of `bench_compare`'s warm-state rows; traces are
    /// still captured once (the pre-memo behaviour).
    pub fn without_result_memo() -> Self {
        TraceStore {
            disable_result_memo: true,
            ..Self::default()
        }
    }

    /// A store with an explicit decoded-lane cache budget in megabytes
    /// (`0` disables decoded replay — every engine streams the varint
    /// decode). Overrides `SEMLOC_DECODE_CACHE_MB`. This is how the replay
    /// bench builds its streaming "before" side and how tests exercise
    /// eviction with tiny budgets.
    pub fn with_decode_budget_mb(mut self, mb: usize) -> Self {
        self.decode_budget = Some(mb << 20);
        self
    }

    /// A store configured from the environment: on-disk caching under
    /// `SEMLOC_TRACE_DIR` when set, in-memory only otherwise.
    pub fn from_env() -> Self {
        match std::env::var_os("SEMLOC_TRACE_DIR") {
            Some(d) if !d.is_empty() => Self::with_dir(PathBuf::from(d)),
            _ => Self::new(),
        }
    }

    /// The process-global store every [`run_kernel`](crate::run_kernel)
    /// call goes through. Initialized from the environment on first use.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::from_env)
    }

    /// `(hits, misses)` — replays served from a previous capture vs.
    /// captures that had to run the generator.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// On-disk captures that were found but rejected (unreadable, corrupt,
    /// or inconsistent with their file-name metadata) and therefore
    /// regenerated. Nonzero means a storage fault was *detected*.
    pub fn disk_rejects(&self) -> u64 {
        self.disk_rejects.load(Ordering::Relaxed)
    }

    /// Corrupt every subsequent capture save with `plan` (fault-injection
    /// harness only): the serialized bytes are mutated in memory just
    /// before they reach disk, modelling silent media/tooling corruption.
    pub fn inject_save_faults(&self, plan: FaultPlan) {
        self.save_faults
            .lock()
            .expect("no panics hold the lock")
            .plan = plan;
    }

    /// Make every subsequent capture save fail after `budget` bytes
    /// (fault-injection harness only), modelling a full disk or a process
    /// killed mid-write. The interrupted temp file is cleaned up, so no
    /// cache entry appears — the fault is *tolerated* by regeneration.
    pub fn inject_short_write(&self, budget: usize) {
        self.save_faults
            .lock()
            .expect("no panics hold the lock")
            .short_write = Some(budget);
    }

    /// A replayable stand-in for `kernel` whose stream covers `budget`
    /// instructions (0 = the kernel's complete stream). Captures the kernel
    /// on first use (checking the on-disk cache first, when configured) and
    /// serves every later request for the same configuration from memory.
    pub fn replay(&self, kernel: &dyn Kernel, budget: u64) -> ReplayKernel {
        let key = kernel.trace_key();
        let slot = {
            let mut slots = self.slots.lock().expect("no panics hold the lock");
            slots.entry(key.clone()).or_default().clone()
        };
        let mut guard = slot.lock().expect("no panics hold the lock");
        if let Some(trace) = guard.as_ref() {
            if trace.covers(budget) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let trace = Arc::clone(trace);
                let decoded = self.decoded_for(&trace);
                return ReplayKernel::new(trace).with_decoded(decoded);
            }
        }
        // A stale (smaller) capture is superseded by one covering both the
        // old and the new budget, so earlier replays stay valid.
        let capture_budget = match guard.as_ref() {
            Some(prev) if budget != 0 && prev.budget != 0 => budget.max(prev.budget),
            _ => budget,
        };
        let trace = Arc::new(
            self.load_from_disk(kernel, &key, capture_budget)
                .unwrap_or_else(|| {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let t = capture_kernel(kernel, capture_budget);
                    self.save_to_disk(&t);
                    t
                }),
        );
        *guard = Some(Arc::clone(&trace));
        let decoded = self.decoded_for(&trace);
        ReplayKernel::new(trace).with_decoded(decoded)
    }

    /// The decode-cache byte budget: the explicit override if set, else
    /// `SEMLOC_DECODE_CACHE_MB` (default [`DEFAULT_DECODE_CACHE_MB`]).
    /// `0` disables the decoded replay path entirely.
    ///
    /// # Panics
    ///
    /// Panics if `SEMLOC_DECODE_CACHE_MB` is set but not a non-negative
    /// integer — a typo'd knob should fail loudly.
    fn decode_budget_bytes(&self) -> usize {
        if let Some(b) = self.decode_budget {
            return b;
        }
        match std::env::var("SEMLOC_DECODE_CACHE_MB") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(mb) => mb << 20,
                Err(_) => panic!(
                    "SEMLOC_DECODE_CACHE_MB must be a non-negative integer (MB), got {v:?} \
                     (unset it for the default, 0 to disable decoded replay)"
                ),
            },
            Err(_) => DEFAULT_DECODE_CACHE_MB << 20,
        }
    }

    /// Decoded lanes for `trace`, via the byte-budgeted LRU. Returns `None`
    /// when decoding is disabled or the trace alone exceeds the budget —
    /// callers then stream the varint decode instead (bit-identical, just
    /// slower). Called with the per-key slot lock held, so one kernel never
    /// decodes twice concurrently (the decode-once property the bench
    /// asserts via [`TraceStore::decode_stats`]).
    fn decoded_for(&self, trace: &Arc<CapturedTrace>) -> Option<Arc<DecodedTrace>> {
        let budget = self.decode_budget_bytes();
        // The decoded footprint is a pure function of the instruction
        // count, so admission is decided before paying for the decode.
        if budget == 0 || DecodedTrace::bytes_for(trace.buf.len()) > budget {
            return None;
        }
        {
            let mut c = self.decode.lock().expect("no panics hold the lock");
            match c.entries.get(&trace.key) {
                // A superseding (larger) capture invalidates the old decode.
                Some(d) if d.len() == trace.buf.len() => {
                    self.decode_hits.fetch_add(1, Ordering::Relaxed);
                    let d = Arc::clone(d);
                    c.recency.retain(|k| k != &trace.key);
                    c.recency.push(trace.key.clone());
                    return Some(d);
                }
                Some(stale) => {
                    c.bytes -= stale.bytes();
                    c.entries.remove(&trace.key);
                    c.recency.retain(|k| k != &trace.key);
                }
                None => {}
            }
        }
        // Decode outside the cache lock so different kernels decode
        // concurrently (the slot lock already serializes same-key callers).
        self.decode_misses.fetch_add(1, Ordering::Relaxed);
        let d = Arc::new(Self::decode_parallel(&trace.buf));
        let mut c = self.decode.lock().expect("no panics hold the lock");
        if !c.entries.contains_key(&trace.key) {
            c.bytes += d.bytes();
            c.entries.insert(trace.key.clone(), Arc::clone(&d));
            c.recency.push(trace.key.clone());
        }
        // Evict oldest-first down to the budget. The entry just inserted
        // fits on its own (checked above), so it is never the victim
        // unless something older is still over-budget ahead of it.
        while c.bytes > budget {
            let victim = c.recency.remove(0);
            if let Some(old) = c.entries.remove(&victim) {
                c.bytes -= old.bytes();
                self.decode_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Some(d)
    }

    /// Expand a captured buffer into decoded lanes, fanning
    /// [`BLOCK_LEN`]-aligned chunks over the shard pool. Chunk decode is
    /// independent (each seeks via the buffer's block marks), and
    /// [`DecodedTrace::assemble`] stitches results positionally, so the
    /// output is bit-identical at any thread count.
    fn decode_parallel(buf: &TraceBuffer) -> DecodedTrace {
        // 64 blocks = 16k instructions per chunk: large enough that the
        // per-chunk seek + assembly copy is noise, small enough to spread
        // a 200k-instruction trace across every worker.
        const CHUNK: usize = 64 * BLOCK_LEN;
        let total = buf.len();
        let starts: Vec<usize> = (0..total.div_ceil(CHUNK).max(1))
            .map(|c| c * CHUNK)
            .collect();
        let threads = pool_threads().min(starts.len());
        let chunks = run_sharded(threads, starts, |start| {
            DecodedChunk::decode(buf, start, CHUNK)
        });
        DecodedTrace::assemble(total, chunks)
    }

    /// Counters of the decoded-lane cache: replays served from an
    /// already-decoded trace vs. decodes performed vs. entries evicted by
    /// the byte budget. "≤ 1 miss per kernel per run" is the decode-once
    /// property the replay bench pins.
    pub fn decode_stats(&self) -> DecodeCacheStats {
        DecodeCacheStats {
            hits: self.decode_hits.load(Ordering::Relaxed),
            misses: self.decode_misses.load(Ordering::Relaxed),
            evictions: self.decode_evictions.load(Ordering::Relaxed),
        }
    }

    /// Memoized calibration-probe result. `key` must identify both the
    /// kernel configuration and the probe's [`SimConfig`](crate::SimConfig)
    /// (the runner uses `trace_key + the probe config's Debug rendering`);
    /// `compute` runs the probe on a miss. Runs are deterministic, so a
    /// memoized clone is bit-identical to recomputation.
    pub fn probe_result(&self, key: &str, compute: impl FnOnce() -> RunResult) -> RunResult {
        if let Some(r) = self
            .probes
            .lock()
            .expect("no panics hold the lock")
            .get(key)
        {
            return r.clone();
        }
        // Computed outside the lock; a racing worker may duplicate the
        // probe, but determinism makes either result correct.
        let r = compute();
        self.probes
            .lock()
            .expect("no panics hold the lock")
            .entry(key.to_string())
            .or_insert_with(|| r.clone());
        r
    }

    /// Memoized full-run result for `key` (built by the runner from the
    /// kernel's trace key, the prefetcher kind, and the config — the same
    /// identity the golden digest pins), if one was stored and memoization
    /// is enabled. Counts a result hit or miss either way.
    pub fn result(&self, key: &str) -> Option<RunResult> {
        if self.disable_result_memo {
            return None;
        }
        let r = self
            .results
            .lock()
            .expect("no panics hold the lock")
            .get(key)
            .cloned();
        match r {
            Some(_) => self.result_hits.fetch_add(1, Ordering::Relaxed),
            None => self.result_misses.fetch_add(1, Ordering::Relaxed),
        };
        r
    }

    /// Memoize a computed full-run result under `key`. A racing worker may
    /// insert first; determinism makes either copy correct, so the first
    /// insertion wins.
    pub fn memoize_result(&self, key: &str, r: &RunResult) {
        if self.disable_result_memo {
            return;
        }
        self.results
            .lock()
            .expect("no panics hold the lock")
            .entry(key.to_string())
            .or_insert_with(|| r.clone());
    }

    /// `(hits, misses)` of the full-run result memo — runs served from a
    /// previous identical run vs. cells that had to simulate.
    pub fn result_stats(&self) -> (u64, u64) {
        (
            self.result_hits.load(Ordering::Relaxed),
            self.result_misses.load(Ordering::Relaxed),
        )
    }

    /// Stable file name for a capture: kernel name (sanitized), FNV-1a of
    /// the full trace key, capture budget, and an `f`(ull)/`p`(artial)
    /// completeness flag.
    fn file_name(name: &str, key: &str, budget: u64, complete: bool) -> String {
        let sane: String = name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let mut d = Digest::new();
        d.str(key);
        format!(
            "{sane}-{:016x}-{budget}-{}.trace",
            d.finish(),
            if complete { 'f' } else { 'p' }
        )
    }

    /// Look for an on-disk capture of `key` covering `budget`. Any
    /// unreadable or corrupt file is ignored (the caller regenerates).
    fn load_from_disk(&self, kernel: &dyn Kernel, key: &str, budget: u64) -> Option<CapturedTrace> {
        let dir = self.dir.as_deref()?;
        let prefix = Self::file_name(kernel.name(), key, 0, true);
        let prefix = &prefix[..prefix.len() - "0-f.trace".len()];
        let mut best: Option<(u64, bool, PathBuf)> = None;
        for entry in fs::read_dir(dir).ok()?.flatten() {
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            let Some(rest) = fname.strip_prefix(prefix) else {
                continue;
            };
            let Some(rest) = rest.strip_suffix(".trace") else {
                continue;
            };
            let (b, complete) = match rest.rsplit_once('-') {
                Some((b, "f")) => (b, true),
                Some((b, "p")) => (b, false),
                _ => continue,
            };
            let Ok(file_budget) = b.parse::<u64>() else {
                continue;
            };
            let covers = complete || (budget != 0 && file_budget != 0 && file_budget >= budget);
            let better = match best.as_ref() {
                Some((bb, bc, _)) => (complete, file_budget) > (*bc, *bb),
                None => true,
            };
            if covers && better {
                best = Some((file_budget, complete, entry.path()));
            }
        }
        let (file_budget, complete, path) = best?;
        let buf = match Self::read_trace(&path) {
            Ok(buf) => buf,
            Err(_) => {
                self.disk_rejects.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        // A partial capture contains exactly its named budget of
        // instructions; anything else means the file name lies about the
        // payload (e.g. a valid trace renamed to claim more coverage).
        if !complete && buf.len() as u64 != file_budget {
            self.disk_rejects.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(CapturedTrace {
            name: kernel.name(),
            suite: kernel.suite(),
            key: key.to_string(),
            budget: file_budget,
            complete,
            buf,
        })
    }

    fn read_trace(path: &Path) -> io::Result<TraceBuffer> {
        TraceBuffer::read_semloc(io::BufReader::new(fs::File::open(path)?))
    }

    /// Persist a capture (atomically: temp file + rename). Failures are
    /// silent — the disk cache is an optimization, never a correctness
    /// dependency.
    fn save_to_disk(&self, trace: &CapturedTrace) {
        let Some(dir) = self.dir.as_deref() else {
            return;
        };
        let faults = self.save_faults.lock().expect("no panics hold the lock");
        let _ = Self::try_save(dir, trace, &faults);
    }

    fn try_save(dir: &Path, trace: &CapturedTrace, faults: &SaveFaults) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        let name = Self::file_name(trace.name, &trace.key, trace.budget, trace.complete);
        let tmp = dir.join(format!("{name}.tmp{}", std::process::id()));
        let written = Self::write_capture(&tmp, trace, faults);
        if let Err(e) = written {
            // An interrupted write must not leave a half-file that a later
            // rename could resurrect.
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        fs::rename(&tmp, dir.join(name))?;
        Ok(())
    }

    fn write_capture(path: &Path, trace: &CapturedTrace, faults: &SaveFaults) -> io::Result<()> {
        use io::Write as _;
        if faults.plan.is_empty() && faults.short_write.is_none() {
            // Fault-free fast path: stream straight to disk.
            return trace
                .buf
                .write_semloc(io::BufWriter::new(fs::File::create(path)?));
        }
        let mut bytes = Vec::new();
        trace.buf.write_semloc(&mut bytes)?;
        faults.plan.corrupt(&mut bytes);
        let file = fs::File::create(path)?;
        match faults.short_write {
            Some(budget) => {
                let mut w = ShortWriter::new(io::BufWriter::new(file), budget as u64);
                w.write_all(&bytes)?;
                w.flush()
            }
            None => {
                let mut w = io::BufWriter::new(file);
                w.write_all(&bytes)?;
                w.flush()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::prefetchers::PrefetcherKind;
    use crate::runner::run_kernel_with_store;
    use semloc_trace::RecordingSink;
    use semloc_workloads::kernel_by_name;

    #[test]
    fn second_replay_is_a_hit() {
        let store = TraceStore::new();
        let k = kernel_by_name("list").unwrap();
        store.replay(k.as_ref(), 10_000);
        store.replay(k.as_ref(), 10_000);
        store.replay(k.as_ref(), 5_000); // covered by the 10k capture
        assert_eq!(store.stats(), (2, 1));
    }

    #[test]
    fn larger_budget_recaptures_and_supersedes() {
        let store = TraceStore::new();
        let k = kernel_by_name("list").unwrap();
        store.replay(k.as_ref(), 5_000);
        let big = store.replay(k.as_ref(), 20_000);
        assert!(big.trace().covers(20_000));
        assert_eq!(store.stats(), (0, 2));
        // And the superseding capture now serves the original budget too.
        store.replay(k.as_ref(), 5_000);
        assert_eq!(store.stats(), (1, 2));
    }

    #[test]
    fn replay_stream_matches_generation() {
        let store = TraceStore::new();
        let k = kernel_by_name("mcf").unwrap();
        let replay = store.replay(k.as_ref(), 8_000);
        let mut a = RecordingSink::with_limit(8_000);
        k.run(&mut a);
        let mut b = RecordingSink::with_limit(8_000);
        replay.run(&mut b);
        assert_eq!(a.instrs(), b.instrs());
    }

    #[test]
    fn disk_cache_roundtrips_across_stores() {
        let dir = std::env::temp_dir().join(format!("semloc-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let k = kernel_by_name("list").unwrap();

        let writer = TraceStore::with_dir(&dir);
        writer.replay(k.as_ref(), 12_000);
        assert_eq!(writer.stats(), (0, 1));
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1, "one .trace file");

        // A fresh store (as another process would create) loads from disk
        // instead of regenerating.
        let reader = TraceStore::with_dir(&dir);
        let replay = reader.replay(k.as_ref(), 12_000);
        assert_eq!(reader.stats(), (1, 0), "disk load must count as a hit");
        let mut a = RecordingSink::with_limit(12_000);
        k.run(&mut a);
        let mut b = RecordingSink::with_limit(12_000);
        replay.run(&mut b);
        assert_eq!(a.instrs(), b.instrs(), "disk roundtrip must be bit-exact");

        // A request the on-disk capture cannot cover regenerates.
        let reader2 = TraceStore::with_dir(&dir);
        reader2.replay(k.as_ref(), 50_000);
        assert_eq!(reader2.stats(), (0, 1));

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_file_falls_back_to_generation() {
        let dir = std::env::temp_dir().join(format!("semloc-store-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let k = kernel_by_name("list").unwrap();
        let fname = TraceStore::file_name(k.name(), &k.trace_key(), 6_000, false);
        fs::write(dir.join(fname), b"SEMLOC02garbage").unwrap();

        let store = TraceStore::with_dir(&dir);
        let replay = store.replay(k.as_ref(), 6_000);
        assert_eq!(store.stats(), (0, 1), "corrupt file must not be a hit");
        let mut a = RecordingSink::with_limit(6_000);
        k.run(&mut a);
        let mut b = RecordingSink::with_limit(6_000);
        replay.run(&mut b);
        assert_eq!(a.instrs(), b.instrs());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn probe_results_are_memoized() {
        let store = TraceStore::new();
        let mut computed = 0;
        let compute = |n: &mut i32| {
            *n += 1;
            let k = kernel_by_name("array").unwrap();
            run_kernel_with_store(
                &store,
                k.as_ref(),
                &PrefetcherKind::None,
                &SimConfig::default().with_budget(5_000),
            )
        };
        let a = store.probe_result("k", || compute(&mut computed));
        let b = store.probe_result("k", || compute(&mut computed));
        assert_eq!(computed, 1, "second lookup must hit the memo");
        assert_eq!(a.stats_digest(), b.stats_digest());
    }

    #[test]
    fn concurrent_replays_capture_once_per_kernel() {
        let store = TraceStore::new();
        let kernels: Vec<_> = ["list", "array", "mcf"]
            .iter()
            .map(|n| kernel_by_name(n).unwrap())
            .collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in &kernels {
                        store.replay(k.as_ref(), 10_000);
                    }
                });
            }
        });
        let (hits, misses) = store.stats();
        assert_eq!(misses, 3, "each kernel captured exactly once");
        assert_eq!(hits, 9);
    }
}
