//! Experiment harness: assembles core + hierarchy + prefetcher + workload,
//! runs the paper's evaluation matrix and formats every table and figure.
//!
//! The flow mirrors the paper's methodology (§6–§7):
//!
//! 1. pick a [`SimConfig`] (Table 2 defaults),
//! 2. pick workloads from [`semloc_workloads::registry`] (Table 3),
//! 3. pick prefetchers via [`PrefetcherKind`] (the §7 competitors),
//! 4. [`run_kernel`] each combination and aggregate [`RunResult`]s into a
//!    [`Matrix`],
//! 5. print with [`report`] — speedups (Fig 12), MPKI (Figs 10/11), access
//!    classes (Fig 9), hit-depth CDFs (Fig 8), storage sweeps (Fig 13) and
//!    layout comparisons (Fig 14).

pub mod arena;
pub mod ckpt;
pub mod config;
pub mod diff;
pub mod engine;
pub mod interfere;
pub mod matrix;
pub mod mc;
pub mod pool;
pub mod prefetchers;
pub mod report;
pub mod runner;
pub mod store;
pub mod sweep;

pub use arena::{
    arena_run, default_cells, ArenaOpts, ArenaReport, CellScore, KernelScore, VerifyMode,
};
pub use ckpt::{decode_ckpt, encode_ckpt, CkptPayload, CkptStore, CKPT_MAGIC, CKPT_VERSION};
pub use config::SimConfig;
pub use diff::{diff_kernel, DiffReport, Divergence, TeePrefetcher};
pub use engine::{Engine, SimCheckpoint, SIM_CKPT_VERSION};
pub use interfere::{
    adversarial_search, coverage, AdvBench, AdvFinding, AdvParams, AdvScore, SearchConfig,
    BASELINES,
};
pub use matrix::Matrix;
pub use mc::{mc_digest, McCheckpoint, McConfig, McCore, McEngine, MC_CKPT_VERSION};
pub use pool::{pool_threads, run_sharded};
pub use prefetchers::PrefetcherKind;
pub use report::Table;
pub use runner::{
    run_kernel, run_kernel_uncached, run_kernel_with_store, run_resumable, RunResult, SpeedupError,
};
pub use store::{DecodeCacheStats, TraceStore};
pub use sweep::{
    ablation_variants, storage_sweep, storage_sweep_parallel, storage_sweep_parallel_with_store,
    storage_sweep_with_store, AblationVariant, SweepPoint,
};
