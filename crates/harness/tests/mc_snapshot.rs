//! Checkpoint/restore/fork bit-identity for the multi-core engine.
//!
//! The single-core engine's snapshot contract — pause anywhere, restore
//! into a cold engine, continue, and land on *exactly* the statistics of
//! an uninterrupted run; re-save and get byte-identical payloads — must
//! survive the jump to N cores + shared L2 + DRAM channel state. These
//! tests pause a 2-core interference run **mid-schedule** (inside a
//! composed phase, channels booked, MSHRs in flight, cores desynchronized
//! within a quantum) and pin:
//!
//! * restore + continue ≡ uninterrupted (full [`mc_digest`] equality),
//! * byte round-trip through [`McCheckpoint::to_bytes`] changes nothing,
//! * re-saving a restored engine is byte-identical (no hidden state
//!   outside the snapshot),
//! * a fork runs ahead without disturbing the paused original.

use std::sync::Arc;

use semloc_harness::{mc_digest, McCheckpoint, McConfig, McEngine, PrefetcherKind, SimConfig};
use semloc_workloads::{capture_kernel, kernel_by_name, Composer, ReplayKernel};

/// The 2-core scenario all tests share: a composed phase-shift schedule on
/// the learned prefetcher vs a streaming antagonist on stride.
fn engine() -> McEngine {
    let menu: Vec<_> = ["mcf", "list", "hashtest"]
        .iter()
        .map(|n| {
            let k = kernel_by_name(n).expect("registry kernel");
            Arc::new(capture_kernel(k.as_ref(), 30_000))
        })
        .collect();
    let sched = Composer::new(0x7a).phase_shift("snap-sched", &menu, 3, 6_000, 12_000);
    let antagonist = kernel_by_name("array").expect("registry kernel");
    McEngine::new(
        vec![
            (
                ReplayKernel::new(Arc::new(capture_kernel(&sched, 0))),
                PrefetcherKind::context(),
            ),
            (
                ReplayKernel::new(Arc::new(capture_kernel(antagonist.as_ref(), 25_000))),
                PrefetcherKind::Stride,
            ),
        ],
        &SimConfig::default().with_budget(0),
        &McConfig::default(),
    )
}

fn finish_digest(mut e: McEngine) -> u64 {
    e.run_to_end();
    let (results, shared) = e.finish();
    mc_digest(&results, &shared)
}

#[test]
fn restore_mid_schedule_and_continue_is_bit_identical() {
    let uninterrupted = finish_digest(engine());

    // Pause mid-run — a handful of quanta in, inside the composed
    // schedule, with DRAM channels booked and cores desynchronized.
    let mut warm = engine();
    for _ in 0..9 {
        warm.step_quantum();
    }
    assert!(!warm.done(), "pause point must be mid-schedule");
    let ckpt = McCheckpoint::from_bytes(&warm.checkpoint().to_bytes()).expect("byte round-trip");
    assert!(
        ckpt.cursors.iter().all(|&c| c > 0),
        "every core must have progressed before the pause"
    );

    let mut resumed = engine();
    resumed.restore(&ckpt).expect("restore into cold engine");
    assert_eq!(
        resumed.checkpoint().payload,
        ckpt.payload,
        "re-saving a restored engine must be byte-identical"
    );
    assert_eq!(
        finish_digest(resumed),
        uninterrupted,
        "restore + continue must match an uninterrupted multi-core run"
    );
}

#[test]
fn fork_runs_ahead_independently() {
    let mut e = engine();
    for _ in 0..6 {
        e.step_quantum();
    }
    let cursors: Vec<u64> = e.cores().iter().map(|c| c.cursor()).collect();
    let fork = e.fork();
    assert_eq!(
        fork.cores().iter().map(|c| c.cursor()).collect::<Vec<_>>(),
        cursors,
        "fork must resume at the parent's exact cursors"
    );
    let forked = finish_digest(fork);
    // The paused original is untouched and finishes to the same digest.
    assert_eq!(
        e.cores().iter().map(|c| c.cursor()).collect::<Vec<_>>(),
        cursors,
        "forking must not advance the parent"
    );
    assert_eq!(finish_digest(e), forked);
}

#[test]
fn shared_dram_state_is_part_of_the_snapshot() {
    // Restoring an *earlier* checkpoint into a further-run engine must
    // rewind the shared level too: continue from the restore and land on
    // the uninterrupted digest, not on state contaminated by the extra
    // quanta simulated before the rewind.
    let uninterrupted = finish_digest(engine());
    let mut e = engine();
    for _ in 0..4 {
        e.step_quantum();
    }
    let early = e.checkpoint();
    for _ in 0..8 {
        e.step_quantum();
    }
    e.restore(&early).expect("rewind to the earlier checkpoint");
    assert_eq!(
        finish_digest(e),
        uninterrupted,
        "rewinding must restore shared L2 + DRAM channel state exactly"
    );
}
