//! The trace store must be a pure performance optimization: for **every**
//! registered kernel, a store-routed run and a direct (uncached,
//! regenerate-every-time) run must produce bit-identical statistics. The
//! runner's own unit test covers one kernel × three prefetchers; this
//! sweep covers the whole registry — any kernel whose generator violates
//! the capture/replay prefix property, or whose `trace_key` under-describes
//! its configuration, fails here by name.

use semloc_harness::{
    run_kernel_uncached, run_kernel_with_store, PrefetcherKind, SimConfig, TraceStore,
};
use semloc_workloads::all_kernels;

#[test]
fn every_registered_kernel_replays_identically_through_the_store() {
    let cfg = SimConfig::default().with_budget(9_000);
    let pf = PrefetcherKind::context();
    let mut checked = 0;
    for kernel in all_kernels() {
        let store = TraceStore::new();
        let cached = run_kernel_with_store(&store, kernel.as_ref(), &pf, &cfg);
        let uncached = run_kernel_uncached(kernel.as_ref(), &pf, &cfg);
        assert_eq!(
            cached.cpu,
            uncached.cpu,
            "{}: cpu stats differ between store-routed and direct runs",
            kernel.name()
        );
        assert_eq!(
            cached.mem,
            uncached.mem,
            "{}: mem stats differ between store-routed and direct runs",
            kernel.name()
        );
        assert_eq!(
            cached.stats_digest(),
            uncached.stats_digest(),
            "{}: stats digest differs between store-routed and direct runs",
            kernel.name()
        );
        let (_, misses) = store.stats();
        assert!(misses >= 1, "{}: store never captured", kernel.name());
        checked += 1;
    }
    assert!(
        checked >= 20,
        "registry sweep looks truncated: only {checked} kernels"
    );
}
