//! Property tests for the zero-decode block replay path.
//!
//! The decoded-lane cache must be a *pure* performance optimization: for
//! random kernels, prefetchers and budgets — emphatically including
//! budgets that stop in the middle of a 256-instruction block — a store
//! with decoding enabled and a store forced onto the streaming varint
//! path must produce bit-identical statistics. Alongside, the capture
//! prefix property ([`CapturedTrace::covers`]) and the chunk-parallel
//! decoder's independence from chunk geometry are pinned over random
//! inputs, because all three are what the golden-digest test's stability
//! under `SEMLOC_DECODE_CACHE_MB` / thread-count changes rests on.

use proptest::prelude::*;

use semloc_harness::{run_kernel_with_store, PrefetcherKind, SimConfig, TraceStore};
use semloc_trace::{DecodedChunk, DecodedTrace, BLOCK_LEN};
use semloc_workloads::{all_kernels, capture_kernel};

proptest! {
    /// Decoded block replay and streaming decode are bit-identical for any
    /// (kernel, prefetcher, budget) cell, and the decoded store performs at
    /// most one decode for it (the decode-once property).
    #[test]
    fn decoded_replay_matches_streaming(
        kidx in 0usize..64,
        pf_pick in 0usize..4,
        blocks in 0u64..24,
        offset in 1u64..=256,
    ) {
        let kernels = all_kernels();
        let kernel = kernels[kidx % kernels.len()].as_ref();
        // offset=256 lands exactly on a block boundary; everything else
        // stops the run mid-block.
        let budget = blocks * BLOCK_LEN as u64 + offset;
        let pf = match pf_pick {
            0 => PrefetcherKind::Stride,
            1 => PrefetcherKind::GhbGdc,
            2 => PrefetcherKind::NextLine,
            _ => PrefetcherKind::context(),
        };
        let cfg = SimConfig::default().with_budget(budget);
        let decoded = TraceStore::new();
        let streaming = TraceStore::new().with_decode_budget_mb(0);
        let a = run_kernel_with_store(&decoded, kernel, &pf, &cfg);
        let b = run_kernel_with_store(&streaming, kernel, &pf, &cfg);
        prop_assert_eq!(
            a.stats_digest(), b.stats_digest(),
            "decoded vs streaming replay diverged: {} / {:?} @ {budget}",
            kernel.name(), pf
        );
        let s = decoded.decode_stats();
        prop_assert!(
            s.misses <= 1,
            "{} decoded {} times for one cell", kernel.name(), s.misses
        );
        prop_assert_eq!(
            streaming.decode_stats(),
            Default::default(),
            "a zero-budget store must never touch the decode cache"
        );
    }

    /// A capture taken at budget `b1` covers every smaller non-zero budget
    /// (the prefix property the whole store design rests on), and a
    /// claimed cover really holds enough instructions to serve it.
    #[test]
    fn capture_covers_is_the_prefix_property(
        kidx in 0usize..64,
        b1 in 1u64..4_000,
        b2 in 1u64..4_000,
    ) {
        let kernels = all_kernels();
        let kernel = kernels[kidx % kernels.len()].as_ref();
        let t = capture_kernel(kernel, b1);
        if b2 <= b1 {
            prop_assert!(
                t.covers(b2),
                "{}: capture at {b1} must cover {b2}", kernel.name()
            );
        }
        if t.covers(b2) && !t.complete {
            prop_assert!(
                t.buf.len() as u64 >= b2,
                "{}: claimed cover of {b2} with only {} instructions",
                kernel.name(), t.buf.len()
            );
        }
    }

    /// The chunk-parallel decoder is bit-identical to the streaming varint
    /// decode regardless of chunk geometry: every lane value of the
    /// assembled [`DecodedTrace`] matches the corresponding streamed
    /// [`Instr`], for random kernels, budgets and block-aligned chunk sizes.
    #[test]
    fn chunked_decode_matches_streaming_for_any_geometry(
        kidx in 0usize..64,
        budget in 1u64..5_000,
        chunk_blocks in 1usize..9,
    ) {
        let kernels = all_kernels();
        let kernel = kernels[kidx % kernels.len()].as_ref();
        let t = capture_kernel(kernel, budget);
        let chunk = chunk_blocks * BLOCK_LEN;
        let chunks: Vec<DecodedChunk> = (0..t.buf.len().div_ceil(chunk).max(1))
            .map(|c| DecodedChunk::decode(&t.buf, c * chunk, chunk))
            .collect();
        let assembled = DecodedTrace::assemble(t.buf.len(), chunks);
        prop_assert_eq!(assembled.len(), t.buf.len());
        for (i, streamed) in t.buf.iter().enumerate() {
            prop_assert_eq!(
                assembled.instr(i), streamed,
                "{}: lane mismatch at instruction {i} (chunk={chunk})",
                kernel.name()
            );
        }
    }
}
