//! Fault-injection suite: every deterministic failure mode of trace
//! storage must be either *detected* (the store rejects the poisoned file
//! with a typed error at the trace layer and regenerates) or *tolerated*
//! (the fault provably leaves no cache entry behind, so nothing poisoned
//! can ever be replayed) — never silently replayed as a wrong stream.
//!
//! Each case runs the full record → corrupt → reload pipeline through a
//! real [`TraceStore`] pair (a writer that saves under injected faults, a
//! fresh reader as a second process would see the cache) and then asserts
//! the recovered stream is bit-identical to direct generation.

use std::fs;
use std::io;
use std::path::PathBuf;

use semloc_harness::TraceStore;
use semloc_trace::{BufferSink, Fault, FaultPlan, RecordingSink, TraceBuffer};
use semloc_workloads::{kernel_by_name, Kernel};

const BUDGET: u64 = 6_000;

/// How an injected fault must be handled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    /// The reader store finds the poisoned file, rejects it with a typed
    /// error (counted in `disk_rejects`), and regenerates.
    Detected,
    /// The fault prevents a cache file from ever existing; the reader
    /// regenerates without having anything to reject.
    Tolerated,
}

struct Case {
    name: &'static str,
    plan: FaultPlan,
    short_write: Option<usize>,
    expect: Expect,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "bad-magic",
            plan: FaultPlan::with(Fault::BadMagic),
            short_write: None,
            expect: Expect::Detected,
        },
        Case {
            name: "bit-flip-payload",
            // Offset lands mid-payload for any realistically-sized trace
            // (the checksum makes every single-bit payload flip fatal).
            plan: FaultPlan::with(Fault::BitFlip {
                offset: 1_000,
                bit: 5,
            }),
            short_write: None,
            expect: Expect::Detected,
        },
        Case {
            name: "truncate",
            plan: FaultPlan::with(Fault::Truncate { keep: 900 }),
            short_write: None,
            expect: Expect::Detected,
        },
        Case {
            name: "count-skew",
            plan: FaultPlan::with(Fault::CountSkew { delta: 3 }),
            short_write: None,
            expect: Expect::Detected,
        },
        Case {
            name: "garbage-file",
            plan: FaultPlan::with(Fault::Garbage { len: 512 }),
            short_write: None,
            expect: Expect::Detected,
        },
        Case {
            name: "short-write",
            plan: FaultPlan::new(),
            short_write: Some(700),
            expect: Expect::Tolerated,
        },
    ]
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("semloc-fault-{tag}-{}", std::process::id()))
}

fn generated_stream(kernel: &str, budget: u64) -> Vec<semloc_trace::Instr> {
    let k = kernel_by_name(kernel).unwrap();
    let mut sink = RecordingSink::with_limit(budget as usize);
    k.run(&mut sink);
    sink.instrs().to_vec()
}

#[test]
fn every_fault_kind_is_detected_or_tolerated() {
    let reference = generated_stream("list", BUDGET);
    for case in cases() {
        let dir = temp_dir(case.name);
        let _ = fs::remove_dir_all(&dir);
        let k = kernel_by_name("list").unwrap();

        // Writer: capture once, saving under the injected fault.
        let writer = TraceStore::with_dir(&dir);
        writer.inject_save_faults(case.plan.clone());
        if let Some(budget) = case.short_write {
            writer.inject_short_write(budget);
        }
        writer.replay(k.as_ref(), BUDGET);

        let files = fs::read_dir(&dir).map(|d| d.flatten().count()).unwrap_or(0);
        match case.expect {
            Expect::Detected => {
                assert_eq!(
                    files, 1,
                    "{}: the poisoned file must exist on disk",
                    case.name
                )
            }
            Expect::Tolerated => {
                assert_eq!(
                    files, 0,
                    "{}: no cache file may survive the fault",
                    case.name
                )
            }
        }

        // Reader: a fresh store (second process) must never replay the
        // poisoned bytes.
        let reader = TraceStore::with_dir(&dir);
        let replay = reader.replay(k.as_ref(), BUDGET);
        match case.expect {
            Expect::Detected => assert_eq!(
                reader.disk_rejects(),
                1,
                "{}: the poisoned file must be rejected, not ignored",
                case.name
            ),
            Expect::Tolerated => assert_eq!(
                reader.disk_rejects(),
                0,
                "{}: nothing on disk, nothing to reject",
                case.name
            ),
        }
        let (hits, misses) = reader.stats();
        assert_eq!(
            (hits, misses),
            (0, 1),
            "{}: the reader must regenerate, not hit the cache",
            case.name
        );

        // Recovery must be bit-exact.
        let mut sink = RecordingSink::with_limit(BUDGET as usize);
        replay.run(&mut sink);
        assert_eq!(
            sink.instrs(),
            &reference[..],
            "{}: regenerated stream must match direct generation",
            case.name
        );

        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn metadata_lie_is_detected() {
    // Seventh failure mode: a *valid* trace file whose name claims more
    // coverage than its payload holds (renamed or mixed-up cache entries).
    // The trailer checksum cannot catch this — the store's metadata
    // validation must.
    let dir = temp_dir("metadata-lie");
    let _ = fs::remove_dir_all(&dir);
    let k = kernel_by_name("list").unwrap();

    let writer = TraceStore::with_dir(&dir);
    writer.replay(k.as_ref(), 2_000);
    let entries: Vec<_> = fs::read_dir(&dir).unwrap().flatten().collect();
    assert_eq!(entries.len(), 1);
    let honest = entries[0].path();
    let honest_name = honest.file_name().unwrap().to_string_lossy().into_owned();
    // The honest name ends in "-2000-p.trace"; promote its claim to 8000.
    let lying_name = honest_name.replace("-2000-p.trace", "-8000-p.trace");
    assert_ne!(honest_name, lying_name, "test premise: name must change");
    fs::rename(&honest, dir.join(lying_name)).unwrap();

    let reader = TraceStore::with_dir(&dir);
    let replay = reader.replay(k.as_ref(), 8_000);
    assert_eq!(
        reader.disk_rejects(),
        1,
        "a payload shorter than the name claims must be rejected"
    );
    assert_eq!(reader.stats(), (0, 1));
    let mut sink = RecordingSink::with_limit(8_000usize);
    replay.run(&mut sink);
    assert_eq!(sink.instrs(), &generated_stream("list", 8_000)[..]);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn empty_fault_plan_leaves_the_cache_fully_functional() {
    // Oracle-sensitivity control: with no fault injected, the very same
    // pipeline produces a clean cache hit and zero rejects — proving the
    // detections above come from the faults, not from the harness.
    let dir = temp_dir("control");
    let _ = fs::remove_dir_all(&dir);
    let k = kernel_by_name("list").unwrap();

    let writer = TraceStore::with_dir(&dir);
    writer.inject_save_faults(FaultPlan::new());
    writer.replay(k.as_ref(), BUDGET);

    let reader = TraceStore::with_dir(&dir);
    let replay = reader.replay(k.as_ref(), BUDGET);
    assert_eq!(reader.disk_rejects(), 0);
    assert_eq!(reader.stats(), (1, 0), "clean file must be a cache hit");
    let mut sink = RecordingSink::with_limit(BUDGET as usize);
    replay.run(&mut sink);
    assert_eq!(sink.instrs(), &generated_stream("list", BUDGET)[..]);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn detection_errors_are_typed_at_the_trace_layer() {
    // The store swallows read errors (by design — it regenerates); this
    // pins the *typed* errors the trace layer hands it for each fault.
    let k = kernel_by_name("list").unwrap();
    let mut sink = BufferSink::with_limit(500);
    k.run(&mut sink);
    let buf = sink.into_buffer();
    let mut clean = Vec::new();
    buf.write_semloc(&mut clean).unwrap();

    let kind_of = |plan: FaultPlan| {
        let mut bytes = clean.clone();
        plan.corrupt(&mut bytes);
        TraceBuffer::read_semloc(&bytes[..])
            .expect_err("corrupted trace must not parse")
            .kind()
    };

    assert_eq!(
        kind_of(FaultPlan::with(Fault::BadMagic)),
        io::ErrorKind::InvalidData
    );
    assert_eq!(
        kind_of(FaultPlan::with(Fault::BitFlip {
            offset: 1_000,
            bit: 5
        })),
        io::ErrorKind::InvalidData,
        "payload flip must fail the trailer checksum"
    );
    assert_eq!(
        kind_of(FaultPlan::with(Fault::CountSkew { delta: 1 })),
        io::ErrorKind::InvalidData
    );
    assert_eq!(
        kind_of(FaultPlan::with(Fault::Garbage { len: 256 })),
        io::ErrorKind::InvalidData
    );
    let trunc = kind_of(FaultPlan::with(Fault::Truncate { keep: 600 }));
    assert!(
        trunc == io::ErrorKind::UnexpectedEof || trunc == io::ErrorKind::InvalidData,
        "truncation must surface as EOF (or checksum failure at a record boundary), got {trunc:?}"
    );
}
