//! Golden statistics digest for the quick evaluation matrix.
//!
//! The hot-path work (single-pass context hashing, indexed prefetch queue,
//! flat cache arrays) and the record-once/replay-many trace store must be
//! pure performance changes: every simulated statistic has to stay
//! bit-identical. This test pins one fingerprint of the full quick matrix —
//! captured from the sequential runner before either rewrite — and asserts
//! that the sequential runner, the parallel runner, and explicit
//! trace-replay all still reproduce it exactly:
//!
//! `sequential == parallel == replay == GOLDEN`
//!
//! (The sequential/parallel runners go through the process-global
//! [`TraceStore`] since the store landed, so those two tests already
//! exercise store-backed replay; `replay_matches_golden` additionally pins
//! the explicit capture → [`ReplayKernel`] path.)
//!
//! If a future change *intends* to alter simulation behaviour, update
//! [`GOLDEN`] with the value printed by the failing assertion and record
//! why in CHANGES.md.
//!
//! **Why iteration order is part of this contract.** The digest folds
//! every counter of every cell, and several of those counters are fed by
//! code that *walks* containers: prefetch emission order decides MSHR
//! occupancy and which request gets rejected under pressure, eviction
//! scans decide which line a stats bump lands on, and the RNG stream is
//! consumed in whatever order exploration draws are made. A
//! `std::collections::HashMap`/`HashSet` randomizes its iteration order
//! per *process*, so a single order-sensitive walk of one would make this
//! digest differ between two runs of the same binary — the failure would
//! look like flakiness, not like the layout bug it is. That is exactly
//! what `semloc-lint` rule D1 (`no-std-hash-collections`) bans from
//! sim-state crates; the two allowed exceptions (the prefetch queue's
//! fixed-seed block index, the harness's keyed-only memo maps) are argued
//! inline at their declarations and re-audited by the lint on every CI
//! run.

use std::sync::Arc;

use semloc_harness::{Matrix, PrefetcherKind, SimConfig};
use semloc_workloads::{capture_kernel, kernel_by_name, KernelBox, ReplayKernel};

/// Digest of the quick matrix (array/list/mcf × none/stride/context),
/// captured from `Matrix::run` with the demand-refill cache fix in place
/// and before the hot-path rewrite.
const GOLDEN: u64 = 0xe1cb_22f1_96f5_5582;

fn kernels() -> Vec<KernelBox> {
    ["array", "list", "mcf"]
        .iter()
        .map(|n| kernel_by_name(n).expect("kernel registered"))
        .collect()
}

fn lineup() -> Vec<PrefetcherKind> {
    vec![PrefetcherKind::Stride, PrefetcherKind::context()]
}

/// On mismatch, don't just report the aggregate fingerprint — render the
/// per-cell digest table so the failing (kernel × prefetcher) cell is
/// named directly and can be compared across two CI logs.
fn assert_golden(m: &Matrix, what: &str) {
    if m.stats_digest() == GOLDEN {
        return;
    }
    let mut table = String::from("kernel       prefetcher         cell digest\n");
    for r in m.iter() {
        table.push_str(&format!(
            "{:<12} {:<18} {:#018x}\n",
            r.kernel,
            r.prefetcher,
            r.stats_digest()
        ));
    }
    panic!(
        "{what} quick-matrix stats diverged from the pinned golden digest \
         (got {:#018x}, want {GOLDEN:#018x}); the change is not \
         behaviour-preserving.\nPer-cell digests:\n{table}",
        m.stats_digest()
    );
}

#[test]
fn sequential_matches_golden() {
    let m = Matrix::run(&kernels(), &lineup(), &SimConfig::quick(), |_| {});
    assert_golden(&m, "sequential");
}

#[test]
fn parallel_matches_golden() {
    let m = Matrix::run_parallel(&kernels(), &lineup(), &SimConfig::quick(), 4, |_| {});
    assert_golden(&m, "parallel");
}

#[test]
fn default_pipeline_composition_matches_golden() {
    // The trait-composed pipeline (PR 9): a context column built by
    // explicitly composing `PipelineConfig::default()` onto the base
    // config must be indistinguishable from the plain `context()` lineup —
    // same golden digest, pinning the refactor as behaviour-preserving
    // through the whole matrix, not just the unit-level config equality.
    let composed =
        semloc_context::PipelineConfig::default().apply(semloc_context::ContextConfig::default());
    let m = Matrix::run(
        &kernels(),
        &[PrefetcherKind::Stride, PrefetcherKind::Context(composed)],
        &SimConfig::quick(),
        |_| {},
    );
    assert_golden(&m, "pipeline-composed");
}

#[test]
fn replay_matches_golden() {
    // Capture each kernel's stream once, then drive the whole matrix from
    // the replayed traces. Replay must be bit-identical to generation, so
    // the digest must equal the one pinned before the trace store existed.
    let cfg = SimConfig::quick();
    let replayed: Vec<KernelBox> = kernels()
        .iter()
        .map(|k| {
            let trace = capture_kernel(k.as_ref(), cfg.instr_budget);
            assert!(trace.covers(cfg.instr_budget));
            Box::new(ReplayKernel::new(Arc::new(trace))) as KernelBox
        })
        .collect();
    let m = Matrix::run(&replayed, &lineup(), &cfg, |_| {});
    assert_golden(&m, "replayed");
}
