//! Golden statistics digest for the quick evaluation matrix.
//!
//! The hot-path work (single-pass context hashing, indexed prefetch queue,
//! flat cache arrays) must be a pure performance change: every simulated
//! statistic has to stay bit-identical. This test pins one fingerprint of
//! the full quick matrix — captured from the sequential runner before the
//! rewrite — and asserts that both runners still reproduce it exactly.
//!
//! If a future change *intends* to alter simulation behaviour, update
//! [`GOLDEN`] with the value printed by the failing assertion and record
//! why in CHANGES.md.

use semloc_harness::{Matrix, PrefetcherKind, SimConfig};
use semloc_workloads::{kernel_by_name, KernelBox};

/// Digest of the quick matrix (array/list/mcf × none/stride/context),
/// captured from `Matrix::run` with the demand-refill cache fix in place
/// and before the hot-path rewrite.
const GOLDEN: u64 = 0xe1cb_22f1_96f5_5582;

fn kernels() -> Vec<KernelBox> {
    ["array", "list", "mcf"]
        .iter()
        .map(|n| kernel_by_name(n).expect("kernel registered"))
        .collect()
}

fn lineup() -> Vec<PrefetcherKind> {
    vec![PrefetcherKind::Stride, PrefetcherKind::context()]
}

#[test]
fn sequential_matches_golden() {
    let m = Matrix::run(&kernels(), &lineup(), &SimConfig::quick(), |_| {});
    assert_eq!(
        m.stats_digest(),
        GOLDEN,
        "sequential quick-matrix stats diverged from the pinned golden digest \
         (got {:#018x}); the change is not behaviour-preserving",
        m.stats_digest()
    );
}

#[test]
fn parallel_matches_golden() {
    let m = Matrix::run_parallel(&kernels(), &lineup(), &SimConfig::quick(), 4, |_| {});
    assert_eq!(
        m.stats_digest(),
        GOLDEN,
        "parallel quick-matrix stats diverged from the pinned golden digest \
         (got {:#018x})",
        m.stats_digest()
    );
}
