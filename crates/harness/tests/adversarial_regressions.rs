//! Pinned adversarial collapse kernels.
//!
//! The seeded search (`adversarial_search(42, SearchConfig::default(), …)`,
//! re-run by `bench_interfere`) discovered one parameter point per family
//! where the learned context prefetcher's tail coverage collapses while a
//! table baseline stays healthy. Those three points are pinned here as
//! named regression kernels with explicit accuracy/coverage bounds:
//!
//! * `adv-straddle` @ `cold_work: 9` — the hot/cold filler alternation
//!   straddles the 18–50 cycle bell-reward window on a stride-2 scan:
//!   GHB g/dc covers ~0.80 of tail demands, learned covers under 0.10.
//! * `adv-alias` @ `nodes: 501` — four shuffled chains aliasing one PC and
//!   object type: the learner's self-reported accuracy collapses below
//!   0.10 and even SMS (~0.13) covers more than it does.
//! * `adv-phaseflip` @ its default point (`stride_b: 17, flip_every: 96`)
//!   — the stride flip re-pays training latency every 96 elements: GHB
//!   re-locks within a few accesses (~0.47 coverage), learned stays under
//!   0.25.
//!
//! Every metric is over the adversarial *tail only* (counter deltas from
//! the shared mcf warmup point) and fully deterministic, so the bounds
//! carry generous margins yet can never flake. If a learner change moves
//! one of these numbers *across* a bound, that is the signal this suite
//! exists for: either the resilience genuinely improved (tighten the
//! bound and note it in CHANGES.md) or a regression shipped.

use semloc_harness::{adversarial_search, AdvBench, AdvParams, AdvScore, SearchConfig, SimConfig};
use semloc_workloads::{AliasChains, Kernel, PhaseFlip, RewardStraddle};

/// The searched collapse points (seed 42, default search config).
fn straddle() -> RewardStraddle {
    RewardStraddle {
        cold_work: 9,
        ..RewardStraddle::default()
    }
}

fn alias() -> AliasChains {
    AliasChains {
        nodes: 501,
        ..AliasChains::default()
    }
}

fn flip() -> PhaseFlip {
    PhaseFlip::default()
}

fn bench() -> AdvBench {
    AdvBench::new(&SearchConfig::default(), &SimConfig::default())
}

fn check(score: &AdvScore, what: &str, learned_below: f64, baseline_above: f64, gap_above: f64) {
    assert!(
        score.learned_coverage < learned_below,
        "{what}: learned tail coverage {:.4} no longer collapses below {learned_below}",
        score.learned_coverage
    );
    assert!(
        score.best_baseline_coverage > baseline_above,
        "{what}: best baseline ({}) tail coverage {:.4} fell below {baseline_above} — \
         the pattern stopped being easy for the tables",
        score.best_baseline,
        score.best_baseline_coverage
    );
    assert!(
        score.gap > gap_above,
        "{what}: resilience gap {:.4} shrank below {gap_above}",
        score.gap
    );
}

#[test]
fn pinned_collapse_points_still_collapse() {
    let b = bench();
    // Measured at pin time (tail coverage, deterministic):
    //   straddle  learned 0.0246, ghb-g/dc 0.8047, gap 0.7801
    //   alias     learned 0.0581, sms      0.1309, gap 0.0729
    //   phaseflip learned 0.1463, ghb-g/dc 0.4746, gap 0.3283
    let s = b
        .eval(&AdvParams::Straddle(straddle()))
        .expect("bench eval");
    check(&s, "adv-straddle", 0.10, 0.70, 0.60);

    let a = b.eval(&AdvParams::Alias(alias())).expect("bench eval");
    check(&a, "adv-alias", 0.10, 0.10, 0.03);
    assert!(
        a.learned_accuracy < 0.10,
        "adv-alias: context self-accuracy {:.4} no longer collapses under aliasing",
        a.learned_accuracy
    );

    let f = b.eval(&AdvParams::Flip(flip())).expect("bench eval");
    check(&f, "adv-phaseflip", 0.25, 0.40, 0.25);
}

#[test]
fn seeded_search_reproduces_the_pinned_points() {
    // The regression points above are not hand-tuned: the fixed-seed
    // hill-climb must rediscover all three from the family defaults.
    let findings = adversarial_search(42, &SearchConfig::default(), &SimConfig::default())
        .expect("adversarial search");
    let expected = [
        straddle().trace_key(),
        alias().trace_key(),
        flip().trace_key(),
    ];
    assert_eq!(findings.len(), expected.len());
    for (f, want) in findings.iter().zip(&expected) {
        assert_eq!(
            &f.params, want,
            "{}: the seeded search drifted off its pinned parameter point",
            f.family
        );
        assert!(
            f.gap > 0.0,
            "{}: searched point no longer shows a positive resilience gap",
            f.family
        );
    }
}
