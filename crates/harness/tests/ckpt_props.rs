//! Property tests over the checkpoint encodings: the `SIMC` simulation
//! checkpoint and the on-disk `SEMLOC-CKPT` envelope must round-trip
//! arbitrary payloads bit-exactly, and every decoder must reject foreign
//! or mangled inputs instead of misinterpreting them.

use proptest::prelude::*;

use semloc_harness::{decode_ckpt, encode_ckpt, CkptPayload, SimCheckpoint, SIM_CKPT_VERSION};

proptest! {
    #[test]
    fn sim_checkpoint_round_trips(
        fingerprint in any::<u64>(),
        cursor in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let ckpt = SimCheckpoint {
            version: SIM_CKPT_VERSION,
            fingerprint,
            cursor,
            payload,
        };
        let parsed = SimCheckpoint::from_bytes(&ckpt.to_bytes()).expect("round trip");
        prop_assert_eq!(parsed, ckpt);
    }

    #[test]
    fn sim_checkpoint_rejects_truncation_and_extension(
        fingerprint in any::<u64>(),
        cursor in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut in any::<u64>(),
        extra in 1usize..16,
    ) {
        let bytes = SimCheckpoint {
            version: SIM_CKPT_VERSION,
            fingerprint,
            cursor,
            payload,
        }
        .to_bytes();
        // Any strict prefix fails (UnexpectedEof at some field)...
        let keep = (cut % bytes.len() as u64) as usize;
        prop_assert!(SimCheckpoint::from_bytes(&bytes[..keep]).is_err());
        // ...and so does trailing garbage (expect_end).
        let mut long = bytes;
        long.extend(std::iter::repeat_n(0xA5u8, extra));
        prop_assert!(SimCheckpoint::from_bytes(&long).is_err());
    }

    #[test]
    fn semloc_ckpt_envelope_round_trips(
        fingerprint in any::<u64>(),
        is_final in any::<bool>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let kind = if is_final {
            CkptPayload::Final(payload)
        } else {
            CkptPayload::Mid(payload)
        };
        let bytes = encode_ckpt(&kind, fingerprint);
        prop_assert_eq!(decode_ckpt(&bytes, fingerprint), Some(kind));
    }

    #[test]
    fn semloc_ckpt_envelope_rejects_foreign_fingerprints(
        fingerprint in any::<u64>(),
        delta in 1u64..u64::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // `delta` is never 0 and never wraps back to 0, so `other` is
        // guaranteed to differ from `fingerprint`.
        let other = fingerprint.wrapping_add(delta);
        let bytes = encode_ckpt(&CkptPayload::Mid(payload), fingerprint);
        prop_assert_eq!(decode_ckpt(&bytes, other), None);
    }

    #[test]
    fn semloc_ckpt_envelope_rejects_any_bit_flip(
        fingerprint in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..96),
        flip in any::<u64>(),
    ) {
        let good = encode_ckpt(&CkptPayload::Final(payload), fingerprint);
        let bit = (flip % (good.len() as u64 * 8)) as usize;
        let mut bad = good;
        bad[bit / 8] ^= 1 << (bit % 8);
        prop_assert_eq!(decode_ckpt(&bad, fingerprint), None);
    }

    #[test]
    fn semloc_ckpt_envelope_rejects_truncation(
        fingerprint in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 0..96),
        cut in any::<u64>(),
    ) {
        let bytes = encode_ckpt(&CkptPayload::Mid(payload), fingerprint);
        let keep = (cut % bytes.len() as u64) as usize;
        prop_assert_eq!(decode_ckpt(&bytes[..keep], fingerprint), None);
    }
}
