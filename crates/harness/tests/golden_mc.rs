//! Golden statistics digests for the multi-core interference mode.
//!
//! Extends the golden-digest discipline to `semloc-interfere`: one pinned
//! fingerprint for a 2-core scenario (a composed phase-shift schedule vs a
//! streaming antagonist) and one for a 4-core mix, each folding every
//! core's full [`RunResult`] digest plus every shared-L2/DRAM counter.
//!
//! The multi-core engine steps cores round-robin over a fixed cycle
//! quantum and always streams the varint decode, so these digests must be
//! identical across `SEMLOC_POOL_THREADS`, every `SEMLOC_ACCEL` tier, and
//! decode-cache configurations — the CI `interference` job re-runs this
//! test under those environments to prove it. If a future change
//! *intends* to alter multi-core behaviour, update the constants with the
//! values printed by the failing assertion and record why in CHANGES.md.

use std::sync::Arc;

use semloc_harness::{mc_digest, McConfig, McEngine, PrefetcherKind, SimConfig};
use semloc_workloads::{capture_kernel, kernel_by_name, CapturedTrace, Composer, ReplayKernel};

/// Pinned digest of the 2-core scenario below.
const GOLDEN_MC_2CORE: u64 = 0xab4b_5695_c0af_7c78;

/// Pinned digest of the 4-core scenario below.
const GOLDEN_MC_4CORE: u64 = 0x6522_835d_e79a_e79a;

fn capture(name: &str, budget: u64) -> Arc<CapturedTrace> {
    let k = kernel_by_name(name).expect("registry kernel");
    Arc::new(capture_kernel(k.as_ref(), budget))
}

/// The schedule menu both scenarios draw phases from: a pointer-heavy SPEC
/// proxy, a streaming stencil, and a hash-table prober (the mcf→lbm→hash
/// mid-run phase change of the issue).
fn menu() -> Vec<Arc<CapturedTrace>> {
    ["mcf", "lbm", "hashtest"]
        .iter()
        .map(|n| capture(n, 40_000))
        .collect()
}

/// Budget 0: every core runs its entire (finite) composed stream.
fn cfg() -> SimConfig {
    SimConfig::default().with_budget(0)
}

fn two_core_digest() -> u64 {
    let m = menu();
    let sched = Composer::new(0x5e).phase_shift("mc2-sched", &m, 3, 8_000, 15_000);
    let mut e = McEngine::new(
        vec![
            (
                ReplayKernel::new(Arc::new(capture_kernel(&sched, 0))),
                PrefetcherKind::context(),
            ),
            (
                ReplayKernel::new(capture("array", 30_000)),
                PrefetcherKind::Stride,
            ),
        ],
        &cfg(),
        &McConfig::default(),
    );
    e.run_to_end();
    let (results, shared) = e.finish();
    assert_eq!(results.len(), 2);
    assert!(shared.demand_lookups > 0, "shared level never saw traffic");
    mc_digest(&results, &shared)
}

fn four_core_digest() -> u64 {
    let m = menu();
    let mut composer = Composer::new(0x5e);
    let sched_a = composer.phase_shift("mc4-a", &m, 3, 8_000, 15_000);
    let sched_b = composer.phase_shift("mc4-b", &m, 4, 5_000, 10_000);
    let mut e = McEngine::new(
        vec![
            (
                ReplayKernel::new(Arc::new(capture_kernel(&sched_a, 0))),
                PrefetcherKind::context(),
            ),
            (
                ReplayKernel::new(Arc::new(capture_kernel(&sched_b, 0))),
                PrefetcherKind::GhbGdc,
            ),
            (
                ReplayKernel::new(capture("list", 25_000)),
                PrefetcherKind::Sms,
            ),
            (
                ReplayKernel::new(capture("array", 25_000)),
                PrefetcherKind::Stride,
            ),
        ],
        &cfg(),
        &McConfig::default(),
    );
    e.run_to_end();
    let (results, shared) = e.finish();
    assert_eq!(results.len(), 4);
    mc_digest(&results, &shared)
}

#[test]
fn two_core_matches_golden() {
    let got = two_core_digest();
    assert_eq!(
        got, GOLDEN_MC_2CORE,
        "2-core interference digest diverged (got {got:#018x}, want \
         {GOLDEN_MC_2CORE:#018x}); the change is not behaviour-preserving"
    );
}

#[test]
fn four_core_matches_golden() {
    let got = four_core_digest();
    assert_eq!(
        got, GOLDEN_MC_4CORE,
        "4-core interference digest diverged (got {got:#018x}, want \
         {GOLDEN_MC_4CORE:#018x}); the change is not behaviour-preserving"
    );
}

#[test]
fn multi_core_digests_are_reproducible_in_process() {
    // Two fresh runs in the same process must agree bit-for-bit — no
    // hidden global state (RNG, maps with randomized iteration, clocks)
    // leaks into the multi-core path.
    assert_eq!(two_core_digest(), two_core_digest());
}
