//! Checkpoint/restore fidelity against the pinned golden matrix.
//!
//! The checkpointable engine is only trustworthy if interrupting a run is
//! *invisible*: for every cell of the golden quick matrix (the same
//! kernels × prefetchers the golden-digest suite pins), pausing mid-run,
//! serializing the checkpoint to bytes, restoring it into a cold engine,
//! and continuing must reproduce the uninterrupted statistics bit for bit.
//! The per-cell digests are folded with the same FNV-1a scheme
//! `Matrix::stats_digest` uses and compared against the pinned golden
//! fingerprint, so a checkpoint-path regression fails against the same
//! constant as a simulator regression.
//!
//! The second half exercises the on-disk `SEMLOC-CKPT` path end to end:
//! a killed run's mid-run checkpoint resumes from disk, a finished cell's
//! final checkpoint short-circuits simulation, and corrupted files of
//! every flavour are rejected in favour of a fresh (still bit-identical)
//! run.

use std::sync::Arc;

use semloc_harness::{
    run_kernel_uncached, run_resumable, CkptPayload, CkptStore, Engine, PrefetcherKind,
    SimCheckpoint, SimConfig,
};
use semloc_trace::{Fault, FaultPlan};
use semloc_workloads::{capture_kernel, kernel_by_name, ReplayKernel};

/// Same pinned fingerprint as `golden_digest.rs`.
const GOLDEN: u64 = 0xe1cb_22f1_96f5_5582;

const KERNELS: [&str; 3] = ["array", "list", "mcf"];

fn lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::context(),
    ]
}

fn replay_of(name: &str, budget: u64) -> ReplayKernel {
    let k = kernel_by_name(name).unwrap();
    ReplayKernel::new(Arc::new(capture_kernel(k.as_ref(), budget)))
}

/// FNV-1a fold of per-cell digests, mirroring `Matrix::stats_digest`
/// (kernel order, then prefetcher order).
fn fold(digests: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for d in digests {
        for b in d.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[test]
fn every_golden_cell_survives_checkpoint_restore_continue() {
    let cfg = SimConfig::quick();
    let mut digests = Vec::new();
    for kernel in KERNELS {
        let replay = replay_of(kernel, cfg.instr_budget);
        for kind in lineup() {
            // Uninterrupted reference for this cell.
            let reference = {
                let mut e = Engine::new(replay.clone(), &kind, &cfg);
                e.run_to_end();
                e.finish()
            };
            // Interrupt at several points through the run; each pause
            // round-trips the checkpoint through its byte encoding and a
            // cold engine before continuing.
            for pause in [1, cfg.instr_budget / 3, cfg.instr_budget / 2] {
                let mut first = Engine::new(replay.clone(), &kind, &cfg);
                first.run_to(pause);
                let bytes = first.checkpoint().to_bytes();
                drop(first); // the "killed" process

                let ckpt = SimCheckpoint::from_bytes(&bytes).unwrap();
                let mut resumed = Engine::new(replay.clone(), &kind, &cfg);
                resumed.restore(&ckpt).unwrap();
                assert_eq!(resumed.cursor(), pause);
                resumed.run_to_end();
                let r = resumed.finish();
                assert_eq!(
                    r.stats_digest(),
                    reference.stats_digest(),
                    "{kernel}/{}: resume from pause at {pause} diverged",
                    kind.label()
                );
            }
            digests.push(reference.stats_digest());
        }
    }
    assert_eq!(
        fold(&digests),
        GOLDEN,
        "checkpoint suite ran against different cells than the golden matrix"
    );
}

#[test]
fn disk_checkpoints_resume_and_short_circuit() {
    let cfg = SimConfig::quick();
    let kind = PrefetcherKind::context();
    let replay = replay_of("list", cfg.instr_budget);
    let reference = {
        let mut e = Engine::new(replay.clone(), &kind, &cfg);
        e.run_to_end();
        e.finish()
    };

    let dir = std::env::temp_dir().join(format!("semloc-ckpt-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CkptStore::with_dir(&dir);

    // "Kill" a run partway: persist its mid-run checkpoint exactly as the
    // resumable runner would have.
    let mut victim = Engine::new(replay.clone(), &kind, &cfg);
    victim.run_to(cfg.instr_budget / 2);
    let fp = victim.fingerprint();
    store.save(
        "list",
        fp,
        &CkptPayload::Mid(victim.checkpoint().to_bytes()),
    );
    drop(victim);

    // A restarted process resumes from disk and matches bit for bit.
    let resumed = run_resumable(&store, replay.clone(), &kind, &cfg);
    assert_eq!(resumed.stats_digest(), reference.stats_digest());
    let (_, loads, rejects) = store.stats();
    assert!(loads >= 1, "the mid-run checkpoint must have been loaded");
    assert_eq!(rejects, 0);

    // The finished run left a final checkpoint: the next invocation
    // short-circuits simulation entirely and still matches.
    match store.load("list", fp) {
        Some(CkptPayload::Final(_)) => {}
        other => panic!("expected a final checkpoint on disk, got {other:?}"),
    }
    let shortcut = run_resumable(&store, replay.clone(), &kind, &cfg);
    assert_eq!(shortcut.stats_digest(), reference.stats_digest());
    assert_eq!(shortcut.cpu, reference.cpu);
    assert_eq!(shortcut.mem, reference.mem);
    assert_eq!(shortcut.pf, reference.pf);
    assert_eq!(shortcut.learn, reference.learn);
    assert_eq!(shortcut.storage_bytes, reference.storage_bytes);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_disk_checkpoints_fall_back_to_a_fresh_run() {
    let cfg = SimConfig::default().with_budget(30_000);
    let kind = PrefetcherKind::Stride;
    let replay = replay_of("array", cfg.instr_budget);
    let reference = run_kernel_uncached(kernel_by_name("array").unwrap().as_ref(), &kind, &cfg);

    let dir = std::env::temp_dir().join(format!("semloc-ckpt-corrupt-{}", std::process::id()));
    let faults = [
        Fault::BitFlip { offset: 3, bit: 1 },
        Fault::BitFlip { offset: 25, bit: 7 },
        Fault::Truncate { keep: 30 },
        Fault::BadMagic,
        Fault::Garbage { len: 512 },
    ];
    for fault in faults {
        let _ = std::fs::remove_dir_all(&dir);
        let store = CkptStore::with_dir(&dir);
        let mut victim = Engine::new(replay.clone(), &kind, &cfg);
        victim.run_to(10_000);
        let fp = victim.fingerprint();
        store.inject_save_faults(FaultPlan::with(fault.clone()));
        store.save(
            "array",
            fp,
            &CkptPayload::Mid(victim.checkpoint().to_bytes()),
        );
        let r = run_resumable(&store, replay.clone(), &kind, &cfg);
        assert_eq!(
            r.stats_digest(),
            reference.stats_digest(),
            "{fault:?}: fresh run after rejection diverged"
        );
        assert!(
            store.stats().2 >= 1,
            "{fault:?}: corruption must be counted as a reject"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn on_disk_corruption_matrix_is_rejected() {
    // A real engine checkpoint on disk, bits flipped one at a time: each
    // mutation must fail validation (magic, version, fingerprint, length,
    // or FNV-1a checksum — the per-byte fold is bijective, so no flip can
    // cancel). The envelope-level matrix in `ckpt.rs` flips literally
    // every bit of a full `SEMLOC-CKPT` file; here a real multi-kilobyte
    // engine snapshot gets the exhaustive treatment on its header and
    // trailer plus a dense sample of the payload. Caches are shrunk so
    // the snapshot stays small enough to hammer.
    let mut cfg = SimConfig::default().with_budget(2_000);
    cfg.mem.l1 = semloc_mem::CacheConfig {
        size_bytes: 2048,
        ways: 2,
        line_bytes: 64,
        latency: 2,
        mshrs: 4,
    };
    cfg.mem.l2 = semloc_mem::CacheConfig {
        size_bytes: 8192,
        ways: 4,
        line_bytes: 64,
        latency: 20,
        mshrs: 8,
    };
    let kind = PrefetcherKind::None;
    let replay = replay_of("array", cfg.instr_budget);
    let mut e = Engine::new(replay, &kind, &cfg);
    e.run_to(1_000);
    let fp = e.fingerprint();

    let dir = std::env::temp_dir().join(format!("semloc-ckpt-matrix-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CkptStore::with_dir(&dir);
    store.save("array", fp, &CkptPayload::Mid(e.checkpoint().to_bytes()));

    // Locate the file the store wrote and take its canonical bytes.
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(entries.len(), 1);
    let path = &entries[0];
    let good = std::fs::read(path).unwrap();
    assert!(store.load("array", fp).is_some(), "canonical file loads");

    // Exhaustive over the header and trailer; dense coprime-stride sample
    // through the payload so the test stays fast while touching every
    // byte region.
    let total_bits = good.len() * 8;
    let header_bits = 21 * 8;
    let trailer_bits = 17 * 8;
    let mut bits: Vec<usize> = (0..header_bits.min(total_bits)).collect();
    bits.extend(total_bits.saturating_sub(trailer_bits)..total_bits);
    bits.extend((header_bits..total_bits.saturating_sub(trailer_bits)).step_by(7));
    for bit in bits {
        let mut bad = good.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(path, &bad).unwrap();
        assert_eq!(
            store.load("array", fp),
            None,
            "flip of bit {bit} was accepted"
        );
    }
    std::fs::write(path, &good).unwrap();
    assert!(store.load("array", fp).is_some());
    let _ = std::fs::remove_dir_all(&dir);
}
