//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the `rand` API it actually uses:
//! [`Rng`], [`RngExt`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256** seeded through
//! SplitMix64 — deterministic across platforms and runs, which is what the
//! simulator's reproducibility guarantees (and the golden-digest tests)
//! rely on. Statistical quality is far beyond what ε-greedy exploration and
//! workload shuffling need.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range` (half-open). Panics on an empty range.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types with a canonical "uniform over the whole domain" distribution.
pub trait Standard {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)`. Panics when the range is empty.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty random_range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's internal xoshiro256** state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a previously captured [`StdRng::state`].
        ///
        /// The restored generator continues the exact output stream of the
        /// captured one.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::{Rng, RngExt};

    /// Slice shuffling (Fisher–Yates).
    pub trait SliceRandom {
        /// Shuffle the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn range_draws_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_draws_cover_the_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut a = StdRng::seed_from_u64(0x5e11_0c8a);
        for _ in 0..17 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..64).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "64 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
