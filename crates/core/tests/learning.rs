//! Scenario tests of the context prefetcher's learning behaviour, driven
//! through the raw `Prefetcher` interface (no core model).

use semloc_context::{ContextConfig, ContextPrefetcher};
use semloc_mem::{MemPressure, PrefetchReq, Prefetcher};
use semloc_trace::{AccessContext, SemanticHints};

fn pressure() -> MemPressure {
    MemPressure {
        l1_mshr_free: 4,
        l2_mshr_free: 20,
    }
}

/// A deterministic driver that accepts every issued prefetch.
struct Driver {
    p: ContextPrefetcher,
    out: Vec<PrefetchReq>,
    seq: u64,
    issued: Vec<u64>,
}

impl Driver {
    fn new(cfg: ContextConfig) -> Self {
        Driver {
            p: ContextPrefetcher::new(cfg),
            out: Vec::new(),
            seq: 0,
            issued: Vec::new(),
        }
    }

    fn access(&mut self, pc: u64, addr: u64, reg1: u64, hints: Option<SemanticHints>) {
        let mut c = AccessContext::bare(self.seq, pc, addr, false);
        c.reg1 = reg1;
        c.hints = hints;
        self.out.clear();
        self.p.on_access(&c, pressure(), &mut self.out);
        for r in &self.out {
            self.p.on_issue_result(r.tag, true);
            self.issued.push(r.addr);
        }
        self.seq += 1;
    }
}

/// Drive a repeating chain of blocks (32-byte) through the prefetcher.
fn drive_chain(d: &mut Driver, blocks: &[u64], laps: usize) {
    let hints = SemanticHints::link(1, 0);
    for _ in 0..laps {
        for &b in blocks {
            d.access(0x400, b << 5, b, Some(hints));
        }
    }
}

#[test]
fn chain_coverage_grows_with_training() {
    // 64 blocks, consecutive-ish offsets (encodable deltas), many laps.
    let blocks: Vec<u64> = (0..64u64).map(|i| 10_000 + i * 3 % 190 + i).collect();
    let mut d = Driver::new(ContextConfig::default());
    drive_chain(&mut d, &blocks, 5);
    let early = d.p.learn_stats().hits;
    drive_chain(&mut d, &blocks, 40);
    let late = d.p.learn_stats().hits;
    assert!(
        late > early * 4,
        "hits must accumulate with training ({early} -> {late})"
    );
    assert!(d.p.learn_stats().prediction_accuracy() > 0.5);
}

#[test]
fn wide_deltas_reach_beyond_narrow_range() {
    // A two-phase chain whose step exceeds the i8 range (±127 blocks).
    let blocks: Vec<u64> = (0..40u64).map(|i| 50_000 + i * 500).collect();
    let mut narrow = Driver::new(ContextConfig::default());
    let wide_cfg = ContextConfig {
        delta_bits: 16,
        ..ContextConfig::default()
    };
    let mut wide = Driver::new(wide_cfg);
    drive_chain(&mut narrow, &blocks, 60);
    drive_chain(&mut wide, &blocks, 60);
    let n = narrow.p.learn_stats();
    let w = wide.p.learn_stats();
    assert!(
        n.collected == 0,
        "500-block steps cannot fit 8-bit deltas (collected {})",
        n.collected
    );
    assert!(n.delta_overflow > 0);
    assert!(w.collected > 0, "16-bit deltas must capture the pattern");
    assert!(
        w.hits > 100,
        "wide config must predict the long-stride chain, hits={}",
        w.hits
    );
}

#[test]
fn reducer_splits_weak_shared_contexts() {
    // Two interleaved chains sharing one PC, distinguishable only by the
    // pointer value in reg1: the coarse context cannot predict (conflicting
    // deltas), so the reducer must specialize it.
    let a: Vec<u64> = (0..32u64).map(|i| 20_000 + i * 7).collect();
    let b: Vec<u64> = (0..32u64).map(|i| 30_000 + i * 11).collect();
    let mut d = Driver::new(ContextConfig::default());
    let hints = SemanticHints::link(2, 8);
    for _ in 0..80 {
        for i in 0..32 {
            d.access(0x600, a[i] << 5, a[i], Some(hints));
            d.access(0x600, b[i] << 5, b[i], Some(hints));
        }
    }
    assert!(
        d.p.reducer().activations() > 0,
        "interleaved chains must trigger context splitting"
    );
}

#[test]
fn deterministic_across_identical_runs() {
    let blocks: Vec<u64> = (0..50u64).map(|i| 40_000 + i * 2).collect();
    let run = || {
        let mut d = Driver::new(ContextConfig::default());
        drive_chain(&mut d, &blocks, 30);
        (
            d.issued.clone(),
            d.p.learn_stats().hits,
            d.p.learn_stats().collected,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn seed_changes_exploration_not_correctness() {
    let blocks: Vec<u64> = (0..50u64).map(|i| 60_000 + i * 2).collect();
    let run = |seed: u64| {
        let cfg = ContextConfig {
            seed,
            ..ContextConfig::default()
        };
        let mut d = Driver::new(cfg);
        drive_chain(&mut d, &blocks, 30);
        d.p.learn_stats().prediction_accuracy()
    };
    let a = run(1);
    let b = run(2);
    assert!(a > 0.4 && b > 0.4, "both seeds must learn ({a:.2}, {b:.2})");
}

#[test]
fn storage_scales_with_configuration() {
    let base = ContextConfig::default();
    let mut wide = base.clone();
    wide.delta_bits = 16;
    assert!(
        wide.storage_bytes() > base.storage_bytes(),
        "wide deltas cost storage"
    );
    let small = ContextConfig::default().with_cst_entries(256);
    assert!(small.storage_bytes() < base.storage_bytes());
}

#[test]
fn drain_feedback_penalizes_outstanding_predictions() {
    let blocks: Vec<u64> = (0..64u64).map(|i| 70_000 + i).collect();
    let mut d = Driver::new(ContextConfig::default());
    drive_chain(&mut d, &blocks, 20);
    let before = d.p.learn_stats().expired;
    d.p.drain_feedback();
    let after = d.p.learn_stats().expired;
    assert!(after >= before);
    // Draining twice is idempotent.
    d.p.drain_feedback();
    assert_eq!(d.p.learn_stats().expired, after);
}

#[test]
fn frozen_reducer_never_splits() {
    let a: Vec<u64> = (0..32u64).map(|i| 20_000 + i * 7).collect();
    let b: Vec<u64> = (0..32u64).map(|i| 30_000 + i * 11).collect();
    let cfg = ContextConfig {
        freeze_reducer: true,
        ..ContextConfig::default()
    };
    let mut d = Driver::new(cfg);
    let hints = SemanticHints::link(2, 8);
    for _ in 0..50 {
        for i in 0..32 {
            d.access(0x600, a[i] << 5, a[i], Some(hints));
            d.access(0x600, b[i] << 5, b[i], Some(hints));
        }
    }
    assert_eq!(d.p.reducer().activations(), 0);
    assert_eq!(d.p.reducer().deactivations(), 0);
}
