//! The Context-States Table (§5, Fig 6/7).
//!
//! A direct-mapped table binding reduced contexts to up to four candidate
//! address deltas, each with a 1-byte score — "the space of possible
//! actions for the exploration/exploitation of each stored context". Deltas
//! are at block granularity (32-byte blocks by default, §7.3) relative to
//! the address that anchored the context, and replacement within an entry
//! is score-based.

use crate::attrs::ContextKey;
use semloc_bandit::scored::Replacement;
use semloc_bandit::ScoredSet;
use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot};

/// Candidate links per CST entry (Table 2: 4).
pub const LINKS: usize = 4;

/// Outcome of inserting a context→delta candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddOutcome {
    /// The candidate was added to an existing entry with a free slot (or
    /// was already present).
    Stored,
    /// The candidate displaced the lowest-scoring existing link, whose
    /// score is carried here. Displacing a *proven* (positively scored)
    /// link is the *overload* signal for the reducer: too many useful
    /// candidates compete for one reduced context. Displacing unproven
    /// noise is ordinary exploration.
    Evicted(i8),
    /// The entry was (re)allocated for this context — the *underload*
    /// signal (contexts spread over too many unique states).
    Allocated,
}

#[derive(Clone, Debug)]
struct Entry {
    tag: u8,
    valid: bool,
    links: ScoredSet<i16, LINKS>,
    /// Last full-context hash observed at this entry (alternation sketch
    /// for the §4.4/§5 ref-count overload signal).
    last_full: u16,
}

/// The direct-mapped context-states table.
#[derive(Clone, Debug)]
pub struct ContextStatesTable {
    entries: Vec<Entry>,
    // semloc-lint: allow(snapshot-field-coverage): slot count is construction-time config; save derives it from entries.len(), restore validates against it
    count: usize,
    // semloc-lint: allow(snapshot-field-coverage): link replacement policy is construction-time config, not run state
    replacement: Replacement,
}

impl ContextStatesTable {
    /// A table with `entries` slots (power of two) and the given link
    /// replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize, replacement: Replacement) -> Self {
        assert!(entries.is_power_of_two(), "CST size must be a power of two");
        ContextStatesTable {
            entries: vec![
                Entry {
                    tag: 0,
                    valid: false,
                    links: ScoredSet::new(replacement),
                    last_full: 0
                };
                entries
            ],
            count: entries,
            replacement,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the table has zero entries (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn slot(&self, key: ContextKey) -> usize {
        key.cst_index(self.count)
    }

    /// Insert a candidate delta for `key` (data collection). Allocates the
    /// entry on a tag miss.
    #[allow(clippy::expect_used)]
    pub fn add_candidate(&mut self, key: ContextKey, delta: i16) -> AddOutcome {
        let idx = self.slot(key);
        let tag = key.cst_tag();
        let replacement = self.replacement;
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            *e = Entry {
                tag,
                valid: true,
                links: ScoredSet::new(replacement),
                last_full: 0,
            };
            e.links.insert(delta);
            return AddOutcome::Allocated;
        }
        if e.links.len() == LINKS && e.links.score_of(delta).is_none() {
            // semloc-lint: allow(no-unwrap): insert into a full set without a matching slot always evicts
            let (_, score) = e.links.insert(delta).expect("full entry evicts");
            AddOutcome::Evicted(score)
        } else {
            e.links.insert(delta);
            AddOutcome::Stored
        }
    }

    /// The stored candidates for `key`, if the context is present (used by
    /// the prediction unit; never allocates).
    pub fn lookup(&self, key: ContextKey) -> Option<&ScoredSet<i16, LINKS>> {
        let e = &self.entries[self.slot(key)];
        (e.valid && e.tag == key.cst_tag()).then_some(&e.links)
    }

    /// Apply a reward to the (context, delta) pair. Returns `false` when
    /// the pair is no longer stored (entry replaced or link evicted since
    /// the prediction — the reward is simply lost, as in hardware).
    pub fn reward(&mut self, key: ContextKey, delta: i16, reward: i32) -> bool {
        self.reward_capped(key, delta, reward, i8::MAX)
    }

    /// Like [`ContextStatesTable::reward`], but positive rewards cannot
    /// raise the score above `cap` (partial credit for late hits).
    pub fn reward_capped(&mut self, key: ContextKey, delta: i16, reward: i32, cap: i8) -> bool {
        let idx = self.slot(key);
        let tag = key.cst_tag();
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            e.links.reward_capped(delta, reward, cap)
        } else {
            false
        }
    }

    /// Observe a lookup of `key` routed from full-context hash `full`.
    /// Returns `true` when this entry is *shared and weak*: a different
    /// full context used it since the last observation (many reducer
    /// entries point here — the §5 ref-count overload cue) while its best
    /// candidate has not proven itself. Good coarse contexts (strong best
    /// score) are never reported, so useful shared contexts survive.
    pub fn note_shared_weak(&mut self, key: ContextKey, full: u16, strength_bar: i8) -> bool {
        let idx = self.slot(key);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != key.cst_tag() {
            return false;
        }
        let alternated = e.last_full != full;
        e.last_full = full;
        let weak = e.links.best().is_none_or(|(_, s)| s < strength_bar);
        alternated && weak
    }

    /// Number of valid entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }

    /// Iterate valid entries as `(index, ranked (delta, score) list)` —
    /// backs the `explore_contexts` example and debugging dumps.
    pub fn dump(&self) -> impl Iterator<Item = (usize, Vec<(i16, i8)>)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.valid)
            .map(|(i, e)| (i, e.links.ranked()))
    }
}

impl Snapshot for ContextStatesTable {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"CST0", 1);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u8(e.tag);
            w.put_bool(e.valid);
            w.put_u16(e.last_full);
            w.put_u32(e.links.clock());
            w.put_u8(e.links.len() as u8);
            for (delta, score, inserted_at) in e.links.slots_raw() {
                w.put_i16(delta);
                w.put_i8(score);
                w.put_u32(inserted_at);
            }
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"CST0", 1)?;
        let n = r.get_len()?;
        if n != self.count {
            return Err(snap_err(format!(
                "CST snapshot has {n} entries, table expects {}",
                self.count
            )));
        }
        let mut slots: Vec<(i16, i8, u32)> = Vec::with_capacity(LINKS);
        for e in &mut self.entries {
            e.tag = r.get_u8()?;
            e.valid = r.get_bool()?;
            e.last_full = r.get_u16()?;
            let clock = r.get_u32()?;
            let links = r.get_u8()? as usize;
            slots.clear();
            for _ in 0..links {
                let delta = r.get_i16()?;
                let score = r.get_i8()?;
                let inserted_at = r.get_u32()?;
                slots.push((delta, score, inserted_at));
            }
            e.links.restore_raw(clock, &slots)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(v: u32) -> ContextKey {
        ContextKey(v & 0x7ffff)
    }

    fn cst() -> ContextStatesTable {
        ContextStatesTable::new(64, Replacement::LowestScore)
    }

    #[test]
    fn collection_then_prediction_roundtrip() {
        let mut t = cst();
        let k = key(0x123);
        assert_eq!(t.add_candidate(k, 3), AddOutcome::Allocated);
        assert_eq!(t.add_candidate(k, -2), AddOutcome::Stored);
        let links = t.lookup(k).expect("context present");
        assert_eq!(links.len(), 2);
        assert!(links.score_of(3).is_some() && links.score_of(-2).is_some());
    }

    #[test]
    fn lookup_never_allocates() {
        let t = cst();
        assert!(t.lookup(key(0x456)).is_none());
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn tag_conflict_reallocates_entry() {
        let mut t = cst();
        // Same 6-bit index, different tag bits (bits 11+).
        let a = key(0x0800 | 5);
        let b = key(0x1000 | 5);
        t.add_candidate(a, 1);
        assert_eq!(t.add_candidate(b, 2), AddOutcome::Allocated);
        assert!(t.lookup(a).is_none(), "conflicting context evicted");
        assert!(t.lookup(b).is_some());
    }

    #[test]
    fn full_entry_insert_reports_eviction() {
        let mut t = cst();
        let k = key(7);
        for d in 1..=4i16 {
            t.add_candidate(k, d);
        }
        assert!(matches!(t.add_candidate(k, 5), AddOutcome::Evicted(_)));
        // Re-inserting an already-present delta is not an eviction.
        assert_eq!(t.add_candidate(k, 5), AddOutcome::Stored);
    }

    #[test]
    fn reward_strengthens_and_is_lost_after_replacement() {
        let mut t = cst();
        let k = key(9);
        t.add_candidate(k, 4);
        assert!(t.reward(k, 4, 10));
        assert_eq!(t.lookup(k).unwrap().best(), Some((4, 10)));
        // Replace the entry via a tag conflict; the old reward target is gone.
        let other = key(0x1000 | 9);
        t.add_candidate(other, 1);
        assert!(!t.reward(k, 4, 10));
    }

    #[test]
    fn scores_rank_candidates_for_prediction() {
        let mut t = cst();
        let k = key(11);
        t.add_candidate(k, 1);
        t.add_candidate(k, 2);
        t.add_candidate(k, 3);
        t.reward(k, 2, 15);
        t.reward(k, 3, 7);
        t.reward(k, 1, -5);
        assert_eq!(t.lookup(k).unwrap().best(), Some((2, 15)));
        let ranked = t.lookup(k).unwrap().ranked();
        assert_eq!(
            ranked.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![2, 3, 1]
        );
    }

    #[test]
    fn dump_lists_valid_entries() {
        let mut t = cst();
        t.add_candidate(key(1), 1);
        t.add_candidate(key(2), 2);
        assert_eq!(t.dump().count(), 2);
        assert_eq!(t.occupancy(), 2);
    }
}
