//! The history queue (§5): recently observed contexts awaiting association
//! with impending memory addresses.
//!
//! To avoid a fully-associative search, the collection unit samples the
//! queue only at a set of predefined depths — the probabilistic lookup the
//! paper adopts from prior work on skewed memory-access distributions.

use std::collections::VecDeque;

use crate::attrs::{ContextKey, FullHash};
use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot};

/// One recorded context observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Reduced-context key (CST index/tag) under which the context was
    /// observed.
    pub key: ContextKey,
    /// Full-context hash (for routing reducer feedback).
    pub full: FullHash,
    /// Block address that anchored the context (deltas are relative to it).
    pub block: u64,
}

/// Fixed-depth queue of recent contexts (Table 2: 50 entries).
#[derive(Clone, Debug)]
pub struct HistoryQueue {
    entries: VecDeque<HistoryEntry>,
    // semloc-lint: allow(snapshot-field-coverage): queue depth is construction-time config; restore validates the entry count against it
    capacity: usize,
}

impl HistoryQueue {
    /// A queue holding the last `capacity` contexts.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history queue needs capacity");
        HistoryQueue {
            entries: VecDeque::with_capacity(capacity + 1),
            capacity,
        }
    }

    /// Record the context of the current access (newest at depth 1 for the
    /// *next* access).
    pub fn push(&mut self, entry: HistoryEntry) {
        self.entries.push_front(entry);
        if self.entries.len() > self.capacity {
            self.entries.pop_back();
        }
    }

    /// The context observed `depth` accesses ago (1 = the previous access).
    pub fn at_depth(&self, depth: u16) -> Option<&HistoryEntry> {
        if depth == 0 {
            return None;
        }
        self.entries.get(depth as usize - 1)
    }

    /// Sample the queue at each of `depths`, yielding `(depth, entry)`.
    pub fn sample<'a>(
        &'a self,
        depths: &'a [u16],
    ) -> impl Iterator<Item = (u16, &'a HistoryEntry)> + 'a {
        depths
            .iter()
            .filter_map(move |&d| self.at_depth(d).map(|e| (d, e)))
    }

    /// Current number of stored contexts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Snapshot for HistoryQueue {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"HIST", 1);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u32(e.key.0);
            w.put_u16(e.full.0);
            w.put_u64(e.block);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"HIST", 1)?;
        let n = r.get_len()?;
        if n > self.capacity {
            return Err(snap_err(format!(
                "history snapshot has {n} entries, capacity is {}",
                self.capacity
            )));
        }
        let mut entries = VecDeque::with_capacity(self.capacity + 1);
        for _ in 0..n {
            entries.push_back(HistoryEntry {
                key: ContextKey(r.get_u32()?),
                full: FullHash(r.get_u16()?),
                block: r.get_u64()?,
            });
        }
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(block: u64) -> HistoryEntry {
        HistoryEntry {
            key: ContextKey(block as u32 & 0x7ffff),
            full: FullHash(block as u16),
            block,
        }
    }

    #[test]
    fn depth_one_is_previous_access() {
        let mut q = HistoryQueue::new(4);
        q.push(entry(10));
        q.push(entry(20));
        assert_eq!(q.at_depth(1).unwrap().block, 20);
        assert_eq!(q.at_depth(2).unwrap().block, 10);
        assert!(q.at_depth(3).is_none());
        assert!(q.at_depth(0).is_none());
    }

    #[test]
    fn capacity_is_bounded() {
        let mut q = HistoryQueue::new(3);
        for b in 0..10 {
            q.push(entry(b));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.at_depth(3).unwrap().block, 7);
    }

    #[test]
    fn sample_skips_unavailable_depths() {
        let mut q = HistoryQueue::new(50);
        for b in 0..5 {
            q.push(entry(b));
        }
        let depths = [1u16, 3, 10, 50];
        let got: Vec<u64> = q.sample(&depths).map(|(_, e)| e.block).collect();
        assert_eq!(got, vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        HistoryQueue::new(0);
    }
}
