//! The Reducer — online feature selection (§4.4, Fig 7).
//!
//! The 16-bit full-context hash indexes this direct-mapped table; each
//! entry holds the number of *active* attributes (a prefix of
//! [`Attr::ORDER`](crate::Attr::ORDER)) used to form the partial-context
//! hash that indexes the CST, plus a small saturating overload counter:
//!
//! * **overload** (+1): the routed CST entry had too many competing
//!   prefetch candidates — many full contexts alias one reduced context, so
//!   the entry *activates* the first inactive attribute, splitting the
//!   context;
//! * **underload** (−1): the routed CST entry keeps being cold-allocated —
//!   contexts are spread over too many unique states, so the entry
//!   *deactivates* an attribute, merging contexts.

use crate::attrs::{Attr, FullHash};
use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot};

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u8,
    active: u8,
    pressure: i8,
    valid: bool,
}

/// Direct-mapped feature-selection table.
#[derive(Clone, Debug)]
pub struct Reducer {
    entries: Vec<Entry>,
    // semloc-lint: allow(snapshot-field-coverage): index mask derived from the table size at construction
    mask: usize,
    // semloc-lint: allow(snapshot-field-coverage): construction-time config (initial active-feature count)
    initial_active: u8,
    // semloc-lint: allow(snapshot-field-coverage): construction-time config (overload pressure threshold)
    overload_threshold: i8,
    // semloc-lint: allow(snapshot-field-coverage): construction-time config (underload pressure threshold)
    underload_threshold: i8,
    // semloc-lint: allow(snapshot-field-coverage): set once from cfg.freeze_reducer at construction, never mutated
    frozen: bool,
    activations: u64,
    deactivations: u64,
}

impl Reducer {
    /// A reducer with `entries` slots (power of two), starting every
    /// context at `initial_active` attributes.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `initial_active` is out
    /// of range.
    pub fn new(
        entries: usize,
        initial_active: u8,
        overload_threshold: i8,
        underload_threshold: i8,
        frozen: bool,
    ) -> Self {
        assert!(
            entries.is_power_of_two(),
            "reducer size must be a power of two"
        );
        assert!((1..=Attr::COUNT as u8).contains(&initial_active));
        assert!(overload_threshold > 0 && underload_threshold < 0);
        Reducer {
            entries: vec![
                Entry {
                    tag: 0,
                    active: initial_active,
                    pressure: 0,
                    valid: false
                };
                entries
            ],
            mask: entries - 1,
            initial_active,
            overload_threshold,
            underload_threshold,
            frozen,
            activations: 0,
            deactivations: 0,
        }
    }

    /// Look up the active-attribute count for a full-context hash,
    /// (re)allocating the entry on tag mismatch.
    pub fn active_count(&mut self, full: FullHash) -> u8 {
        let idx = full.reducer_index() & self.mask;
        let tag = full.reducer_tag();
        let initial = self.initial_active;
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            *e = Entry {
                tag,
                active: initial,
                pressure: 0,
                valid: true,
            };
        }
        e.active
    }

    /// Report that the CST entry routed through `full` was **overloaded**
    /// (candidate churn: more predictions competing than link slots).
    pub fn report_overload(&mut self, full: FullHash) {
        if self.frozen {
            return;
        }
        let threshold = self.overload_threshold;
        let idx = full.reducer_index() & self.mask;
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != full.reducer_tag() {
            return;
        }
        e.pressure = e.pressure.saturating_add(1);
        if e.pressure >= threshold && (e.active as usize) < Attr::COUNT {
            e.active += 1;
            e.pressure = 0;
            self.activations += 1;
        }
    }

    /// Report that the CST lookup routed through `full` **cold-allocated**
    /// (contexts spread too thin).
    pub fn report_underload(&mut self, full: FullHash) {
        if self.frozen {
            return;
        }
        let threshold = self.underload_threshold;
        let idx = full.reducer_index() & self.mask;
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != full.reducer_tag() {
            return;
        }
        e.pressure = e.pressure.saturating_sub(1);
        if e.pressure <= threshold && e.active > 1 {
            e.active -= 1;
            e.pressure = 0;
            self.deactivations += 1;
        }
    }

    /// Total attribute activations performed (diagnostics).
    pub fn activations(&self) -> u64 {
        self.activations
    }

    /// Total attribute deactivations performed (diagnostics).
    pub fn deactivations(&self) -> u64 {
        self.deactivations
    }

    /// Distribution of active counts over valid entries (diagnostics):
    /// `dist[k]` = entries with `k` active attributes.
    pub fn active_histogram(&self) -> [u64; Attr::COUNT + 1] {
        let mut h = [0u64; Attr::COUNT + 1];
        for e in &self.entries {
            if e.valid {
                h[e.active as usize] += 1;
            }
        }
        h
    }
}

impl Snapshot for Reducer {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"REDU", 1);
        w.put_u64(self.activations);
        w.put_u64(self.deactivations);
        w.put_len(self.entries.len());
        for e in &self.entries {
            w.put_u8(e.tag);
            w.put_u8(e.active);
            w.put_i8(e.pressure);
            w.put_bool(e.valid);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"REDU", 1)?;
        let activations = r.get_u64()?;
        let deactivations = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.entries.len() {
            return Err(snap_err(format!(
                "reducer snapshot has {n} entries, table expects {}",
                self.entries.len()
            )));
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let e = Entry {
                tag: r.get_u8()?,
                active: r.get_u8()?,
                pressure: r.get_i8()?,
                valid: r.get_bool()?,
            };
            if !(1..=Attr::COUNT as u8).contains(&e.active) {
                return Err(snap_err(format!(
                    "reducer active count {} out of range",
                    e.active
                )));
            }
            entries.push(e);
        }
        self.activations = activations;
        self.deactivations = deactivations;
        self.entries = entries;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(v: u16) -> FullHash {
        FullHash(v)
    }

    fn reducer() -> Reducer {
        Reducer::new(16, 4, 3, -8, false)
    }

    #[test]
    fn starts_at_initial_active() {
        let mut r = reducer();
        assert_eq!(r.active_count(full(5)), 4);
    }

    #[test]
    fn overload_activates_after_threshold() {
        let mut r = reducer();
        let f = full(5);
        r.active_count(f);
        r.report_overload(f);
        r.report_overload(f);
        assert_eq!(r.active_count(f), 4, "below threshold: unchanged");
        r.report_overload(f);
        assert_eq!(
            r.active_count(f),
            5,
            "threshold reached: one more attribute"
        );
        assert_eq!(r.activations(), 1);
    }

    #[test]
    fn underload_deactivates_after_threshold() {
        let mut r = reducer();
        let f = full(9);
        r.active_count(f);
        for _ in 0..8 {
            r.report_underload(f);
        }
        assert_eq!(r.active_count(f), 3);
        assert_eq!(r.deactivations(), 1);
    }

    #[test]
    fn active_count_saturates_at_bounds() {
        let mut r = Reducer::new(16, 8, 1, -1, false);
        let f = full(1);
        r.active_count(f);
        r.report_overload(f);
        assert_eq!(r.active_count(f), 8, "cannot exceed the attribute count");
        let mut r = Reducer::new(16, 1, 1, -1, false);
        r.active_count(f);
        r.report_underload(f);
        assert_eq!(r.active_count(f), 1, "at least one attribute stays active");
    }

    #[test]
    fn tag_conflict_reallocates() {
        let mut r = reducer();
        // Same index (lower bits), different tag (upper 2 bits).
        let a = full(0x0005);
        let b = full(0x4005);
        r.active_count(a);
        for _ in 0..3 {
            r.report_overload(a);
        }
        assert_eq!(r.active_count(a), 5);
        // b evicts a; a comes back at the initial count.
        assert_eq!(r.active_count(b), 4);
        assert_eq!(r.active_count(a), 4);
    }

    #[test]
    fn frozen_reducer_never_adapts() {
        let mut r = Reducer::new(16, 4, 1, -1, true);
        let f = full(2);
        r.active_count(f);
        r.report_overload(f);
        r.report_overload(f);
        assert_eq!(r.active_count(f), 4);
        r.report_underload(f);
        assert_eq!(r.active_count(f), 4);
    }

    #[test]
    fn pressure_reports_on_stale_entries_are_ignored() {
        let mut r = reducer();
        let a = full(0x0007);
        let b = full(0x4007);
        r.active_count(a);
        r.active_count(b); // evicts a
        for _ in 0..5 {
            r.report_overload(a); // stale handle: no effect
        }
        assert_eq!(r.active_count(b), 4);
        assert_eq!(r.activations(), 0);
    }

    #[test]
    fn histogram_counts_valid_entries() {
        let mut r = reducer();
        r.active_count(full(0));
        r.active_count(full(1));
        let h = r.active_histogram();
        assert_eq!(h[4], 2);
        assert_eq!(h.iter().sum::<u64>(), 2);
    }
}
