//! The prefetch queue (§5): outstanding predictions awaiting feedback.
//!
//! Every prediction — real or shadow — is pushed here with the context that
//! produced it. When a demand access arrives, all matching un-hit entries
//! are rewarded according to their depth (the number of accesses since the
//! prediction); entries that fall off the 128-entry queue without being hit
//! expire with a negative reward. The queue is deliberately larger than the
//! useful prefetch window so that *too-early* predictions can still be
//! observed and demoted.

use std::collections::VecDeque;

use crate::attrs::{ContextKey, FullHash};
use semloc_trace::Seq;

/// An outstanding prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PfqEntry {
    /// Monotone identifier (echoed through the memory system's issue
    /// results).
    pub id: u64,
    /// Predicted block address.
    pub block: u64,
    /// Reduced-context key that produced the prediction.
    pub key: ContextKey,
    /// Full-context hash (for reducer feedback routing).
    pub full: FullHash,
    /// Predicted delta (action), at block granularity.
    pub delta: i16,
    /// Demand-access sequence number at prediction time.
    pub issue_seq: Seq,
    /// Shadow operation (not dispatched to memory).
    pub shadow: bool,
    /// A demand access has already matched this entry.
    pub hit: bool,
}

/// A matched prediction and its hit depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PfqHit {
    /// The matched entry (as of the hit).
    pub entry: PfqEntry,
    /// Accesses elapsed between prediction and demand.
    pub depth: u32,
}

/// Fixed-capacity queue of outstanding predictions (Table 2: 128 entries).
#[derive(Clone, Debug)]
pub struct PrefetchQueue {
    entries: VecDeque<PfqEntry>,
    capacity: usize,
    next_id: u64,
}

impl PrefetchQueue {
    /// A queue of `capacity` predictions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch queue needs capacity");
        PrefetchQueue { entries: VecDeque::with_capacity(capacity + 1), capacity, next_id: 0 }
    }

    /// Record a new prediction. Returns its id and, when the queue
    /// overflowed, the expired oldest entry (un-hit expirations earn the
    /// expiry penalty).
    pub fn push(
        &mut self,
        block: u64,
        key: ContextKey,
        full: FullHash,
        delta: i16,
        issue_seq: Seq,
        shadow: bool,
    ) -> (u64, Option<PfqEntry>) {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push_back(PfqEntry { id, block, key, full, delta, issue_seq, shadow, hit: false });
        let expired = if self.entries.len() > self.capacity { self.entries.pop_front() } else { None };
        (id, expired)
    }

    /// Match a demand access against the queue: every un-hit entry
    /// predicting `block` is marked hit and returned with its depth.
    pub fn record_access(&mut self, block: u64, seq: Seq, out: &mut Vec<PfqHit>) {
        for e in self.entries.iter_mut() {
            if !e.hit && e.block == block {
                e.hit = true;
                let depth = seq.saturating_sub(e.issue_seq) as u32;
                out.push(PfqHit { entry: *e, depth });
            }
        }
    }

    /// Whether any un-hit prediction covers `block` (drives the Fig 9
    /// *non-timely* classification).
    pub fn predicts(&self, block: u64) -> bool {
        self.entries.iter().any(|e| !e.hit && e.block == block)
    }

    /// Whether an un-hit *real* (dispatched) prefetch covers `block` —
    /// the dedup check before issuing another real prefetch. Shadow
    /// entries must not suppress a real dispatch.
    pub fn predicts_real(&self, block: u64) -> bool {
        self.entries.iter().any(|e| !e.hit && !e.shadow && e.block == block)
    }

    /// Demote the entry `id` to a shadow operation (the memory system
    /// rejected its dispatch).
    pub fn demote_to_shadow(&mut self, id: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.shadow = true;
        }
    }

    /// Drain every remaining entry (end of run); un-hit ones are expiries.
    pub fn drain(&mut self) -> impl Iterator<Item = PfqEntry> + '_ {
        self.entries.drain(..)
    }

    /// Outstanding predictions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ContextKey {
        ContextKey(1)
    }

    fn full() -> FullHash {
        FullHash(2)
    }

    #[test]
    fn hit_depth_counts_accesses() {
        let mut q = PrefetchQueue::new(8);
        q.push(100, key(), full(), 5, 10, false);
        let mut hits = Vec::new();
        q.record_access(100, 35, &mut hits);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].depth, 25);
        assert_eq!(hits[0].entry.delta, 5);
    }

    #[test]
    fn entries_are_rewarded_once() {
        let mut q = PrefetchQueue::new(8);
        q.push(100, key(), full(), 1, 0, false);
        let mut hits = Vec::new();
        q.record_access(100, 5, &mut hits);
        q.record_access(100, 6, &mut hits);
        assert_eq!(hits.len(), 1, "second demand must not re-reward");
    }

    #[test]
    fn multiple_contexts_predicting_same_block_all_rewarded() {
        let mut q = PrefetchQueue::new(8);
        q.push(100, ContextKey(1), full(), 1, 0, false);
        q.push(100, ContextKey(2), full(), 2, 3, true);
        let mut hits = Vec::new();
        q.record_access(100, 10, &mut hits);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].depth, 10);
        assert_eq!(hits[1].depth, 7);
    }

    #[test]
    fn overflow_expires_oldest() {
        let mut q = PrefetchQueue::new(2);
        q.push(1, key(), full(), 1, 0, false);
        q.push(2, key(), full(), 1, 1, false);
        let (_, expired) = q.push(3, key(), full(), 1, 2, false);
        let e = expired.expect("oldest expired");
        assert_eq!(e.block, 1);
        assert!(!e.hit);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn predicts_only_unhit_blocks() {
        let mut q = PrefetchQueue::new(4);
        q.push(7, key(), full(), 1, 0, false);
        assert!(q.predicts(7));
        let mut hits = Vec::new();
        q.record_access(7, 1, &mut hits);
        assert!(!q.predicts(7));
        assert!(!q.predicts(8));
    }

    #[test]
    fn demote_to_shadow_flags_entry() {
        let mut q = PrefetchQueue::new(4);
        let (id, _) = q.push(7, key(), full(), 1, 0, false);
        q.demote_to_shadow(id);
        let e = q.drain().next().unwrap();
        assert!(e.shadow);
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = PrefetchQueue::new(4);
        q.push(1, key(), full(), 1, 0, false);
        q.push(2, key(), full(), 1, 0, true);
        assert_eq!(q.drain().count(), 2);
        assert!(q.is_empty());
    }
}
