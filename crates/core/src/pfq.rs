//! The prefetch queue (§5): outstanding predictions awaiting feedback.
//!
//! Every prediction — real or shadow — is pushed here with the context that
//! produced it. When a demand access arrives, all matching un-hit entries
//! are rewarded according to their depth (the number of accesses since the
//! prediction); entries that fall off the 128-entry queue without being hit
//! expire with a negative reward. The queue is deliberately larger than the
//! useful prefetch window so that *too-early* predictions can still be
//! observed and demoted.
//!
//! # Implementation
//!
//! The queue runs once per demand access, so its operations are indexed
//! rather than scanned:
//!
//! * Entry ids are assigned sequentially by [`PrefetchQueue::push`] and
//!   entries leave only from the front (overflow) or all at once (drain),
//!   so the deque always holds **contiguous ascending ids** and any live
//!   entry sits at position `id - front_id` — an O(1) lookup that replaces
//!   the linear id search in [`PrefetchQueue::demote_to_shadow`].
//! * A block → ids map covers exactly the *un-hit* entries, so
//!   [`PrefetchQueue::record_access`], [`PrefetchQueue::predicts`] and
//!   [`PrefetchQueue::predicts_real`] cost O(matches) instead of a full
//!   O(capacity) scan. Each id list is kept in ascending (= deque) order,
//!   so hits are emitted in exactly the order the scan produced them.
//!   Freed id lists are pooled to keep the hot path allocation-free.

#[allow(clippy::disallowed_types)] // mirror of the semloc-lint pragma below on BlockIndex
// semloc-lint: allow(no-std-hash-collections): fixed-seed BlockHasher; keyed access only (see BlockIndex)
use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};

use crate::attrs::{ContextKey, FullHash};
use semloc_trace::{snap_err, Seq, SnapReader, SnapWriter, Snapshot};

/// An outstanding prediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PfqEntry {
    /// Monotone identifier (echoed through the memory system's issue
    /// results).
    pub id: u64,
    /// Predicted block address.
    pub block: u64,
    /// Reduced-context key that produced the prediction.
    pub key: ContextKey,
    /// Full-context hash (for reducer feedback routing).
    pub full: FullHash,
    /// Predicted delta (action), at block granularity.
    pub delta: i16,
    /// Demand-access sequence number at prediction time.
    pub issue_seq: Seq,
    /// Shadow operation (not dispatched to memory).
    pub shadow: bool,
    /// A demand access has already matched this entry.
    pub hit: bool,
}

/// A matched prediction and its hit depth.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PfqHit {
    /// The matched entry (as of the hit).
    pub entry: PfqEntry,
    /// Accesses elapsed between prediction and demand.
    pub depth: u32,
}

/// Multiplicative hasher for block addresses: one multiply and a fold beat
/// SipHash by an order of magnitude on 8-byte keys, and block numbers have
/// enough entropy in their low bits for the golden-ratio spread.
#[derive(Clone, Copy, Debug, Default)]
struct BlockHasher(u64);

impl Hasher for BlockHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0 ^ (self.0 >> 32)
    }
}

/// Hot-path block → id index. A std HashMap is allowed here (rule D1)
/// because the hasher is the fixed-seed [`BlockHasher`] (no per-process
/// randomization), every read is keyed, the index is rebuilt from the
/// deque on restore rather than serialized, and the only iteration
/// ([`PrefetchQueue::drain`]) recycles cleared buffers whose order is
/// unobservable — so iteration order can never reach stats or output.
#[allow(clippy::disallowed_types)]
// semloc-lint: allow(no-std-hash-collections): fixed-seed hasher, keyed access, order never observable
type BlockIndex = HashMap<u64, Vec<u64>, BuildHasherDefault<BlockHasher>>;

/// Fixed-capacity queue of outstanding predictions (Table 2: 128 entries).
#[derive(Clone, Debug)]
pub struct PrefetchQueue {
    entries: VecDeque<PfqEntry>,
    // semloc-lint: allow(snapshot-field-coverage): queue capacity is construction-time config; restore validates the entry count against it
    capacity: usize,
    next_id: u64,
    /// block → ascending ids of *un-hit* entries predicting it. Lists are
    /// never left empty (the key is removed instead), so `predicts` is a
    /// key-presence test.
    // semloc-lint: allow(snapshot-field-coverage): derived — rebuilt from the deque on restore, exactly as documented in save
    index: BlockIndex,
    /// Recycled id lists (allocation-free steady state).
    // semloc-lint: allow(snapshot-field-coverage): allocation-recycling free list; its contents are never observable state
    pool: Vec<Vec<u64>>,
}

impl PrefetchQueue {
    /// A queue of `capacity` predictions.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch queue needs capacity");
        PrefetchQueue {
            entries: VecDeque::with_capacity(capacity + 1),
            capacity,
            next_id: 0,
            index: BlockIndex::default(),
            pool: Vec::new(),
        }
    }

    /// Deque position of a live entry (ids are contiguous and ascending).
    #[inline]
    fn position(&self, id: u64) -> Option<usize> {
        let front = self.entries.front()?.id;
        if id < front {
            return None; // already expired
        }
        let pos = (id - front) as usize;
        debug_assert!(self.entries.get(pos).is_none_or(|e| e.id == id));
        (pos < self.entries.len()).then_some(pos)
    }

    /// Record a new prediction. Returns its id and, when the queue
    /// overflowed, the expired oldest entry (un-hit expirations earn the
    /// expiry penalty).
    pub fn push(
        &mut self,
        block: u64,
        key: ContextKey,
        full: FullHash,
        delta: i16,
        issue_seq: Seq,
        shadow: bool,
    ) -> (u64, Option<PfqEntry>) {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push_back(PfqEntry {
            id,
            block,
            key,
            full,
            delta,
            issue_seq,
            shadow,
            hit: false,
        });
        self.index
            .entry(block)
            .or_insert_with(|| self.pool.pop().unwrap_or_default())
            .push(id);
        let expired = if self.entries.len() > self.capacity {
            self.entries.pop_front()
        } else {
            None
        };
        if let Some(e) = &expired {
            if !e.hit {
                self.unindex(e.block, e.id);
            }
        }
        (id, expired)
    }

    /// Remove `id` from `block`'s index list, retiring the list when empty.
    fn unindex(&mut self, block: u64, id: u64) {
        let Some(list) = self.index.get_mut(&block) else {
            return;
        };
        if let Some(pos) = list.iter().position(|&x| x == id) {
            list.remove(pos);
        }
        if list.is_empty() {
            if let Some(mut freed) = self.index.remove(&block) {
                freed.clear();
                self.pool.push(freed);
            }
        }
    }

    /// Match a demand access against the queue: every un-hit entry
    /// predicting `block` is marked hit and returned with its depth.
    #[allow(clippy::expect_used)]
    pub fn record_access(&mut self, block: u64, seq: Seq, out: &mut Vec<PfqHit>) {
        let Some(mut ids) = self.index.remove(&block) else {
            return;
        };
        let front = self
            .entries
            .front()
            // semloc-lint: allow(no-unwrap): index lists cover exactly the live un-hit entries, so a hit implies a non-empty deque; silent divergence here would be worse than the panic
            .expect("indexed entry implies non-empty queue")
            .id;
        for &id in &ids {
            let e = &mut self.entries[(id - front) as usize];
            debug_assert!(e.id == id && !e.hit && e.block == block);
            e.hit = true;
            let depth = seq.saturating_sub(e.issue_seq) as u32;
            out.push(PfqHit { entry: *e, depth });
        }
        ids.clear();
        self.pool.push(ids);
    }

    /// Whether any un-hit prediction covers `block` (drives the Fig 9
    /// *non-timely* classification).
    pub fn predicts(&self, block: u64) -> bool {
        self.index.contains_key(&block)
    }

    /// Whether an un-hit *real* (dispatched) prefetch covers `block` —
    /// the dedup check before issuing another real prefetch. Shadow
    /// entries must not suppress a real dispatch.
    #[allow(clippy::expect_used)]
    pub fn predicts_real(&self, block: u64) -> bool {
        let Some(ids) = self.index.get(&block) else {
            return false;
        };
        let front = self
            .entries
            .front()
            // semloc-lint: allow(no-unwrap): same index-covers-live-entries invariant as record_access
            .expect("indexed entry implies non-empty queue")
            .id;
        ids.iter()
            .any(|&id| !self.entries[(id - front) as usize].shadow)
    }

    /// Demote the entry `id` to a shadow operation (the memory system
    /// rejected its dispatch).
    pub fn demote_to_shadow(&mut self, id: u64) {
        if let Some(pos) = self.position(id) {
            self.entries[pos].shadow = true;
        }
    }

    /// Drain every remaining entry (end of run); un-hit ones are expiries.
    pub fn drain(&mut self) -> impl Iterator<Item = PfqEntry> + '_ {
        self.pool.extend(self.index.drain().map(|(_, mut ids)| {
            ids.clear();
            ids
        }));
        self.entries.drain(..)
    }

    /// Outstanding predictions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Snapshot for PrefetchQueue {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"PFQ0", 1);
        w.put_u64(self.next_id);
        w.put_len(self.entries.len());
        // The block → ids index is derivable (it covers exactly the un-hit
        // entries in deque order), so only the deque is serialized and the
        // index is rebuilt on restore.
        for e in &self.entries {
            w.put_u64(e.id);
            w.put_u64(e.block);
            w.put_u32(e.key.0);
            w.put_u16(e.full.0);
            w.put_i16(e.delta);
            w.put_u64(e.issue_seq);
            w.put_bool(e.shadow);
            w.put_bool(e.hit);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"PFQ0", 1)?;
        let next_id = r.get_u64()?;
        let n = r.get_len()?;
        if n > self.capacity {
            return Err(snap_err(format!(
                "prefetch-queue snapshot has {n} entries, capacity is {}",
                self.capacity
            )));
        }
        let mut entries = VecDeque::with_capacity(self.capacity + 1);
        for i in 0..n {
            let e = PfqEntry {
                id: r.get_u64()?,
                block: r.get_u64()?,
                key: ContextKey(r.get_u32()?),
                full: FullHash(r.get_u16()?),
                delta: r.get_i16()?,
                issue_seq: r.get_u64()?,
                shadow: r.get_bool()?,
                hit: r.get_bool()?,
            };
            // Position lookups assume contiguous ascending ids ending just
            // before next_id; a snapshot violating that is corrupt.
            let expect = next_id - (n - i) as u64;
            if e.id != expect {
                return Err(snap_err(format!(
                    "prefetch-queue snapshot id {} out of sequence (expected {expect})",
                    e.id
                )));
            }
            entries.push_back(e);
        }
        self.next_id = next_id;
        self.entries = entries;
        self.index.clear();
        for e in &self.entries {
            if !e.hit {
                self.index
                    .entry(e.block)
                    .or_insert_with(|| self.pool.pop().unwrap_or_default())
                    .push(e.id);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> ContextKey {
        ContextKey(1)
    }

    fn full() -> FullHash {
        FullHash(2)
    }

    #[test]
    fn hit_depth_counts_accesses() {
        let mut q = PrefetchQueue::new(8);
        q.push(100, key(), full(), 5, 10, false);
        let mut hits = Vec::new();
        q.record_access(100, 35, &mut hits);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].depth, 25);
        assert_eq!(hits[0].entry.delta, 5);
    }

    #[test]
    fn entries_are_rewarded_once() {
        let mut q = PrefetchQueue::new(8);
        q.push(100, key(), full(), 1, 0, false);
        let mut hits = Vec::new();
        q.record_access(100, 5, &mut hits);
        q.record_access(100, 6, &mut hits);
        assert_eq!(hits.len(), 1, "second demand must not re-reward");
    }

    #[test]
    fn multiple_contexts_predicting_same_block_all_rewarded() {
        let mut q = PrefetchQueue::new(8);
        q.push(100, ContextKey(1), full(), 1, 0, false);
        q.push(100, ContextKey(2), full(), 2, 3, true);
        let mut hits = Vec::new();
        q.record_access(100, 10, &mut hits);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].depth, 10);
        assert_eq!(hits[1].depth, 7);
    }

    #[test]
    fn overflow_expires_oldest() {
        let mut q = PrefetchQueue::new(2);
        q.push(1, key(), full(), 1, 0, false);
        q.push(2, key(), full(), 1, 1, false);
        let (_, expired) = q.push(3, key(), full(), 1, 2, false);
        let e = expired.expect("oldest expired");
        assert_eq!(e.block, 1);
        assert!(!e.hit);
        assert_eq!(q.len(), 2);
        assert!(!q.predicts(1), "expired entry must leave the index");
        assert!(q.predicts(2) && q.predicts(3));
    }

    #[test]
    fn predicts_only_unhit_blocks() {
        let mut q = PrefetchQueue::new(4);
        q.push(7, key(), full(), 1, 0, false);
        assert!(q.predicts(7));
        let mut hits = Vec::new();
        q.record_access(7, 1, &mut hits);
        assert!(!q.predicts(7));
        assert!(!q.predicts(8));
    }

    #[test]
    fn predicts_real_ignores_shadows() {
        let mut q = PrefetchQueue::new(8);
        q.push(7, key(), full(), 1, 0, true);
        assert!(q.predicts(7) && !q.predicts_real(7));
        q.push(7, key(), full(), 1, 1, false);
        assert!(q.predicts_real(7));
        let mut hits = Vec::new();
        q.record_access(7, 2, &mut hits);
        assert!(!q.predicts_real(7));
    }

    #[test]
    fn demote_to_shadow_flags_entry() {
        let mut q = PrefetchQueue::new(4);
        let (id, _) = q.push(7, key(), full(), 1, 0, false);
        q.demote_to_shadow(id);
        let e = q.drain().next().unwrap();
        assert!(e.shadow);
    }

    #[test]
    fn demote_of_expired_id_is_a_noop() {
        let mut q = PrefetchQueue::new(2);
        let (first, _) = q.push(1, key(), full(), 1, 0, false);
        q.push(2, key(), full(), 1, 1, false);
        q.push(3, key(), full(), 1, 2, false); // expires `first`
        q.demote_to_shadow(first);
        q.demote_to_shadow(999); // never existed
        assert!(q.drain().all(|e| !e.shadow));
    }

    #[test]
    fn drain_empties_queue() {
        let mut q = PrefetchQueue::new(4);
        q.push(1, key(), full(), 1, 0, false);
        q.push(2, key(), full(), 1, 0, true);
        assert_eq!(q.drain().count(), 2);
        assert!(q.is_empty());
        assert!(!q.predicts(1) && !q.predicts(2));
    }

    /// Reference implementation: the original linear-scan queue. The
    /// indexed queue must stay observably identical to it under any
    /// operation sequence.
    #[derive(Clone)]
    struct LinearQueue {
        entries: VecDeque<PfqEntry>,
        capacity: usize,
        next_id: u64,
    }

    impl LinearQueue {
        fn new(capacity: usize) -> Self {
            LinearQueue {
                entries: VecDeque::new(),
                capacity,
                next_id: 0,
            }
        }

        fn push(
            &mut self,
            block: u64,
            delta: i16,
            seq: Seq,
            shadow: bool,
        ) -> (u64, Option<PfqEntry>) {
            let id = self.next_id;
            self.next_id += 1;
            self.entries.push_back(PfqEntry {
                id,
                block,
                key: key(),
                full: full(),
                delta,
                issue_seq: seq,
                shadow,
                hit: false,
            });
            let expired = if self.entries.len() > self.capacity {
                self.entries.pop_front()
            } else {
                None
            };
            (id, expired)
        }

        fn record_access(&mut self, block: u64, seq: Seq, out: &mut Vec<PfqHit>) {
            for e in self.entries.iter_mut() {
                if !e.hit && e.block == block {
                    e.hit = true;
                    out.push(PfqHit {
                        entry: *e,
                        depth: seq.saturating_sub(e.issue_seq) as u32,
                    });
                }
            }
        }

        fn predicts(&self, block: u64) -> bool {
            self.entries.iter().any(|e| !e.hit && e.block == block)
        }

        fn predicts_real(&self, block: u64) -> bool {
            self.entries
                .iter()
                .any(|e| !e.hit && !e.shadow && e.block == block)
        }

        fn demote_to_shadow(&mut self, id: u64) {
            if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
                e.shadow = true;
            }
        }
    }

    #[test]
    fn indexed_queue_matches_linear_reference_on_random_ops() {
        let mut q = PrefetchQueue::new(16);
        let mut r = LinearQueue::new(16);
        let mut state = 0xdead_beef_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for seq in 0..5000u64 {
            let block = next() % 24; // small space → heavy aliasing
            match next() % 5 {
                0 | 1 => {
                    let (id_a, ex_a) = q.push(
                        block,
                        key(),
                        full(),
                        (next() % 32) as i16,
                        seq,
                        next() % 2 == 0,
                    );
                    let (id_b, ex_b) = r.push(
                        block,
                        q.entries.back().unwrap().delta,
                        seq,
                        q.entries.back().unwrap().shadow,
                    );
                    assert_eq!(id_a, id_b);
                    assert_eq!(ex_a, ex_b);
                }
                2 => {
                    let (mut ha, mut hb) = (Vec::new(), Vec::new());
                    q.record_access(block, seq, &mut ha);
                    r.record_access(block, seq, &mut hb);
                    assert_eq!(ha, hb, "hit sets (and their order) must match");
                }
                3 => {
                    let id = next() % q.next_id.max(1);
                    q.demote_to_shadow(id);
                    r.demote_to_shadow(id);
                }
                _ => {
                    assert_eq!(q.predicts(block), r.predicts(block));
                    assert_eq!(q.predicts_real(block), r.predicts_real(block));
                }
            }
        }
        assert_eq!(
            q.drain().collect::<Vec<_>>(),
            r.entries.drain(..).collect::<Vec<_>>()
        );
    }
}
