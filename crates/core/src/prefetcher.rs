//! The context-based prefetcher (§4–§5, Algorithm 1, Fig 6).
//!
//! Per demand access, three operations execute (conceptually in parallel;
//! sequentially here, in feedback → collection → prediction order so that a
//! prediction can never be rewarded by the very access that produced it):
//!
//! 1. **Feedback** — match the access against the prefetch queue; every
//!    matching prediction is rewarded by depth (bell reward, Fig 5), and
//!    entries that overflow the queue un-hit are penalized.
//! 2. **Data collection** — associate the current address, as a block
//!    delta, with the contexts observed at the sampled history depths.
//!    Candidate churn and cold allocations feed the reducer's
//!    overload/underload adaptation.
//! 3. **Prediction** — look up the current (reduced) context in the CST and
//!    dispatch the highest-scoring deltas, with accuracy-adaptive degree and
//!    ε-greedy shadow exploration.

use rand::rngs::StdRng;
use rand::SeedableRng;

use semloc_bandit::{ExplorationPolicy, RewardFunction, RewardLut};
use semloc_mem::{MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
use semloc_trace::{snap_err, AccessContext, Addr, SnapReader, SnapWriter, Snapshot};

use crate::attrs::{ContextKey, FullHash};
use crate::config::ContextConfig;
use crate::cst::{AddOutcome, ContextStatesTable};
use crate::features::FeatureExtractor;
use crate::history::{HistoryEntry, HistoryQueue};
use crate::pfq::{PfqEntry, PfqHit, PrefetchQueue};
use crate::policy::{CstBanditPolicy, LearnedPolicy};
use crate::reducer::Reducer;
use crate::stats::ContextStats;

/// The paper's context-based prefetcher.
///
/// ```rust
/// use semloc_context::{ContextConfig, ContextPrefetcher};
/// use semloc_mem::{MemPressure, Prefetcher};
/// use semloc_trace::AccessContext;
///
/// let mut pf = ContextPrefetcher::new(ContextConfig::default());
/// let mut out = Vec::new();
/// for i in 0..2000u64 {
///     out.clear();
///     let ctx = AccessContext::bare(i, 0x400, 0x10_0000 + i * 64, false);
///     pf.on_access(&ctx, MemPressure { l1_mshr_free: 4, l2_mshr_free: 20 }, &mut out);
///     for r in &out {
///         pf.on_issue_result(r.tag, true);
///     }
/// }
/// assert!(pf.learn_stats().hits > 0, "the stride stream is learned");
/// ```
///
/// The learning backend is a type parameter (default: the paper's
/// [`CstBanditPolicy`]), so alternative [`LearnedPolicy`] implementations
/// reuse the whole feedback/collection/prediction loop. `ContextPrefetcher`
/// written without arguments is the default composition — bit-identical to
/// the pre-refactor pipeline.
pub struct ContextPrefetcher<P: LearnedPolicy = CstBanditPolicy> {
    cfg: ContextConfig,
    policy: P,
    reducer: Reducer,
    history: HistoryQueue,
    pfq: PrefetchQueue,
    rng: StdRng,
    stats: ContextStats,
    hit_buf: Vec<PfqHit>,
    /// Reusable candidate-ranking scratch (hoisted out of `predict`).
    rank_buf: Vec<(i16, i8)>,
    /// Exact tabulation of `cfg.reward` — derived configuration, rebuilt on
    /// construction, deliberately absent from snapshots.
    reward_lut: RewardLut,
    /// Scratch for the batched depth→reward gather in `feedback`.
    depth_buf: Vec<u32>,
    reward_buf: Vec<i32>,
    mem_stats: PrefetcherStats,
}

impl ContextPrefetcher {
    /// Build the default-composition prefetcher (CST + contextual bandit)
    /// from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ContextConfig::validate`].
    pub fn new(cfg: ContextConfig) -> Self {
        let policy = CstBanditPolicy::new(&cfg);
        ContextPrefetcher::with_policy(policy, cfg)
    }

    /// The context-states table (for inspection/diagnostics).
    pub fn cst(&self) -> &ContextStatesTable {
        self.policy.table()
    }
}

impl<P: LearnedPolicy> ContextPrefetcher<P> {
    /// Build a prefetcher around an explicit learning backend.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ContextConfig::validate`].
    pub fn with_policy(policy: P, cfg: ContextConfig) -> Self {
        cfg.validate();
        let reward_lut = RewardLut::new(&cfg.reward);
        ContextPrefetcher {
            policy,
            reducer: Reducer::new(
                cfg.reducer_entries,
                cfg.initial_active,
                cfg.overload_threshold,
                cfg.underload_threshold,
                cfg.freeze_reducer,
            ),
            history: HistoryQueue::new(cfg.history_len),
            pfq: PrefetchQueue::new(cfg.pfq_len),
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: ContextStats::default(),
            hit_buf: Vec::with_capacity(8),
            rank_buf: Vec::with_capacity(16),
            reward_lut,
            depth_buf: Vec::with_capacity(8),
            reward_buf: Vec::with_capacity(8),
            mem_stats: PrefetcherStats::default(),
            cfg,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ContextConfig {
        &self.cfg
    }

    /// Learning statistics (hit-depth CDF, convergence counters).
    pub fn learn_stats(&self) -> &ContextStats {
        &self.stats
    }

    /// The learning backend (for inspection/diagnostics).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The reducer (for inspection/diagnostics).
    pub fn reducer(&self) -> &Reducer {
        &self.reducer
    }

    /// Flush end-of-run feedback: every outstanding un-hit prediction
    /// expires with the penalty reward. Call once when a run completes.
    pub fn drain_feedback(&mut self) {
        let expiry = self.cfg.reward.expiry();
        for e in self.pfq.drain() {
            if !e.hit {
                self.policy.reward(e.key, e.delta, expiry);
                self.stats.expired += 1;
            }
        }
    }

    #[inline]
    fn block_of(&self, addr: Addr) -> u64 {
        addr >> self.cfg.block_shift
    }

    /// Feedback unit: reward matching predictions, observe accuracy.
    fn feedback(&mut self, block: u64, seq: u64) {
        let mut hits = std::mem::take(&mut self.hit_buf);
        hits.clear();
        self.pfq.record_access(block, seq, &mut hits);
        let (lo, hi) = self.cfg.reward.window();
        // Batched depth→reward translation: one clamped gather over the
        // tabulated bell (bit-identical to `cfg.reward.reward(depth)`, see
        // `RewardLut`) instead of two `exp()` calls per hit.
        self.depth_buf.clear();
        self.depth_buf.extend(hits.iter().map(|h| h.depth));
        self.reward_buf.clear();
        self.reward_buf.resize(hits.len(), 0);
        semloc_accel::gather_i32(
            self.reward_lut.table(),
            &self.depth_buf,
            &mut self.reward_buf,
        );
        for (h, &r) in hits.iter().zip(&self.reward_buf) {
            if h.depth < lo {
                // Late hits only shortened a wait (the demand merged into
                // the in-flight fill): partial credit, capped so it can
                // never outrank fully timely candidates.
                self.policy.reward_capped(h.entry.key, h.entry.delta, r, 32);
            } else {
                self.policy.reward(h.entry.key, h.entry.delta, r);
            }
            self.stats.hits += 1;
            self.stats.depth_cdf.record(h.depth);
            let timely = h.depth >= lo && h.depth <= hi;
            if timely {
                self.stats.timely_hits += 1;
            } else if h.depth < lo {
                self.stats.late_hits += 1;
            } else {
                self.stats.early_hits += 1;
            }
            if !h.entry.shadow {
                self.mem_stats.useful += 1;
            }
            // §4.2 throttles by "average hit rate in the prefetch queue":
            // any hit counts as a success; only expirations count against.
            self.cfg.exploration.observe(true);
        }
        self.hit_buf = hits;
    }

    /// Collection unit: bind the current block to sampled past contexts.
    fn collect(&mut self, block: u64) {
        // Gather first to keep the borrow checker happy: sampling borrows
        // the history queue immutably while the CST/reducer need &mut.
        let mut samples: [Option<HistoryEntry>; 16] = [None; 16];
        let mut n = 0;
        for (_, e) in self.history.sample(&self.cfg.sample_depths) {
            if n == samples.len() {
                break;
            }
            samples[n] = Some(*e);
            n += 1;
        }
        let max_delta = self.cfg.max_delta();
        for e in samples.iter().take(n).flatten() {
            let delta64 = block as i64 - e.block as i64;
            if delta64 == 0 {
                continue;
            }
            if delta64.abs() > max_delta {
                self.stats.delta_overflow += 1;
                continue;
            }
            let delta = delta64 as i16;
            self.stats.collected += 1;
            match self.policy.add_candidate(e.key, delta) {
                // Only the loss of a *proven* candidate signals that too
                // many useful predictions compete for this reduced context;
                // churn among unproven candidates is ordinary exploration.
                AddOutcome::Evicted(victim_score) if victim_score > 0 => {
                    self.reducer.report_overload(e.full)
                }
                AddOutcome::Evicted(_) => {}
                AddOutcome::Allocated => self.reducer.report_underload(e.full),
                AddOutcome::Stored => {}
            }
        }
    }

    /// Prediction unit: dispatch high-score candidates, explore with
    /// shadows.
    fn predict(
        &mut self,
        block: u64,
        key: ContextKey,
        full: FullHash,
        seq: u64,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let mut ranked = std::mem::take(&mut self.rank_buf);
        if !self.policy.ranked_into(key, &mut ranked) {
            self.rank_buf = ranked;
            return;
        }
        // Rank by score, tie-breaking saturated scores toward the
        // deeper-reaching delta: with equal evidence, more distance hides
        // more latency. One stable sort over slot order — equivalent to
        // `ranked()` followed by a score-desc/abs-desc re-sort, since the
        // second key refines the first.
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| b.0.abs().cmp(&a.0.abs())));
        let explore_pick =
            if self.cfg.disable_shadow || !self.cfg.exploration.explore(&mut self.rng) {
                None
            } else {
                use rand::RngExt;
                Some(ranked[self.rng.random_range(0..ranked.len())].0)
            };

        let acc = self.cfg.exploration.accuracy();
        let (step1, step2) = self.cfg.degree_accuracy_steps;
        let mut degree = 1 + (acc > step1) as u32 + (acc > step2) as u32;
        degree = degree.min(self.cfg.max_degree);
        // Proactive MSHR throttling (§4.2): under pressure, real prefetches
        // become shadow operations.
        let mshr_ok = pressure.l1_mshr_free > 1;

        let mut reals = 0u32;
        for &(delta, score) in &ranked {
            if reals >= degree {
                break;
            }
            if score < self.cfg.issue_score_threshold {
                break; // ranked: everything below is weaker
            }
            let target = block.wrapping_add(delta as i64 as u64);
            if self.pfq.predicts_real(target) {
                // Already dispatched by an earlier prefetch: re-add as a
                // shadow to train another context-address pair (§4.2).
                self.push_pred(target, key, full, delta, seq, true);
                continue;
            }
            if mshr_ok {
                let (id, expired) = self.pfq.push(target, key, full, delta, seq, false);
                self.expire(expired);
                out.push(PrefetchReq::real(target << self.cfg.block_shift, id));
                self.mem_stats.issued += 1;
                self.stats.real_issued += 1;
                reals += 1;
            } else {
                self.push_pred(target, key, full, delta, seq, true);
            }
        }

        if reals == 0 && !self.cfg.disable_shadow {
            // Nothing met the issue bar: train the best candidate silently.
            if let Some(&(delta, _)) = ranked.first() {
                let target = block.wrapping_add(delta as i64 as u64);
                if !self.pfq.predicts(target) {
                    self.push_pred(target, key, full, delta, seq, true);
                }
            }
        }

        if let Some(delta) = explore_pick {
            // ε-greedy exploration: a random previously-correlated address,
            // always as a shadow operation.
            let target = block.wrapping_add(delta as i64 as u64);
            self.push_pred(target, key, full, delta, seq, true);
        }
        self.rank_buf = ranked;
    }

    fn push_pred(
        &mut self,
        target: u64,
        key: ContextKey,
        full: FullHash,
        delta: i16,
        seq: u64,
        shadow: bool,
    ) {
        let (_, expired) = self.pfq.push(target, key, full, delta, seq, shadow);
        if shadow {
            self.stats.shadow_issued += 1;
            self.mem_stats.shadow += 1;
        }
        self.expire(expired);
    }

    fn expire(&mut self, expired: Option<PfqEntry>) {
        if let Some(e) = expired {
            if !e.hit {
                self.policy.reward(e.key, e.delta, self.cfg.reward.expiry());
                self.stats.expired += 1;
                self.cfg.exploration.observe(false);
            }
        }
    }
}

impl<P: LearnedPolicy + 'static> Prefetcher for ContextPrefetcher<P> {
    fn name(&self) -> &'static str {
        "context"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let block = self.block_of(ctx.addr);

        // 1. Feedback.
        self.feedback(block, ctx.seq);

        // 2. Hash the current context through the reducer. One extraction
        // pass over the configured feature set yields the full hash and
        // every prefix key (bit-identical to `FullHash::of` /
        // `ContextKey::of` for the default Table-1 set).
        let features = self.cfg.features.extract(ctx, self.cfg.block_shift);
        let full = features.full_hash();
        let active = self.reducer.active_count(full);
        let key = features.key(active as usize);

        // 2b. Ref-count overload (§5): a reduced context shared by many
        // distinct full contexts while predicting weakly should split.
        if self
            .policy
            .note_shared_weak(key, full.0, self.cfg.split_strength_bar)
        {
            self.reducer.report_overload(full);
        }

        // 3. Data collection against sampled history.
        self.collect(block);

        // 4. Prediction.
        self.predict(block, key, full, ctx.seq, pressure, out);

        // 5. The current context now enters the history queue.
        self.history.push(HistoryEntry { key, full, block });
    }

    fn on_issue_result(&mut self, tag: u64, issued: bool) {
        if !issued {
            self.pfq.demote_to_shadow(tag);
            self.stats.demoted += 1;
            self.mem_stats.rejected += 1;
        }
    }

    fn was_predicted(&self, addr: Addr) -> bool {
        self.pfq.predicts(self.block_of(addr))
    }

    fn storage_bytes(&self) -> usize {
        self.cfg.storage_bytes()
    }

    fn stats(&self) -> PrefetcherStats {
        self.mem_stats
    }

    fn finish(&mut self) {
        self.drain_feedback();
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn save_state(&self, w: &mut SnapWriter) {
        // v2: the composition axes (feature set, reward shape) are stamped
        // ahead of the payload so a checkpoint can never silently restore
        // into a differently-composed pipeline; the policy's own section
        // tag guards the backend kind the same way.
        w.section(*b"CTXP", 2);
        self.cfg.features.save(w);
        self.cfg.reward.save(w);
        // The exploration policy lives inside the config but is mutated run
        // state (observe() anneals ε), so it snapshots with everything else.
        // hit_buf/rank_buf are scratch cleared before each use and are
        // restored empty.
        self.cfg.exploration.save(w);
        self.policy.save(w);
        self.reducer.save(w);
        self.history.save(w);
        self.pfq.save(w);
        let s = self.rng.state();
        for word in s {
            w.put_u64(word);
        }
        self.stats.save(w);
        self.mem_stats.save(w);
    }

    fn restore_state(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"CTXP", 2)?;
        let mut features = self.cfg.features;
        features.restore(r)?;
        if features != self.cfg.features {
            return Err(snap_err(format!(
                "checkpoint composed with feature set {:?}, this pipeline uses {:?}",
                features, self.cfg.features
            )));
        }
        let mut reward = self.cfg.reward.clone();
        reward.restore(r)?;
        if reward != self.cfg.reward {
            return Err(snap_err(format!(
                "checkpoint composed with reward shape {:?}, this pipeline uses {:?}",
                reward, self.cfg.reward
            )));
        }
        self.cfg.exploration.restore(r)?;
        self.policy.restore(r)?;
        self.reducer.restore(r)?;
        self.history.restore(r)?;
        self.pfq.restore(r)?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        self.rng = StdRng::from_state(s);
        self.stats.restore(r)?;
        self.mem_stats.restore(r)?;
        self.hit_buf.clear();
        self.rank_buf.clear();
        Ok(())
    }
}

impl<P: LearnedPolicy> std::fmt::Debug for ContextPrefetcher<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ContextPrefetcher")
            .field("policy", &self.policy.name())
            .field("occupancy", &self.policy.occupancy())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::AccessContext;

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    fn ctx(seq: u64, pc: u64, addr: u64) -> AccessContext {
        AccessContext::bare(seq, pc, addr, false)
    }

    /// Drive a strictly repeating single-PC stream whose addresses advance
    /// by `stride` bytes, `n` times; returns all real prefetch addresses.
    fn drive_stride(p: &mut ContextPrefetcher, n: u64, stride: u64) -> Vec<Addr> {
        let mut out = Vec::new();
        let mut reals = Vec::new();
        for i in 0..n {
            out.clear();
            p.on_access(&ctx(i, 0x400, 0x10_0000 + i * stride), pressure(), &mut out);
            for r in &out {
                p.on_issue_result(r.tag, true);
                reals.push(r.addr);
            }
        }
        reals
    }

    #[test]
    fn learns_a_regular_stride() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let reals = drive_stride(&mut p, 4000, 64);
        assert!(
            !reals.is_empty(),
            "stride stream must eventually trigger real prefetches"
        );
        let s = p.learn_stats();
        assert!(s.hits > 100, "predictions must be hit (got {})", s.hits);
        assert!(
            s.prediction_accuracy() > 0.5,
            "converged accuracy too low: {}",
            s.prediction_accuracy()
        );
    }

    #[test]
    fn prefetches_land_ahead_of_the_stream() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let reals = drive_stride(&mut p, 4000, 64);
        // Late-run prefetches must target blocks ahead of the current head.
        let last = *reals.last().unwrap();
        assert!(last > 0x10_0000 + 3000 * 64, "prefetch {last:#x} not ahead");
    }

    #[test]
    fn hit_depths_cluster_inside_the_reward_window() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        drive_stride(&mut p, 8000, 64);
        let s = p.learn_stats();
        let in_window = s.depth_cdf.fraction_in_window(18, 50);
        assert!(
            in_window > 0.4,
            "only {in_window:.2} of hits inside the window"
        );
    }

    #[test]
    fn irregular_but_recurring_pointer_chain_is_learned() {
        // A "linked list" of blocks at irregular (but block-delta-encodable)
        // offsets, traversed repeatedly. Contexts must specialize (via the
        // reducer) until each node predicts its successor.
        let offsets: Vec<i64> = vec![3, -7, 11, 5, -2, 9, -12, 6, 4, -8, 13, -3, 2, 10, -6, 8];
        let mut blocks = vec![20_000i64];
        for i in 0..offsets.len() * 4 {
            let d = offsets[i % offsets.len()];
            blocks.push(blocks.last().unwrap() + d);
        }
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut hits_before = 0;
        for lap in 0..400 {
            for (i, &b) in blocks.iter().enumerate() {
                out.clear();
                let mut c = ctx(seq, 0x700, (b as u64) << 5);
                // The traversal "carries" the current node pointer.
                c.reg1 = b as u64;
                c.last_loaded = blocks[(i + 1) % blocks.len()] as u64;
                p.on_access(&c, pressure(), &mut out);
                for r in &out {
                    p.on_issue_result(r.tag, true);
                }
                seq += 1;
            }
            if lap == 100 {
                hits_before = p.learn_stats().hits;
            }
        }
        let s = p.learn_stats();
        assert!(s.hits > hits_before, "learning must continue across laps");
        assert!(
            s.hits > 500,
            "recurring chain should be predicted, hits={}",
            s.hits
        );
    }

    #[test]
    fn rejected_issue_becomes_shadow() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut demoted = 0;
        for i in 0..3000u64 {
            out.clear();
            p.on_access(&ctx(i, 0x400, 0x20_0000 + i * 64), pressure(), &mut out);
            for r in &out {
                p.on_issue_result(r.tag, false);
                demoted += 1;
            }
        }
        assert!(demoted > 0);
        assert_eq!(p.learn_stats().demoted, demoted);
        assert_eq!(p.stats().rejected, demoted);
    }

    #[test]
    fn mshr_pressure_suppresses_real_prefetches() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let starved = MemPressure {
            l1_mshr_free: 1,
            l2_mshr_free: 0,
        };
        let mut out = Vec::new();
        for i in 0..3000u64 {
            out.clear();
            p.on_access(&ctx(i, 0x400, 0x30_0000 + i * 64), starved, &mut out);
            assert!(out.iter().all(|r| r.shadow), "no panic path");
            assert!(out.is_empty(), "under pressure everything becomes shadow");
        }
        assert!(p.learn_stats().shadow_issued > 0);
    }

    #[test]
    fn was_predicted_reflects_outstanding_predictions() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut predicted_addr = None;
        for i in 0..4000u64 {
            out.clear();
            p.on_access(&ctx(i, 0x400, 0x40_0000 + i * 64), pressure(), &mut out);
            if let Some(r) = out.first() {
                p.on_issue_result(r.tag, true);
                predicted_addr = Some(r.addr);
            }
        }
        let addr = predicted_addr.expect("some prefetch issued");
        assert!(p.was_predicted(addr));
        assert!(!p.was_predicted(0xdead_0000));
    }

    #[test]
    fn drain_feedback_expires_all_outstanding() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        drive_stride(&mut p, 2000, 64);
        let before = p.learn_stats().expired;
        p.drain_feedback();
        assert!(p.learn_stats().expired >= before);
        // Second drain is a no-op.
        let after = p.learn_stats().expired;
        p.drain_feedback();
        assert_eq!(p.learn_stats().expired, after);
    }

    #[test]
    fn random_stream_yields_low_confidence() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut state = 9u64;
        let mut issued = 0u64;
        for i in 0..20_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = 0x100_0000 + (state % (1 << 22));
            out.clear();
            p.on_access(&ctx(i, 0x400, addr), pressure(), &mut out);
            issued += out.len() as u64;
            for r in &out {
                p.on_issue_result(r.tag, true);
            }
        }
        // On white noise the throttle must keep the issue rate low.
        assert!(
            (issued as f64) < 0.2 * 20_000.0,
            "issued {issued} real prefetches on random traffic"
        );
    }

    #[test]
    fn snapshot_round_trip_is_bit_identical() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        drive_stride(&mut p, 3000, 64);

        let mut w = SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut q = ContextPrefetcher::new(ContextConfig::default());
        let mut r = SnapReader::new(&bytes);
        q.restore_state(&mut r).expect("restore succeeds");
        r.expect_end().expect("snapshot fully consumed");

        // save → restore → save must reproduce the exact byte stream.
        let mut w2 = SnapWriter::new();
        q.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "re-save differs after restore");

        // Continued execution (including RNG-driven exploration) must match.
        let mut out_p = Vec::new();
        let mut out_q = Vec::new();
        for i in 3000..5000u64 {
            let c = ctx(i, 0x400, 0x10_0000 + i * 64);
            out_p.clear();
            out_q.clear();
            p.on_access(&c, pressure(), &mut out_p);
            q.on_access(&c, pressure(), &mut out_q);
            assert_eq!(out_p, out_q, "diverged at access {i}");
            for r in &out_p {
                p.on_issue_result(r.tag, true);
                q.on_issue_result(r.tag, true);
            }
        }
        assert_eq!(
            format!("{:?}", p.learn_stats()),
            format!("{:?}", q.learn_stats())
        );
        assert_eq!(p.stats(), q.stats());
    }

    #[test]
    fn snapshot_rejects_mismatched_geometry() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        drive_stride(&mut p, 500, 64);
        let mut w = SnapWriter::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut q = ContextPrefetcher::new(ContextConfig::default().with_cst_entries(256));
        let mut r = SnapReader::new(&bytes);
        let err = q.restore_state(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn delta_overflow_is_counted_not_learned() {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        // Jumps of 1 MiB never fit the 1-byte block delta.
        for i in 0..500u64 {
            out.clear();
            p.on_access(
                &ctx(i, 0x400, 0x10_0000 + i * (1 << 20)),
                pressure(),
                &mut out,
            );
        }
        let s = p.learn_stats();
        assert!(s.delta_overflow > 0);
        assert_eq!(s.collected, 0);
    }
}
