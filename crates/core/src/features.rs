//! Configurable feature extraction — the first trait axis of the pipeline.
//!
//! The paper hard-wires its context to the full Table-1 attribute vector;
//! Pythia (arXiv 2109.12021) shows the *choice* of program features is
//! itself a first-order design axis. [`FeatureSet`] makes that choice a
//! config value: a closed enum of feature selections, each hashing through
//! the same two-level chain as [`FeatureVec`] (inner SplitMix64 per
//! position, serial fold for the full hash and every active prefix), so
//! the Reducer/CST indexing contract is identical across sets.
//!
//! [`FeatureSet::FullTable1`] — the default — delegates to [`FeatureVec`]
//! and is **bit-identical** to the pre-refactor pipeline (the golden
//! digest pins this). The alternative sets fold the same chains over
//! shorter or different feature lists:
//!
//! * [`FeatureSet::PcOnly`] — the classic PC-indexed baseline;
//! * [`FeatureSet::PcDeltas`] — PC plus the last two block deltas, the
//!   signature most table prefetchers (GHB/BO) condition on;
//! * [`FeatureSet::PythiaProgram`] — Pythia's published best pair of
//!   program features (PC+delta, sequence of last deltas) plus page
//!   offset.
//!
//! Every extractor also has a two-pass *reference* path
//! ([`FeatureSet::full_hash_ref`] / [`FeatureSet::key_ref`]) that the
//! differential oracle in `crates/spec` mirrors, keeping the
//! optimized-vs-naive diffing honest across the trait boundary.

use semloc_trace::{AccessContext, SnapReader, SnapWriter, Snapshot};

use crate::attrs::{
    fold, mix, squeeze, Attr, ContextKey, FeatureVec, FullHash, FULL_SEED, KEY_MASK, KEY_SEED, SALT,
};

/// One feature a custom set can draw: either a Table-1 attribute or a
/// derived spatio-temporal feature Pythia-style sets use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Feat {
    /// A Table-1 context attribute.
    Attr(Attr),
    /// Block delta between this access and the most recent one.
    BlockDelta1,
    /// Block delta between the two most recent accesses.
    BlockDelta2,
    /// Offset of the accessed block within its 4 KiB page (64 blocks at
    /// the default 64 B block).
    PageOffset,
}

impl Feat {
    fn feature(self, ctx: &AccessContext, block_shift: u32) -> u64 {
        match self {
            Feat::Attr(a) => a.feature(ctx, block_shift),
            Feat::BlockDelta1 => {
                (ctx.addr >> block_shift).wrapping_sub(ctx.recent_addrs[0] >> block_shift)
            }
            Feat::BlockDelta2 => (ctx.recent_addrs[0] >> block_shift)
                .wrapping_sub(ctx.recent_addrs[1] >> block_shift),
            Feat::PageOffset => (ctx.addr >> block_shift) & 63,
        }
    }
}

/// Extracts a feature vector from an [`AccessContext`] and exposes the two
/// hashes the pipeline consumes: the full-vector Reducer hash and the
/// active-prefix CST key.
///
/// Implemented by [`FeatureSet`]; a trait (rather than enum-only methods)
/// so the spec oracle and tests can abstract over extraction the same way
/// the prefetcher does.
pub trait FeatureExtractor {
    /// Short label for leaderboards and cell names.
    fn name(&self) -> &'static str;

    /// Number of features in this set (= maximum active-prefix length).
    fn attr_count(&self) -> usize;

    /// Extract every feature of `ctx` once.
    fn extract(&self, ctx: &AccessContext, block_shift: u32) -> ExtractedFeatures;
}

/// The closed set of feature selections a pipeline can be configured with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FeatureSet {
    /// Instruction pointer only.
    PcOnly,
    /// PC plus the last two block deltas.
    PcDeltas,
    /// The paper's full Table-1 attribute vector — the default, bit-
    /// identical to the pre-refactor pipeline.
    #[default]
    FullTable1,
    /// Pythia-like program features: PC, two block deltas, page offset.
    PythiaProgram,
}

/// Feature lists of the custom (non-Table-1) sets, in activation order.
const PC_ONLY: &[Feat] = &[Feat::Attr(Attr::Ip)];
const PC_DELTAS: &[Feat] = &[Feat::Attr(Attr::Ip), Feat::BlockDelta1, Feat::BlockDelta2];
const PYTHIA_PROGRAM: &[Feat] = &[
    Feat::Attr(Attr::Ip),
    Feat::BlockDelta1,
    Feat::BlockDelta2,
    Feat::PageOffset,
];

impl FeatureSet {
    /// Feature list of the custom sets. `FullTable1` has no `Feat` list —
    /// every caller branches to the [`FeatureVec`]/[`FullHash::of`] path
    /// first — so it maps to the empty slice (which would hash every
    /// context identically and trip the equivalence tests immediately if a
    /// future caller forgot the branch).
    fn feats(self) -> &'static [Feat] {
        match self {
            FeatureSet::PcOnly => PC_ONLY,
            FeatureSet::PcDeltas => PC_DELTAS,
            FeatureSet::FullTable1 => &[],
            FeatureSet::PythiaProgram => PYTHIA_PROGRAM,
        }
    }

    /// Two-pass reference full hash (the spec-oracle path). For
    /// [`FeatureSet::FullTable1`] this is exactly [`FullHash::of`].
    pub fn full_hash_ref(self, ctx: &AccessContext, block_shift: u32) -> FullHash {
        if self == FeatureSet::FullTable1 {
            return FullHash::of(ctx, block_shift);
        }
        let mut acc = FULL_SEED;
        for (i, f) in self.feats().iter().enumerate() {
            acc = fold(acc, i as u64, f.feature(ctx, block_shift));
        }
        FullHash(squeeze(acc) as u16)
    }

    /// Two-pass reference prefix key (the spec-oracle path). For
    /// [`FeatureSet::FullTable1`] this is exactly [`ContextKey::of`].
    pub fn key_ref(self, ctx: &AccessContext, active: usize, block_shift: u32) -> ContextKey {
        if self == FeatureSet::FullTable1 {
            return ContextKey::of(ctx, active, block_shift);
        }
        let feats = self.feats();
        let active = active.clamp(1, feats.len());
        let mut acc = KEY_SEED;
        for (i, f) in feats.iter().take(active).enumerate() {
            acc = fold(acc, i as u64, f.feature(ctx, block_shift));
        }
        ContextKey((squeeze(acc) & KEY_MASK) as u32)
    }
}

impl FeatureExtractor for FeatureSet {
    fn name(&self) -> &'static str {
        match self {
            FeatureSet::PcOnly => "pc",
            FeatureSet::PcDeltas => "pc+deltas",
            FeatureSet::FullTable1 => "table1",
            FeatureSet::PythiaProgram => "pythia-prog",
        }
    }

    fn attr_count(&self) -> usize {
        match self {
            FeatureSet::FullTable1 => Attr::COUNT,
            other => other.feats().len(),
        }
    }

    fn extract(&self, ctx: &AccessContext, block_shift: u32) -> ExtractedFeatures {
        if *self == FeatureSet::FullTable1 {
            // The hot default keeps the SIMD-batched single-pass extractor.
            let fv = FeatureVec::extract(ctx, block_shift);
            return ExtractedFeatures {
                mixed: *fv.mixed(),
                len: Attr::COUNT as u8,
                full: fv.full_hash(),
            };
        }
        let feats = self.feats();
        let mut mixed = [0u64; Attr::COUNT];
        let mut full_acc = FULL_SEED;
        for (i, f) in feats.iter().enumerate() {
            let m = mix(f
                .feature(ctx, block_shift)
                .wrapping_add((i as u64).wrapping_mul(SALT)));
            mixed[i] = m;
            full_acc = mix(full_acc ^ m);
        }
        ExtractedFeatures {
            mixed,
            len: feats.len() as u8,
            full: FullHash(squeeze(full_acc) as u16),
        }
    }
}

impl Snapshot for FeatureSet {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"FSET", 1);
        w.put_u8(match self {
            FeatureSet::PcOnly => 0,
            FeatureSet::PcDeltas => 1,
            FeatureSet::FullTable1 => 2,
            FeatureSet::PythiaProgram => 3,
        });
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"FSET", 1)?;
        *self = match r.get_u8()? {
            0 => FeatureSet::PcOnly,
            1 => FeatureSet::PcDeltas,
            2 => FeatureSet::FullTable1,
            3 => FeatureSet::PythiaProgram,
            d => {
                return Err(semloc_trace::snap_err(format!(
                    "unknown feature-set discriminant {d}"
                )))
            }
        };
        Ok(())
    }
}

/// One access's extracted features: the stored inner mixes (for on-demand
/// prefix keys) and the eagerly folded full hash. The single-pass analogue
/// of [`FeatureVec`], generalized to sets shorter than Table 1.
#[derive(Clone, Copy, Debug)]
pub struct ExtractedFeatures {
    mixed: [u64; Attr::COUNT],
    len: u8,
    full: FullHash,
}

impl ExtractedFeatures {
    /// The 16-bit full-vector hash (Reducer index + tag).
    #[inline]
    pub fn full_hash(&self) -> FullHash {
        self.full
    }

    /// The 19-bit hash of the first `active` features, clamped to
    /// `1..=len` exactly like [`FeatureVec::key`] clamps to the Table-1
    /// width.
    #[inline]
    pub fn key(&self, active: usize) -> ContextKey {
        let active = active.clamp(1, self.len as usize);
        let mut acc = KEY_SEED;
        for &m in &self.mixed[..active] {
            acc = mix(acc ^ m);
        }
        ContextKey((squeeze(acc) & KEY_MASK) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::SemanticHints;

    /// A deterministic stream of contexts exercising every feature source.
    fn varied_contexts(n: usize) -> Vec<AccessContext> {
        let mut state = 0xfeed_face_cafe_beefu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|i| {
                let mut c = AccessContext::bare(i as u64, next() & 0xffff_ffff, next(), false);
                c.branch_history = next() as u16;
                c.recent_addrs = [next(), next(), next(), next()];
                c.reg1 = next();
                c.reg2 = next();
                c.last_loaded = next();
                if next() % 3 == 0 {
                    c.hints = Some(SemanticHints::link(
                        (next() % 64) as u16,
                        (next() % 256) as u16,
                    ));
                }
                c
            })
            .collect()
    }

    const ALL: [FeatureSet; 4] = [
        FeatureSet::PcOnly,
        FeatureSet::PcDeltas,
        FeatureSet::FullTable1,
        FeatureSet::PythiaProgram,
    ];

    #[test]
    fn full_table1_is_bit_identical_to_feature_vec() {
        for c in varied_contexts(300) {
            for shift in [5u32, 6] {
                let fv = FeatureVec::extract(&c, shift);
                let ef = FeatureSet::FullTable1.extract(&c, shift);
                assert_eq!(ef.full_hash(), fv.full_hash());
                for active in 0..=(Attr::COUNT + 1) {
                    assert_eq!(ef.key(active), fv.key(active), "prefix {active}");
                }
            }
        }
    }

    #[test]
    fn single_pass_matches_two_pass_reference_for_every_set() {
        for c in varied_contexts(300) {
            for set in ALL {
                let ef = set.extract(&c, 6);
                assert_eq!(ef.full_hash(), set.full_hash_ref(&c, 6), "{}", set.name());
                for active in 0..=(set.attr_count() + 1) {
                    assert_eq!(
                        ef.key(active),
                        set.key_ref(&c, active, 6),
                        "{} prefix {active}",
                        set.name()
                    );
                }
            }
        }
    }

    #[test]
    fn prefix_clamp_respects_each_sets_width() {
        let c = &varied_contexts(1)[0];
        for set in ALL {
            let ef = set.extract(c, 6);
            assert_eq!(ef.key(0), ef.key(1), "{} clamps low", set.name());
            assert_eq!(
                ef.key(set.attr_count()),
                ef.key(99),
                "{} clamps high",
                set.name()
            );
        }
    }

    #[test]
    fn pc_only_ignores_everything_but_the_pc() {
        let mut a = AccessContext::bare(0, 0x400, 0x1000, false);
        let mut b = AccessContext::bare(0, 0x400, 0x9999, true);
        a.reg1 = 1;
        b.reg1 = 2;
        b.branch_history = 0xffff;
        let set = FeatureSet::PcOnly;
        assert_eq!(
            set.extract(&a, 6).full_hash(),
            set.extract(&b, 6).full_hash()
        );
        b.pc = 0x404;
        assert_ne!(
            set.extract(&a, 6).full_hash(),
            set.extract(&b, 6).full_hash()
        );
    }

    #[test]
    fn delta_sets_distinguish_stride_patterns_at_the_same_pc() {
        // Same PC, different stride history: PcOnly collapses them,
        // PcDeltas and PythiaProgram must not.
        let mut a = AccessContext::bare(0, 0x400, 0x4000, false);
        a.recent_addrs = [0x3fc0, 0x3f80, 0, 0];
        let mut b = AccessContext::bare(0, 0x400, 0x4000, false);
        b.recent_addrs = [0x3f80, 0x3f00, 0, 0];
        assert_eq!(
            FeatureSet::PcOnly.extract(&a, 6).full_hash(),
            FeatureSet::PcOnly.extract(&b, 6).full_hash()
        );
        for set in [FeatureSet::PcDeltas, FeatureSet::PythiaProgram] {
            assert_ne!(
                set.extract(&a, 6).full_hash(),
                set.extract(&b, 6).full_hash(),
                "{}",
                set.name()
            );
        }
    }

    #[test]
    fn page_offset_only_matters_to_pythia_program() {
        // Two accesses with identical PC and deltas but different page
        // offsets: only the page-offset-bearing set separates them.
        let mut a = AccessContext::bare(0, 0x400, 0x10_0000, false);
        a.recent_addrs = [0x10_0000 - 0x40, 0x10_0000 - 0x80, 0, 0];
        let mut b = AccessContext::bare(0, 0x400, 0x10_0400, false);
        b.recent_addrs = [0x10_0400 - 0x40, 0x10_0400 - 0x80, 0, 0];
        assert_eq!(
            FeatureSet::PcDeltas.extract(&a, 6).full_hash(),
            FeatureSet::PcDeltas.extract(&b, 6).full_hash()
        );
        assert_ne!(
            FeatureSet::PythiaProgram.extract(&a, 6).full_hash(),
            FeatureSet::PythiaProgram.extract(&b, 6).full_hash()
        );
    }

    #[test]
    fn snapshot_round_trips_every_set() {
        for set in ALL {
            let mut w = SnapWriter::new();
            set.save(&mut w);
            let bytes = w.into_bytes();
            let mut back = FeatureSet::default();
            back.restore(&mut SnapReader::new(&bytes))
                .expect("round trip");
            assert_eq!(back, set);
        }
        let mut w = SnapWriter::new();
        w.section(*b"FSET", 1);
        w.put_u8(7);
        let bytes = w.into_bytes();
        let mut bad = FeatureSet::default();
        assert!(bad.restore(&mut SnapReader::new(&bytes)).is_err());
    }
}
