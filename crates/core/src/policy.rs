//! The learned-policy trait — the pluggable learning backend of the
//! pipeline.
//!
//! The paper's backend is the CST + contextual bandit ([`CstBanditPolicy`]
//! wraps [`ContextStatesTable`] one-to-one); the authors' follow-up neural
//! prefetcher (arXiv 1804.00478) swaps exactly this stage while keeping
//! the context stream, reducer and prefetch queue. [`LearnedPolicy`]
//! captures the surface the rest of the pipeline actually needs: candidate
//! insertion with overload/underload outcomes, delayed-reward application,
//! ranked retrieval, and the ref-count split signal — all integer-only and
//! snapshot-covered so alternative backends inherit the determinism
//! contract for free.

use semloc_trace::{SnapReader, SnapWriter, Snapshot};

use crate::attrs::ContextKey;
use crate::config::ContextConfig;
use crate::cst::{AddOutcome, ContextStatesTable};

/// A learning backend binding reduced contexts to scored delta candidates.
///
/// The `Snapshot` supertrait keeps every backend checkpointable; the
/// backend's own section tag doubles as the restore-time policy-kind
/// guard (restoring a checkpoint into a different backend fails on the
/// tag, not silently).
pub trait LearnedPolicy: Snapshot {
    /// Short label for leaderboards and cell names.
    fn name(&self) -> &'static str;

    /// Insert a context→delta candidate observed by the collection unit.
    fn add_candidate(&mut self, key: ContextKey, delta: i16) -> AddOutcome;

    /// Apply a delayed reward to a stored candidate; `true` if it was
    /// still present.
    fn reward(&mut self, key: ContextKey, delta: i16, reward: i32) -> bool;

    /// Like [`LearnedPolicy::reward`], but a positive reward never raises
    /// the score past `cap` (late-hit partial credit).
    fn reward_capped(&mut self, key: ContextKey, delta: i16, reward: i32, cap: i8) -> bool;

    /// Record that `key` was reached from full-context hash `full`;
    /// `true` when the entry alternates between full contexts while its
    /// best score stays below `strength_bar` — the §4.4 ref-count
    /// overload (split) signal.
    fn note_shared_weak(&mut self, key: ContextKey, full: u16, strength_bar: i8) -> bool;

    /// Rank the candidates stored for `key` into `out` (slot order;
    /// the caller re-sorts). Returns `false` — leaving `out` untouched —
    /// when the context is unknown, so the prediction unit can bail
    /// without consuming exploration randomness.
    fn ranked_into(&self, key: ContextKey, out: &mut Vec<(i16, i8)>) -> bool;

    /// Number of live entries (diagnostics).
    fn occupancy(&self) -> usize;
}

/// Which learning backend a pipeline composes — the config-storable
/// selector for [`LearnedPolicy`] implementations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's CST + contextual bandit (the only backend today; the
    /// neural follow-up slots in beside it).
    #[default]
    CstBandit,
}

impl PolicyKind {
    /// Short label for leaderboards and cell names.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::CstBandit => "cst-bandit",
        }
    }
}

/// The reference backend: the paper's context-states table with
/// score-based bandit replacement, wrapped without any behavioral change.
#[derive(Clone, Debug)]
pub struct CstBanditPolicy {
    cst: ContextStatesTable,
}

impl CstBanditPolicy {
    /// Build the backend from a pipeline configuration.
    pub fn new(cfg: &ContextConfig) -> Self {
        CstBanditPolicy {
            cst: ContextStatesTable::new(cfg.cst_entries, cfg.replacement),
        }
    }

    /// The underlying table (for inspection/diagnostics).
    pub fn table(&self) -> &ContextStatesTable {
        &self.cst
    }

    /// Iterate over live entries as `(index, ranked candidates)`.
    pub fn dump(&self) -> impl Iterator<Item = (usize, Vec<(i16, i8)>)> + '_ {
        self.cst.dump()
    }
}

impl LearnedPolicy for CstBanditPolicy {
    fn name(&self) -> &'static str {
        "cst-bandit"
    }

    #[inline]
    fn add_candidate(&mut self, key: ContextKey, delta: i16) -> AddOutcome {
        self.cst.add_candidate(key, delta)
    }

    #[inline]
    fn reward(&mut self, key: ContextKey, delta: i16, reward: i32) -> bool {
        self.cst.reward(key, delta, reward)
    }

    #[inline]
    fn reward_capped(&mut self, key: ContextKey, delta: i16, reward: i32, cap: i8) -> bool {
        self.cst.reward_capped(key, delta, reward, cap)
    }

    #[inline]
    fn note_shared_weak(&mut self, key: ContextKey, full: u16, strength_bar: i8) -> bool {
        self.cst.note_shared_weak(key, full, strength_bar)
    }

    #[inline]
    fn ranked_into(&self, key: ContextKey, out: &mut Vec<(i16, i8)>) -> bool {
        match self.cst.lookup(key) {
            Some(links) => {
                links.ranked_into(out);
                true
            }
            None => false,
        }
    }

    #[inline]
    fn occupancy(&self) -> usize {
        self.cst.occupancy()
    }
}

impl Snapshot for CstBanditPolicy {
    fn save(&self, w: &mut SnapWriter) {
        // Byte-identical to snapshotting the bare table: the wrapper adds
        // no state, so pre-refactor CST sections restore unchanged.
        self.cst.save(w);
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        self.cst.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delegation_is_transparent() {
        let cfg = ContextConfig::default();
        let mut policy = CstBanditPolicy::new(&cfg);
        let mut table = ContextStatesTable::new(cfg.cst_entries, cfg.replacement);
        let key = ContextKey(0x123);

        assert_eq!(policy.add_candidate(key, 3), table.add_candidate(key, 3));
        assert_eq!(policy.reward(key, 3, 10), table.reward(key, 3, 10));
        assert_eq!(
            policy.reward_capped(key, 3, 50, 16),
            table.reward_capped(key, 3, 50, 16)
        );
        assert_eq!(
            policy.note_shared_weak(key, 7, 8),
            table.note_shared_weak(key, 7, 8)
        );
        assert_eq!(policy.occupancy(), table.occupancy());

        let mut got = Vec::new();
        assert!(policy.ranked_into(key, &mut got));
        let mut want = Vec::new();
        table
            .lookup(key)
            .expect("entry exists")
            .ranked_into(&mut want);
        assert_eq!(got, want);

        // Unknown contexts leave the buffer untouched and return false.
        let mut untouched = vec![(9i16, 9i8)];
        assert!(!policy.ranked_into(ContextKey(0x7f00f), &mut untouched));
        assert_eq!(untouched, vec![(9, 9)]);
    }

    #[test]
    fn snapshot_bytes_equal_the_bare_table() {
        let cfg = ContextConfig::default();
        let mut policy = CstBanditPolicy::new(&cfg);
        let mut table = ContextStatesTable::new(cfg.cst_entries, cfg.replacement);
        for i in 0..200 {
            let key = ContextKey(i * 37 % 0x7ffff);
            policy.add_candidate(key, (i % 100) as i16 - 50);
            table.add_candidate(key, (i % 100) as i16 - 50);
            policy.reward(key, (i % 100) as i16 - 50, (i % 30) as i32);
            table.reward(key, (i % 100) as i16 - 50, (i % 30) as i32);
        }
        let mut wp = SnapWriter::new();
        policy.save(&mut wp);
        let mut wt = SnapWriter::new();
        table.save(&mut wt);
        let pb = wp.into_bytes();
        assert_eq!(pb, wt.into_bytes(), "wrapper must add zero bytes");

        // And a wrapper restores from a bare-table snapshot.
        let mut fresh = CstBanditPolicy::new(&cfg);
        fresh
            .restore(&mut SnapReader::new(&pb))
            .expect("bare CST section restores into the wrapper");
        assert_eq!(fresh.occupancy(), policy.occupancy());
    }
}
