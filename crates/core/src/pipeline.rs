//! Pipeline composition — the config surface the policy tournament sweeps.
//!
//! A [`PipelineConfig`] names one point in the design space the trait
//! layers open up: a feature selection ([`FeatureSet`]), a reward shape
//! ([`RewardShape`]), a learning backend ([`PolicyKind`]) and a table
//! geometry. [`PipelineConfig::default`] composes exactly the paper's
//! pipeline — the golden digest pins that composition bit-identical to
//! the pre-refactor prefetcher.

use semloc_bandit::RewardShape;

use crate::config::ContextConfig;
use crate::features::{FeatureExtractor, FeatureSet};
use crate::policy::PolicyKind;
use crate::prefetcher::ContextPrefetcher;

/// One composition of the configurable pipeline axes.
#[derive(Clone, Debug, Default, PartialEq)]
// semloc-lint: allow(snapshot-coverage): composition template only — applied onto ContextConfig, whose live copies checkpoint via core/ContextPrefetcher
pub struct PipelineConfig {
    /// Which features form the context.
    pub features: FeatureSet,
    /// Reward shape over hit depth.
    pub reward: RewardShape,
    /// Learning backend.
    pub policy: PolicyKind,
    /// CST entries override; `None` keeps the Table-2 geometry (2K
    /// entries, reducer at 8×).
    pub cst_entries: Option<usize>,
}

impl PipelineConfig {
    /// Human-readable cell name, e.g. `table1+bell+cst2048`.
    pub fn label(&self) -> String {
        let base = ContextConfig::default();
        let entries = self.cst_entries.unwrap_or(base.cst_entries);
        format!(
            "{}+{}+{}{}",
            self.features.name(),
            self.reward.label(),
            match self.policy {
                PolicyKind::CstBandit => "cst",
            },
            entries
        )
    }

    /// Apply this composition onto a base configuration (geometry via
    /// [`ContextConfig::with_cst_entries`], so the reducer keeps its 8×
    /// ratio).
    pub fn apply(&self, mut base: ContextConfig) -> ContextConfig {
        base.features = self.features;
        base.reward = self.reward.clone();
        base.policy = self.policy;
        match self.cst_entries {
            Some(entries) => base.with_cst_entries(entries),
            None => base,
        }
    }

    /// Build a prefetcher from this composition over the default base
    /// config.
    pub fn build(&self) -> ContextPrefetcher {
        ContextPrefetcher::new(self.apply(ContextConfig::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_bandit::GaussianPenaltyReward;

    #[test]
    fn default_composition_is_the_paper_pipeline() {
        let composed = PipelineConfig::default().apply(ContextConfig::default());
        let plain = ContextConfig::default();
        // The two configs must be indistinguishable — the golden digest
        // then pins the composed pipeline to the pre-refactor behavior.
        assert_eq!(format!("{composed:?}"), format!("{plain:?}"));
    }

    #[test]
    fn label_names_every_axis() {
        assert_eq!(PipelineConfig::default().label(), "table1+bell+cst2048");
        let cell = PipelineConfig {
            features: FeatureSet::PcDeltas,
            reward: GaussianPenaltyReward::snippet_default().into(),
            cst_entries: Some(4096),
            ..PipelineConfig::default()
        };
        assert_eq!(cell.label(), "pc+deltas+gauss-pen+cst4096");
    }

    #[test]
    fn geometry_override_keeps_the_reducer_ratio() {
        let cell = PipelineConfig {
            cst_entries: Some(1024),
            ..PipelineConfig::default()
        };
        let cfg = cell.apply(ContextConfig::default());
        assert_eq!(cfg.cst_entries, 1024);
        assert_eq!(cfg.reducer_entries, 8 * 1024);
    }

    #[test]
    fn build_produces_a_validated_prefetcher() {
        let pf = PipelineConfig {
            features: FeatureSet::PcOnly,
            ..PipelineConfig::default()
        }
        .build();
        assert_eq!(pf.config().features, FeatureSet::PcOnly);
    }
}
