//! Prefetcher-side statistics: hit-depth CDFs (Fig 8) and learning
//! convergence counters (§7.1).

use semloc_trace::{snap_err, SnapReader, SnapWriter, Snapshot};

/// Histogram of prediction hit depths, cumulable into the Fig 8 CDF.
#[derive(Clone, Debug, PartialEq)]
pub struct HitDepthCdf {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for HitDepthCdf {
    fn default() -> Self {
        Self::new(128)
    }
}

impl HitDepthCdf {
    /// A histogram covering depths `0..=max_depth` (deeper hits clamp to
    /// the last bucket).
    pub fn new(max_depth: u32) -> Self {
        HitDepthCdf {
            buckets: vec![0; max_depth as usize + 1],
            total: 0,
        }
    }

    /// Record one hit at `depth`.
    pub fn record(&mut self, depth: u32) {
        let i = (depth as usize).min(self.buckets.len() - 1);
        self.buckets[i] += 1;
        self.total += 1;
    }

    /// Total hits recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of hits at depth ≤ `depth` (the CDF value Fig 8 plots).
    pub fn cdf_at(&self, depth: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto: u64 = self.buckets.iter().take(depth as usize + 1).sum();
        upto as f64 / self.total as f64
    }

    /// The full CDF as `(depth, fraction)` points.
    pub fn points(&self) -> Vec<(u32, f64)> {
        let mut acc = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(d, &c)| {
                acc += c;
                (
                    d as u32,
                    if self.total == 0 {
                        0.0
                    } else {
                        acc as f64 / self.total as f64
                    },
                )
            })
            .collect()
    }

    /// Fraction of hits inside `[lo, hi]` (the timely share of §7.1).
    pub fn fraction_in_window(&self, lo: u32, hi: u32) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let s: u64 = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(d, _)| d as u32 >= lo && d as u32 <= hi)
            .map(|(_, &c)| c)
            .sum();
        s as f64 / self.total as f64
    }
}

/// Learning/convergence counters for the context prefetcher.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ContextStats {
    /// Real prefetches dispatched to the memory system.
    pub real_issued: u64,
    /// Deliberate shadow prefetches (exploration).
    pub shadow_issued: u64,
    /// Real requests rejected by the memory system and demoted to shadow.
    pub demoted: u64,
    /// Prediction entries hit by a demand (real + shadow).
    pub hits: u64,
    /// Prediction entries expired un-hit.
    pub expired: u64,
    /// Hits inside the reward window.
    pub timely_hits: u64,
    /// Hits below the window (issued too late to help).
    pub late_hits: u64,
    /// Hits above the window (issued too early).
    pub early_hits: u64,
    /// Candidate associations collected into the CST.
    pub collected: u64,
    /// Candidate deltas that did not fit the 1-byte encoding and were
    /// dropped (§7.3's fine-grained-stride/range limitation, made visible).
    pub delta_overflow: u64,
    /// Hit-depth distribution (Fig 8), over real and shadow predictions.
    pub depth_cdf: HitDepthCdf,
}

impl ContextStats {
    /// Fraction of resolved predictions (hit or expired) that were hits.
    pub fn prediction_accuracy(&self) -> f64 {
        let resolved = self.hits + self.expired;
        if resolved == 0 {
            0.0
        } else {
            self.hits as f64 / resolved as f64
        }
    }
}

impl Snapshot for ContextStats {
    fn save(&self, w: &mut SnapWriter) {
        w.section(*b"CSTS", 1);
        w.put_u64(self.real_issued);
        w.put_u64(self.shadow_issued);
        w.put_u64(self.demoted);
        w.put_u64(self.hits);
        w.put_u64(self.expired);
        w.put_u64(self.timely_hits);
        w.put_u64(self.late_hits);
        w.put_u64(self.early_hits);
        w.put_u64(self.collected);
        w.put_u64(self.delta_overflow);
        w.put_u64(self.depth_cdf.total);
        w.put_len(self.depth_cdf.buckets.len());
        for &b in &self.depth_cdf.buckets {
            w.put_u64(b);
        }
    }

    fn restore(&mut self, r: &mut SnapReader<'_>) -> std::io::Result<()> {
        r.section(*b"CSTS", 1)?;
        self.real_issued = r.get_u64()?;
        self.shadow_issued = r.get_u64()?;
        self.demoted = r.get_u64()?;
        self.hits = r.get_u64()?;
        self.expired = r.get_u64()?;
        self.timely_hits = r.get_u64()?;
        self.late_hits = r.get_u64()?;
        self.early_hits = r.get_u64()?;
        self.collected = r.get_u64()?;
        self.delta_overflow = r.get_u64()?;
        let total = r.get_u64()?;
        let n = r.get_len()?;
        if n != self.depth_cdf.buckets.len() {
            return Err(snap_err(format!(
                "hit-depth CDF snapshot has {n} buckets, expected {}",
                self.depth_cdf.buckets.len()
            )));
        }
        let mut buckets = Vec::with_capacity(n);
        for _ in 0..n {
            buckets.push(r.get_u64()?);
        }
        if buckets.iter().sum::<u64>() != total {
            return Err(snap_err("hit-depth CDF total disagrees with buckets"));
        }
        self.depth_cdf.buckets = buckets;
        self.depth_cdf.total = total;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_accumulates_monotonically() {
        let mut c = HitDepthCdf::new(64);
        for d in [5u32, 10, 10, 30, 64, 200] {
            c.record(d);
        }
        assert_eq!(c.total(), 6);
        assert!((c.cdf_at(4) - 0.0).abs() < 1e-12);
        assert!((c.cdf_at(10) - 0.5).abs() < 1e-12);
        assert!(
            (c.cdf_at(64) - 1.0).abs() < 1e-12,
            "clamped deep hits count in last bucket"
        );
        let pts = c.points();
        assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn window_fraction() {
        let mut c = HitDepthCdf::new(100);
        for d in [10u32, 20, 30, 40, 60] {
            c.record(d);
        }
        assert!((c.fraction_in_window(18, 50) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_cdf_is_zero() {
        let c = HitDepthCdf::default();
        assert_eq!(c.cdf_at(50), 0.0);
        assert_eq!(c.fraction_in_window(0, 100), 0.0);
    }

    #[test]
    fn accuracy_over_resolved() {
        let s = ContextStats {
            hits: 30,
            expired: 10,
            ..Default::default()
        };
        assert!((s.prediction_accuracy() - 0.75).abs() < 1e-12);
        assert_eq!(ContextStats::default().prediction_accuracy(), 0.0);
    }
}
