//! The **context-based prefetcher** of Peled, Mannor, Weiser and Etsion,
//! *"Semantic Locality and Context-based Prefetching Using Reinforcement
//! Learning"*, ISCA 2015 — the paper's primary contribution.
//!
//! The prefetcher approximates *semantic locality*: instead of correlating
//! addresses spatially or temporally, it associates the **machine context**
//! of each memory access (hardware attributes such as the PC, branch
//! history and register values, plus compiler-injected hints such as the
//! object type and link offset — Table 1) with the addresses observed soon
//! after, and trains those associations with a contextual-bandits
//! reinforcement-learning loop.
//!
//! Architecture (paper §5, Fig 6):
//!
//! * [`attrs`] — attribute extraction and the two-level hashing scheme
//!   (16-bit full-context hash → Reducer; 19-bit partial-context hash →
//!   CST), per Fig 7;
//! * [`reducer`] — online feature selection: per-entry count of *active*
//!   attributes, grown on context overload and shrunk on underload (§4.4);
//! * [`cst`] — the context-states table: 2K direct-mapped entries, each
//!   binding a reduced context to up to 4 address deltas with 1-byte scores
//!   and score-based replacement;
//! * [`history`] — the 50-entry history queue sampled at predefined depths
//!   to create context→address candidates (*data collection*);
//! * [`pfq`] — the 128-entry prefetch queue that delivers the delayed,
//!   bell-shaped rewards (*feedback*), including for shadow prefetches;
//! * [`prefetcher`] — [`ContextPrefetcher`], tying the three units together
//!   behind the [`semloc_mem::Prefetcher`] interface (*prediction* with
//!   ε-greedy exploration and accuracy/MSHR throttling).
//!
//! # Example
//!
//! ```rust
//! use semloc_context::{ContextConfig, ContextPrefetcher};
//! use semloc_mem::{Hierarchy, MemConfig, Prefetcher};
//!
//! let pf = ContextPrefetcher::new(ContextConfig::default());
//! let mem = Hierarchy::new(MemConfig::default(), pf);
//! // hand `mem` to a semloc_cpu::Cpu and drive it with a workload
//! assert!(mem.prefetcher().storage_bytes() < 40 * 1024);
//! ```

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod attrs;
pub mod config;
pub mod cst;
pub mod features;
pub mod history;
pub mod pfq;
pub mod pipeline;
pub mod policy;
pub mod prefetcher;
pub mod reducer;
pub mod stats;

pub use attrs::{Attr, ContextKey, FullHash};
pub use config::ContextConfig;
pub use cst::ContextStatesTable;
pub use features::{ExtractedFeatures, FeatureExtractor, FeatureSet};
pub use history::HistoryQueue;
pub use pfq::PrefetchQueue;
pub use pipeline::PipelineConfig;
pub use policy::{CstBanditPolicy, LearnedPolicy, PolicyKind};
pub use prefetcher::ContextPrefetcher;
pub use reducer::Reducer;
pub use semloc_bandit::RewardShape;
pub use stats::{ContextStats, HitDepthCdf};
