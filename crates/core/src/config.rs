//! Configuration of the context-based prefetcher (Table 2 defaults).

use semloc_bandit::scored::Replacement;
use semloc_bandit::{AdaptiveEpsilon, BellReward, RewardShape};

use crate::features::FeatureSet;
use crate::policy::PolicyKind;

/// All tunables of the [`ContextPrefetcher`](crate::ContextPrefetcher).
///
/// Defaults reproduce the paper's Table 2 configuration: 2K-entry CST with
/// 4 links, 16K-entry reducer, 50-entry history queue, 128-entry prefetch
/// queue, 32-byte operating granularity (§7.3) and the 18–50-access reward
/// window.
#[derive(Clone, Debug)]
// semloc-lint: allow(snapshot-coverage): configuration template only — cloned into the live policy, whose copy is covered via bandit/AdaptiveEpsilon
pub struct ContextConfig {
    /// Context-states-table entries (power of two). Table 2: 2K.
    pub cst_entries: usize,
    /// Reducer entries (power of two). Table 2: 16K (8× the CST).
    pub reducer_entries: usize,
    /// History-queue depth in accesses. Table 2: 50.
    pub history_len: usize,
    /// Prefetch-queue entries. Table 2: 128.
    pub pfq_len: usize,
    /// log2 of the operating block granularity. §7.3: 32-byte blocks → 5.
    pub block_shift: u32,
    /// Depths (in accesses) at which the history queue is sampled during
    /// data collection — the probabilistic lookup of §5, biased into the
    /// reward window.
    pub sample_depths: Vec<u16>,
    /// Reward shape over hit depth (Fig 5 bell by default; see
    /// [`RewardShape`] for the alternatives the tournament sweeps).
    pub reward: RewardShape,
    /// Which features form the context (Table 1 by default).
    pub features: FeatureSet,
    /// Which learning backend binds contexts to candidates.
    pub policy: PolicyKind,
    /// Exploration policy (accuracy-adaptive ε-greedy).
    pub exploration: AdaptiveEpsilon,
    /// Initial number of active attributes per reducer entry (prefix of
    /// [`Attr::ORDER`](crate::Attr::ORDER)).
    pub initial_active: u8,
    /// Overload events before a reducer entry activates one more attribute.
    pub overload_threshold: i8,
    /// Underload events before a reducer entry deactivates one attribute.
    pub underload_threshold: i8,
    /// Minimum stored score for a candidate to be dispatched as a *real*
    /// prefetch; lower-scored picks go out as shadow operations.
    pub issue_score_threshold: i8,
    /// Maximum real prefetches per access (degree ceiling).
    pub max_degree: u32,
    /// Accuracy above which the degree is raised to 2 / to `max_degree`.
    pub degree_accuracy_steps: (f64, f64),
    /// CST link replacement policy (ablation hook; the paper uses
    /// lowest-score).
    pub replacement: Replacement,
    /// Disable the reducer's dynamic feature selection (ablation A2): every
    /// context uses `initial_active` attributes, fixed.
    pub freeze_reducer: bool,
    /// Disable deliberate shadow prefetches (ablation A3). Rejected real
    /// prefetches are still tracked.
    pub disable_shadow: bool,
    /// Bits per stored address delta. The paper uses 8 (1-byte deltas,
    /// ±4 kB reach at 32-byte blocks — the §7.3 range limitation); 16 is
    /// the wide-delta *extension* evaluated in the ablation binary, at the
    /// cost of one extra byte per link.
    pub delta_bits: u8,
    /// Best-candidate score below which a context counts as *weak* for the
    /// shared-and-weak (ref-count) overload signal: shared contexts whose
    /// best link scores at least this are protected from splitting.
    pub split_strength_bar: i8,
    /// RNG seed for exploration draws.
    pub seed: u64,
}

impl Default for ContextConfig {
    fn default() -> Self {
        ContextConfig {
            cst_entries: 2048,
            reducer_entries: 16 * 1024,
            history_len: 50,
            pfq_len: 128,
            block_shift: 5,
            sample_depths: vec![4, 12, 20, 30, 40, 50],
            reward: RewardShape::PaperBell(BellReward::paper_default()),
            features: FeatureSet::FullTable1,
            policy: PolicyKind::CstBandit,
            exploration: AdaptiveEpsilon::paper_default(),
            initial_active: 4,
            overload_threshold: 3,
            underload_threshold: -8,
            issue_score_threshold: 1,
            max_degree: 3,
            degree_accuracy_steps: (0.45, 0.7),
            replacement: Replacement::LowestScore,
            freeze_reducer: false,
            disable_shadow: false,
            delta_bits: 8,
            split_strength_bar: 24,
            seed: 0x5e11_0c8a,
        }
    }
}

impl ContextConfig {
    /// Scale the CST to `entries`, keeping the reducer at 8× (the Fig 13
    /// storage sweep).
    pub fn with_cst_entries(mut self, entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "CST size must be a power of two");
        self.cst_entries = entries;
        self.reducer_entries = entries * 8;
        self
    }

    /// Validate invariants.
    ///
    /// # Panics
    ///
    /// Panics on non-power-of-two table sizes, an empty sample-depth list,
    /// or sample depths beyond the history length.
    pub fn validate(&self) {
        assert!(self.cst_entries.is_power_of_two() && self.cst_entries >= 2);
        assert!(self.reducer_entries.is_power_of_two() && self.reducer_entries >= 2);
        assert!(
            !self.sample_depths.is_empty(),
            "need at least one sample depth"
        );
        assert!(
            self.sample_depths
                .iter()
                .all(|&d| d >= 1 && (d as usize) <= self.history_len),
            "sample depths must lie within the history queue"
        );
        assert!(self.max_degree >= 1);
        assert!((1..=8).contains(&self.initial_active));
        assert!(
            self.delta_bits == 8 || self.delta_bits == 16,
            "delta width must be 8 or 16 bits"
        );
    }

    /// Largest representable block delta magnitude under `delta_bits`.
    pub fn max_delta(&self) -> i64 {
        if self.delta_bits == 8 {
            i8::MAX as i64
        } else {
            i16::MAX as i64
        }
    }

    /// Retune the reward window and sampling depths for a measured target
    /// prefetch distance, per §4.3 of the paper:
    ///
    /// ```text
    /// prefetch distance = L1 miss penalty × IPC × Prob(mem op)
    /// ```
    ///
    /// The paper reports per-workload targets of ~10–90 accesses and centers
    /// a single bell on the ~30-access average; this method performs the
    /// per-workload derivation the formula describes. Sampling depths are
    /// spread from just behind the access to the window's far edge.
    pub fn calibrated(mut self, target_distance: f64) -> Self {
        use semloc_bandit::RewardFunction;
        self.reward = RewardShape::PaperBell(BellReward::for_target_distance(target_distance));
        let (lo, hi) = self.reward.window();
        let max_depth = self.history_len as u32;
        let d = target_distance.clamp(4.0, 512.0);
        let mut depths: Vec<u16> = [
            (0.15 * d).round().max(2.0) as u32,
            (0.4 * d).round().max(3.0) as u32,
            lo,
            d.round() as u32,
            (d.round() as u32 + hi) / 2,
            hi,
        ]
        .into_iter()
        .map(|v| v.clamp(1, max_depth) as u16)
        .collect();
        depths.sort_unstable();
        depths.dedup();
        self.sample_depths = depths;
        self
    }

    /// Hardware storage estimate in bytes (Table 2 reports ~31 kB total).
    ///
    /// Per entry: the CST stores an 8-bit tag, four (delta, score) byte
    /// pairs and a byte of bookkeeping; a reducer entry packs its 2-bit
    /// tag, 3-bit active count and overload counter into a byte; the
    /// history queue holds 19-bit keys plus block anchors; the prefetch
    /// queue holds address/context pairs.
    pub fn storage_bytes(&self) -> usize {
        let link_bytes = 1 + (self.delta_bits as usize) / 8;
        let cst = self.cst_entries * (1 + 4 * link_bytes + 1);
        let reducer = self.reducer_entries;
        let history = self.history_len * 8; // 19-bit key + ~45-bit block anchor
        let pfq = self.pfq_len * 10;
        cst + reducer + history + pfq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_and_matches_table2_scale() {
        let c = ContextConfig::default();
        c.validate();
        assert_eq!(c.cst_entries, 2048);
        assert_eq!(c.reducer_entries, 16 * 1024);
        assert_eq!(c.history_len, 50);
        assert_eq!(c.pfq_len, 128);
        // Table 2 reports ~31 kB; our honest accounting of the same
        // structures lands within ~25% of it.
        let kb = c.storage_bytes() as f64 / 1024.0;
        assert!(
            (24.0..=40.0).contains(&kb),
            "storage {kb:.1} kB out of band"
        );
    }

    #[test]
    fn storage_sweep_scales_with_cst() {
        let small = ContextConfig::default()
            .with_cst_entries(256)
            .storage_bytes();
        let big = ContextConfig::default()
            .with_cst_entries(8192)
            .storage_bytes();
        assert!(big > small * 10);
    }

    #[test]
    #[should_panic(expected = "within the history queue")]
    fn sample_depths_beyond_history_rejected() {
        let c = ContextConfig {
            sample_depths: vec![51],
            ..ContextConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_cst_rejected() {
        ContextConfig::default().with_cst_entries(1000);
    }
}
