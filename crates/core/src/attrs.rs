//! Context attributes and the two-level hashing scheme (Table 1, Fig 7).
//!
//! Every demand access carries an [`AccessContext`]; each [`Attr`] extracts
//! one 64-bit *feature value* from it. The full attribute vector is hashed
//! to 16 bits to index the Reducer; the subset of **active** attributes is
//! re-hashed to 19 bits to index the context-states table.
//!
//! Attribute activation follows a fixed priority order (the "list of
//! attributes" of §4.4, where overload "activates the first inactive
//! attribute in the list"), so an active set is fully described by a prefix
//! length — which is also what lets a Reducer entry fit in a byte of
//! hardware state.

use semloc_trace::AccessContext;

/// One context attribute (a row of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attr {
    /// Instruction pointer of the memory access.
    Ip,
    /// Object type id (compiler hint).
    TypeId,
    /// Link offset within the object (compiler hint).
    LinkOffset,
    /// Form of reference — `.`, `->`, `*`, index (compiler hint).
    RefForm,
    /// Global branch history.
    BranchHistory,
    /// Values of the access's source registers (e.g. the base pointer or a
    /// searched key).
    RegValues,
    /// The most recently loaded data value.
    LastLoaded,
    /// History of recent memory accesses ("must be used sparingly" — hence
    /// last in the activation order).
    AddrHistory,
}

impl Attr {
    /// Activation priority order: cheap, low-overfit attributes first;
    /// aggressive, localizing ones last.
    pub const ORDER: [Attr; 8] = [
        Attr::Ip,
        Attr::TypeId,
        Attr::LinkOffset,
        Attr::RefForm,
        Attr::BranchHistory,
        Attr::RegValues,
        Attr::LastLoaded,
        Attr::AddrHistory,
    ];

    /// Number of attributes.
    pub const COUNT: usize = Self::ORDER.len();

    /// Extract this attribute's 64-bit feature value from an access
    /// context. `block_shift` sets the address granularity for
    /// address-valued features.
    pub fn feature(self, ctx: &AccessContext, block_shift: u32) -> u64 {
        match self {
            Attr::Ip => ctx.pc,
            Attr::TypeId => ctx.hints.map_or(u64::MAX, |h| h.type_id as u64),
            Attr::LinkOffset => ctx.hints.map_or(u64::MAX, |h| h.link_offset as u64),
            Attr::RefForm => ctx.hints.map_or(u64::MAX, |h| h.ref_form.code() as u64),
            Attr::BranchHistory => ctx.branch_history as u64,
            Attr::RegValues => mix(ctx.reg1).wrapping_add(mix(ctx.reg2).rotate_left(17)),
            Attr::LastLoaded => ctx.last_loaded,
            Attr::AddrHistory => {
                let a = ctx.recent_addrs[0] >> block_shift;
                let b = ctx.recent_addrs[1] >> block_shift;
                mix(a).wrapping_add(mix(b).rotate_left(23))
            }
        }
    }
}

/// All hashes of one access's attribute vector, extracted in a single pass.
///
/// [`FullHash::of`] and [`ContextKey::of`] each walk the attribute list and
/// re-extract every feature; the prefetcher hot path needs the full hash
/// *and* one prefix key per access, and the reducer may ask for any of the
/// 8 prefix lengths. `FeatureVec` folds one feature-extraction pass into
/// both hash chains at once: the per-position inner mix
/// `mix(feature ⊕ salt)` is shared between the chains, so after 8 features
/// and 16 outer mixes every prefix key and the full hash are available in
/// O(1). All values are bit-identical to the two-pass reference
/// implementations (see the equivalence tests below).
#[derive(Clone, Copy, Debug)]
pub struct FeatureVec {
    /// Per-position inner mixes `mix(feature_i ⊕ salt_i)` — the term both
    /// hash chains consume at position `i`.
    mixed: [u64; Attr::COUNT],
    full: FullHash,
}

impl FeatureVec {
    /// Extract every attribute of `ctx` once; the full-vector chain folds
    /// eagerly (always needed), prefix keys fold on demand from the stored
    /// inner mixes.
    #[inline]
    pub fn extract(ctx: &AccessContext, block_shift: u32) -> Self {
        // The 8 independent inner mixes `mix(feature_i ⊕ salt_i)` go
        // through one SIMD SplitMix64 batch; only the (inherently serial)
        // full-chain fold stays scalar. `mix8`'s lanes are exactly
        // `Attr::COUNT` wide.
        const { assert!(Attr::COUNT == 8) };
        let mut mixed = [0u64; Attr::COUNT];
        for (i, attr) in Attr::ORDER.into_iter().enumerate() {
            mixed[i] = attr
                .feature(ctx, block_shift)
                .wrapping_add((i as u64).wrapping_mul(SALT));
        }
        semloc_accel::mix8(&mut mixed);
        let mut full_acc = FULL_SEED;
        for &m in &mixed {
            full_acc = mix(full_acc ^ m);
        }
        FeatureVec {
            mixed,
            full: FullHash(squeeze(full_acc) as u16),
        }
    }

    /// The 16-bit full-vector hash (equals [`FullHash::of`]).
    #[inline]
    pub fn full_hash(&self) -> FullHash {
        self.full
    }

    /// The 19-bit hash of the first `active` attributes (equals
    /// [`ContextKey::of`]); `active` is clamped to `1..=8` the same way.
    #[inline]
    pub fn key(&self, active: usize) -> ContextKey {
        let active = active.clamp(1, Attr::COUNT);
        let mut acc = KEY_SEED;
        for &m in &self.mixed[..active] {
            acc = mix(acc ^ m);
        }
        ContextKey((squeeze(acc) & KEY_MASK) as u32)
    }

    /// The stored per-position inner mixes (for the feature-set layer,
    /// which re-folds prefixes of alternative attribute selections).
    #[inline]
    pub(crate) fn mixed(&self) -> &[u64; Attr::COUNT] {
        &self.mixed
    }
}

/// The 16-bit hash of the *full* attribute vector (Reducer index + tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FullHash(pub u16);

impl FullHash {
    /// Hash the full attribute vector of `ctx`.
    ///
    /// Reference implementation; the hot path uses [`FeatureVec`], which
    /// must stay bit-identical to this.
    pub fn of(ctx: &AccessContext, block_shift: u32) -> Self {
        let mut acc = FULL_SEED;
        for (i, attr) in Attr::ORDER.into_iter().enumerate() {
            acc = fold(acc, i as u64, attr.feature(ctx, block_shift));
        }
        FullHash(squeeze(acc) as u16)
    }

    /// Reducer index (lower 14 bits — Fig 7).
    #[inline]
    pub fn reducer_index(self) -> usize {
        (self.0 & 0x3fff) as usize
    }

    /// Reducer tag (remaining 2 bits — Fig 7).
    #[inline]
    pub fn reducer_tag(self) -> u8 {
        (self.0 >> 14) as u8
    }
}

/// The 19-bit hash of the *active-prefix* attribute vector: the final CST
/// index/tag pair (Fig 7: 19 bits, 8 of which serve as tag).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ContextKey(pub u32);

impl ContextKey {
    /// Hash the first `active` attributes (in [`Attr::ORDER`]) of `ctx`.
    ///
    /// Reference implementation; the hot path uses [`FeatureVec`], which
    /// must stay bit-identical to this.
    pub fn of(ctx: &AccessContext, active: usize, block_shift: u32) -> Self {
        let active = active.clamp(1, Attr::COUNT);
        let mut acc = KEY_SEED;
        for (i, attr) in Attr::ORDER.into_iter().take(active).enumerate() {
            acc = fold(acc, i as u64, attr.feature(ctx, block_shift));
        }
        ContextKey((squeeze(acc) & KEY_MASK) as u32)
    }

    /// CST index under a table of `entries` (power of two) entries.
    #[inline]
    pub fn cst_index(self, entries: usize) -> usize {
        debug_assert!(entries.is_power_of_two());
        (self.0 as usize) & (entries - 1)
    }

    /// CST tag (8 bits above the 11-bit index of the default 2K-entry
    /// table).
    #[inline]
    pub fn cst_tag(self) -> u8 {
        (self.0 >> 11) as u8
    }
}

/// Chain seed of the full-vector hash.
pub(crate) const FULL_SEED: u64 = 0xcbf2_9ce4_8422_2325;
/// Chain seed of the active-prefix hash.
pub(crate) const KEY_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
/// Per-position salt multiplier of the inner mix.
pub(crate) const SALT: u64 = 0x2545_f491_4f6c_dd1d;
/// 19-bit ContextKey mask.
pub(crate) const KEY_MASK: u64 = 0x7ffff;

/// SplitMix64 finalizer — a cheap, well-distributed 64-bit mixer.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[inline]
pub(crate) fn fold(acc: u64, salt: u64, v: u64) -> u64 {
    mix(acc ^ mix(v.wrapping_add(salt.wrapping_mul(SALT))))
}

#[inline]
pub(crate) fn squeeze(v: u64) -> u64 {
    v ^ (v >> 32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_trace::{AccessContext, SemanticHints};

    fn ctx(pc: u64, addr: u64) -> AccessContext {
        AccessContext::bare(0, pc, addr, false)
    }

    #[test]
    fn order_contains_each_attribute_once() {
        let set: std::collections::BTreeSet<_> = Attr::ORDER.iter().collect();
        assert_eq!(set.len(), Attr::COUNT);
    }

    #[test]
    fn hints_distinguish_contexts() {
        let mut a = ctx(0x400, 0x1000);
        let mut b = ctx(0x400, 0x1000);
        a.hints = Some(SemanticHints::link(1, 8));
        b.hints = Some(SemanticHints::link(2, 8));
        // With the hint attributes in the active prefix the keys differ.
        assert_ne!(ContextKey::of(&a, 4, 5), ContextKey::of(&b, 4, 5));
        // With only the IP active they collapse to the same context.
        assert_eq!(ContextKey::of(&a, 1, 5), ContextKey::of(&b, 1, 5));
    }

    #[test]
    fn register_values_only_matter_when_active() {
        let mut a = ctx(0x400, 0x1000);
        let mut b = ctx(0x400, 0x1000);
        a.reg1 = 0xAAAA;
        b.reg1 = 0xBBBB;
        assert_eq!(ContextKey::of(&a, 5, 5), ContextKey::of(&b, 5, 5));
        assert_ne!(ContextKey::of(&a, 6, 5), ContextKey::of(&b, 6, 5));
    }

    #[test]
    fn full_hash_fields_partition_16_bits() {
        let h = FullHash(0xffff);
        assert_eq!(h.reducer_index(), 0x3fff);
        assert_eq!(h.reducer_tag(), 0b11);
    }

    #[test]
    fn context_key_fields_partition_19_bits() {
        let k = ContextKey(0x7ffff);
        assert_eq!(k.cst_index(2048), 2047);
        assert_eq!(k.cst_tag(), 0xff);
    }

    #[test]
    fn keys_are_deterministic() {
        let mut a = ctx(0x400, 0x1000);
        a.branch_history = 0x55;
        a.reg1 = 7;
        assert_eq!(ContextKey::of(&a, 8, 5), ContextKey::of(&a, 8, 5));
        assert_eq!(FullHash::of(&a, 5), FullHash::of(&a, 5));
    }

    #[test]
    fn missing_hints_hash_differently_from_zero_hints() {
        let mut with = ctx(0x400, 0x1000);
        with.hints = Some(SemanticHints::default());
        let without = ctx(0x400, 0x1000);
        assert_ne!(ContextKey::of(&with, 4, 5), ContextKey::of(&without, 4, 5));
    }

    #[test]
    fn active_prefix_is_clamped() {
        let a = ctx(0x400, 0x1000);
        assert_eq!(ContextKey::of(&a, 0, 5), ContextKey::of(&a, 1, 5));
        assert_eq!(ContextKey::of(&a, 99, 5), ContextKey::of(&a, 8, 5));
    }

    /// A deterministic stream of contexts exercising every attribute,
    /// including presence/absence of semantic hints.
    fn varied_contexts(n: usize) -> Vec<AccessContext> {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|i| {
                let mut c = ctx(next() & 0xffff_ffff, next());
                c.seq = i as u64;
                c.is_write = next() % 2 == 0;
                c.branch_history = next() as u16;
                c.recent_addrs = [next(), next(), next(), next()];
                c.reg1 = next();
                c.reg2 = next();
                c.last_loaded = next();
                if next() % 3 == 0 {
                    c.hints = Some(SemanticHints::link(
                        (next() % 64) as u16,
                        (next() % 256) as u16,
                    ));
                }
                c
            })
            .collect()
    }

    #[test]
    fn feature_vec_full_hash_matches_reference() {
        for c in varied_contexts(500) {
            for shift in [5u32, 6] {
                assert_eq!(
                    FeatureVec::extract(&c, shift).full_hash(),
                    FullHash::of(&c, shift)
                );
            }
        }
    }

    #[test]
    fn feature_vec_keys_match_reference_at_every_prefix() {
        for c in varied_contexts(500) {
            let fv = FeatureVec::extract(&c, 6);
            for active in 0..=(Attr::COUNT + 1) {
                assert_eq!(
                    fv.key(active),
                    ContextKey::of(&c, active, 6),
                    "prefix {active} diverged"
                );
            }
        }
    }
}
