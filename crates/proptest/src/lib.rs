//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of proptest it uses: the [`proptest!`]
//! macro, numeric-range / tuple / `Just` / `any::<bool>()` strategies,
//! [`collection::vec`], [`prop_oneof!`] and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline test suite:
//!
//! * **No shrinking** — a failing case reports the generated inputs via the
//!   ordinary panic message (`prop_assert!` is `assert!`).
//! * **Deterministic** — every test function derives its RNG seed from its
//!   own name, so failures reproduce exactly across runs and machines.
//! * **Fixed case count** — [`CASES`] per property (64; proptest defaults
//!   to 256 with early-exit heuristics this stub does not need).

/// Cases generated per property.
pub const CASES: usize = 64;

/// Deterministic generator used by the test runner (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator for the property named `name`.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable, collision-irrelevant.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Marker returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for the whole domain of `T`.
pub fn any<T>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A uniform choice among boxed alternatives (see [`prop_oneof!`]).
pub struct OneOf<T> {
    /// The alternatives to choose among.
    pub options: Vec<Box<dyn Strategy<Value = T>>>,
}

/// Box a strategy behind the object-safe [`Strategy`] interface (used by
/// [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one option"
        );
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// A `Vec` strategy: lengths in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import.

    pub use crate::collection;
    pub use crate::{any, Any, Just, OneOf, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define deterministic randomized property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// (the attribute is written explicitly at the call site, as with real
/// proptest's macro output) running the body [`CASES`] times with values
/// generated from the strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..$crate::CASES {
                    let _ = case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a property-test name (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a property-test name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($opt:expr),+ $(,)?) => {
        $crate::OneOf { options: vec![$($crate::boxed($opt)),+] }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_hit_their_bounds_eventually() {
        let mut rng = TestRng::for_test("bounds");
        let s = 0u8..4;
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn negative_ranges_work() {
        let mut rng = TestRng::for_test("neg");
        for _ in 0..256 {
            let v = (-20i32..20).generate(&mut rng);
            assert!((-20..20).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..64 {
            let v = collection::vec(0u64..10, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_draws_every_option() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn deterministic_per_test_name() {
        let a: Vec<u64> = {
            let mut rng = TestRng::for_test("x");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::for_test("x");
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn the_macro_itself_runs(x in 0u64..100, pair in (0u8..10, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 10);
            prop_assert_eq!(pair.1 as u8 <= 1, true);
        }
    }
}
