//! Per-access cost of the context prefetcher's three units (collection,
//! prediction, feedback run on every demand access).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use semloc_context::{ContextConfig, ContextPrefetcher};
use semloc_mem::{MemPressure, Prefetcher};
use semloc_trace::{AccessContext, SemanticHints};

fn pressure() -> MemPressure {
    MemPressure { l1_mshr_free: 4, l2_mshr_free: 20 }
}

fn ctx(seq: u64, pc: u64, addr: u64) -> AccessContext {
    let mut c = AccessContext::bare(seq, pc, addr, false);
    c.reg1 = addr;
    c.hints = Some(SemanticHints::link(1, 0));
    c
}

fn bench_on_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_prefetcher");
    g.throughput(Throughput::Elements(1));

    // Strided stream: the prediction-heavy steady state.
    g.bench_function("on_access/stride_stream", |b| {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut seq = 0u64;
        b.iter(|| {
            out.clear();
            p.on_access(black_box(&ctx(seq, 0x400, 0x10_0000 + seq * 64)), pressure(), &mut out);
            seq += 1;
            black_box(out.len())
        });
    });

    // Random traffic: the collection/feedback-heavy worst case.
    g.bench_function("on_access/random_stream", |b| {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut state = 7u64;
        b.iter(|| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.clear();
            p.on_access(black_box(&ctx(seq, 0x400, state % (1 << 26))), pressure(), &mut out);
            seq += 1;
            black_box(out.len())
        });
    });
    g.finish();
}

criterion_group!(benches, bench_on_access);
criterion_main!(benches);
