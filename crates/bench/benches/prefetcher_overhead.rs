//! Per-access cost of the context prefetcher's three units (collection,
//! prediction, feedback run on every demand access), plus head-to-head
//! rows pinning each hot-path rewrite against its legacy replica:
//! single-pass vs two-pass context hashing, indexed vs linear prefetch
//! queue, and the whole `on_access` pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use semloc_bench::legacy::{LegacyContextPrefetcher, LinearPrefetchQueue};
use semloc_context::attrs::{ContextKey, FeatureVec, FullHash};
use semloc_context::pfq::{PfqHit, PrefetchQueue};
use semloc_context::{ContextConfig, ContextPrefetcher};
use semloc_mem::{MemPressure, Prefetcher};
use semloc_trace::{AccessContext, SemanticHints};

fn pressure() -> MemPressure {
    MemPressure {
        l1_mshr_free: 4,
        l2_mshr_free: 20,
    }
}

fn ctx(seq: u64, pc: u64, addr: u64) -> AccessContext {
    let mut c = AccessContext::bare(seq, pc, addr, false);
    c.reg1 = addr;
    c.hints = Some(SemanticHints::link(1, 0));
    c
}

fn bench_on_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_prefetcher");
    g.throughput(Throughput::Elements(1));

    // Strided stream: the prediction-heavy steady state.
    g.bench_function("on_access/stride_stream", |b| {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut seq = 0u64;
        b.iter(|| {
            out.clear();
            p.on_access(
                black_box(&ctx(seq, 0x400, 0x10_0000 + seq * 64)),
                pressure(),
                &mut out,
            );
            seq += 1;
            black_box(out.len())
        });
    });

    // Random traffic: the collection/feedback-heavy worst case.
    g.bench_function("on_access/random_stream", |b| {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut seq = 0u64;
        let mut state = 7u64;
        b.iter(|| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            out.clear();
            p.on_access(
                black_box(&ctx(seq, 0x400, state % (1 << 26))),
                pressure(),
                &mut out,
            );
            seq += 1;
            black_box(out.len())
        });
    });
    // The original pipeline (two-pass hashing, linear queue, per-access
    // allocations), for comparison with the rows above.
    g.bench_function("on_access/stride_stream/legacy", |b| {
        let mut p = LegacyContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut seq = 0u64;
        b.iter(|| {
            out.clear();
            p.on_access(
                black_box(&ctx(seq, 0x400, 0x10_0000 + seq * 64)),
                pressure(),
                &mut out,
            );
            seq += 1;
            black_box(out.len())
        });
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_hashing");
    g.throughput(Throughput::Elements(1));
    // Per access the prefetcher needs the full hash AND the active-prefix
    // key; the two-pass reference walks the attributes for each.
    g.bench_function("full_plus_key/two_pass", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            let c = ctx(seq, 0x400, 0x10_0000 + seq * 64);
            seq += 1;
            let full = FullHash::of(black_box(&c), 5);
            let key = ContextKey::of(black_box(&c), 4, 5);
            black_box((full.0, key.0))
        });
    });
    g.bench_function("full_plus_key/single_pass", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            let c = ctx(seq, 0x400, 0x10_0000 + seq * 64);
            seq += 1;
            let fv = FeatureVec::extract(black_box(&c), 5);
            black_box((fv.full_hash().0, fv.key(4).0))
        });
    });
    g.finish();
}

/// The per-access queue traffic of a full 128-entry queue: pushes,
/// record_access, and the dedup probes of the prediction loop.
fn bench_pfq(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefetch_queue");
    g.throughput(Throughput::Elements(1));
    let (key, full) = (ContextKey(1), FullHash(2));
    let op_stream = || {
        let mut state = 0xabcd_u64;
        move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 6, state >> 8 & 0x1ff)
        }
    };

    g.bench_function("mixed_ops/indexed", |b| {
        let mut q = PrefetchQueue::new(128);
        let mut hits: Vec<PfqHit> = Vec::new();
        let mut next = op_stream();
        let mut seq = 0u64;
        b.iter(|| {
            let (op, block) = next();
            seq += 1;
            match op {
                0..=2 => q.push(block, key, full, 1, seq, op == 2).0,
                3 => {
                    hits.clear();
                    q.record_access(block, seq, &mut hits);
                    hits.len() as u64
                }
                4 => q.predicts(block) as u64,
                _ => q.predicts_real(block) as u64,
            }
        });
    });

    g.bench_function("mixed_ops/linear_legacy", |b| {
        let mut q = LinearPrefetchQueue::new(128);
        let mut hits: Vec<PfqHit> = Vec::new();
        let mut next = op_stream();
        let mut seq = 0u64;
        b.iter(|| {
            let (op, block) = next();
            seq += 1;
            match op {
                0..=2 => q.push(block, key, full, 1, seq, op == 2).0,
                3 => {
                    hits.clear();
                    q.record_access(block, seq, &mut hits);
                    hits.len() as u64
                }
                4 => q.predicts(block) as u64,
                _ => q.predicts_real(block) as u64,
            }
        });
    });
    g.finish();
}

criterion_group!(benches, bench_on_access, bench_hashing, bench_pfq);
criterion_main!(benches);
