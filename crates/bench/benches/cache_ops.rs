//! Raw cost of the memory-hierarchy primitives: cache lookups/fills and
//! full demand accesses through the two-level hierarchy.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use semloc_bench::legacy::NestedCache;
use semloc_mem::{Cache, CacheConfig, Hierarchy, MemConfig, NoPrefetch};
use semloc_trace::AccessContext;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(1));

    g.bench_function("l1_lookup_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        cache.fill(0x1000, 0, false, false);
        b.iter(|| black_box(cache.lookup_demand(black_box(0x1000), 100, false)));
    });

    g.bench_function("l1_fill_evict", |b| {
        let mut cache = Cache::new(CacheConfig::l1d());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(64);
            black_box(cache.fill(black_box(a), 0, false, false))
        });
    });

    // Pre-rewrite storage layout (nested `Vec<Vec<Line>>`), for comparison
    // against the flat-array rows above.
    g.bench_function("l1_lookup_hit/nested_legacy", |b| {
        let mut cache = NestedCache::new(&CacheConfig::l1d());
        cache.fill(0x1000, 0, false, false);
        b.iter(|| black_box(cache.lookup_demand(black_box(0x1000), 100, false)));
    });

    g.bench_function("l1_fill_evict/nested_legacy", |b| {
        let mut cache = NestedCache::new(&CacheConfig::l1d());
        let mut a = 0u64;
        b.iter(|| {
            a = a.wrapping_add(64);
            black_box(cache.fill(black_box(a), 0, false, false))
        });
    });

    g.bench_function("hierarchy_demand_access", |b| {
        let mut h = Hierarchy::new(MemConfig::default(), NoPrefetch);
        let mut seq = 0u64;
        b.iter(|| {
            let ctx = AccessContext::bare(seq, 0x400, 0x10_0000 + (seq * 64) % (1 << 22), false);
            let r = h.demand_access(black_box(&ctx), seq * 4);
            seq += 1;
            black_box(r)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_cache);
criterion_main!(benches);
