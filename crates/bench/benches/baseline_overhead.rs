//! Per-access cost of the baseline prefetchers, for comparison with the
//! context prefetcher's train/predict/feedback paths.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use semloc_baselines::{
    GhbFlavor, GhbPrefetcher, MarkovPrefetcher, SmsPrefetcher, StridePrefetcher,
};
use semloc_mem::{MemPressure, Prefetcher};
use semloc_trace::AccessContext;

fn pressure() -> MemPressure {
    MemPressure {
        l1_mshr_free: 4,
        l2_mshr_free: 20,
    }
}

fn drive<P: Prefetcher>(b: &mut criterion::Bencher<'_>, mut p: P) {
    let mut out = Vec::new();
    let mut seq = 0u64;
    b.iter(|| {
        out.clear();
        let c = AccessContext::bare(seq, 0x400 + (seq % 8) * 8, 0x10_0000 + seq * 72, false);
        p.on_access(black_box(&c), pressure(), &mut out);
        seq += 1;
        black_box(out.len())
    });
}

fn bench_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_prefetchers");
    g.throughput(Throughput::Elements(1));
    g.bench_function("stride", |b| drive(b, StridePrefetcher::paper_default()));
    g.bench_function("ghb_gdc", |b| {
        drive(b, GhbPrefetcher::paper_default(GhbFlavor::GlobalDc))
    });
    g.bench_function("ghb_pcdc", |b| {
        drive(b, GhbPrefetcher::paper_default(GhbFlavor::PcDc))
    });
    g.bench_function("sms", |b| drive(b, SmsPrefetcher::paper_default()));
    g.bench_function("markov", |b| drive(b, MarkovPrefetcher::paper_default()));
    g.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
