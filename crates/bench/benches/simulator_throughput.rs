//! End-to-end simulator throughput: instructions simulated per second for
//! a representative workload under no-prefetch and context configurations.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use semloc_harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc_workloads::kernel_by_name;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    let budget = 50_000u64;
    g.throughput(Throughput::Elements(budget));
    g.sample_size(10);
    for pf in [
        PrefetcherKind::None,
        PrefetcherKind::context(),
        PrefetcherKind::Sms,
    ] {
        g.bench_function(format!("run_50k_instr/{}", pf.label()), |b| {
            let cfg = SimConfig::default().with_budget(budget);
            b.iter_batched(
                || kernel_by_name("mcf").expect("kernel"),
                |k| black_box(run_kernel(k.as_ref(), &pf, &cfg)),
                BatchSize::PerIteration,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
