//! Shared plumbing for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` §4 for the experiment index). They all honour the
//! `SEMLOC_BUDGET` environment variable (dynamic instructions per run) and
//! print plain-text tables comparable to the paper's plots.

use semloc_harness::{Matrix, PrefetcherKind, SimConfig};
use semloc_workloads::KernelBox;

pub mod legacy;

/// Print a standard figure banner: what the paper shows, what to compare.
pub fn banner(id: &str, title: &str, paper: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper reference: {paper}");
    println!("==============================================================");
}

/// The full comparison lineup used by most figures: the paper's competitors
/// (GHB G/DC, GHB PC/DC, SMS) plus stride and the context prefetcher.
pub fn full_lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::Stride,
        PrefetcherKind::GhbGdc,
        PrefetcherKind::GhbPcdc,
        PrefetcherKind::Sms,
        PrefetcherKind::context(),
    ]
}

/// Run a matrix on the shard pool (sized by `SEMLOC_POOL_THREADS`, else
/// one worker per available core) with progress lines on stderr.
pub fn run_matrix(kernels: &[KernelBox], lineup: &[PrefetcherKind], cfg: &SimConfig) -> Matrix {
    let total = kernels.len() * (lineup.len() + 1);
    let threads = semloc_harness::pool_threads();
    let done = std::sync::atomic::AtomicUsize::new(0);
    Matrix::run_parallel(kernels, lineup, cfg, threads, |r| {
        let d = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        eprintln!(
            "[{d}/{total}] {} / {}: ipc {:.3}",
            r.kernel,
            r.prefetcher,
            r.cpu.ipc()
        );
    })
}

/// Geometric mean helper.
pub fn geomean(vals: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in vals {
        if v > 0.0 {
            sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_ones_is_one() {
        assert!((geomean([1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
    }

    #[test]
    fn lineup_has_five_prefetchers() {
        assert_eq!(full_lineup().len(), 5);
    }
}
