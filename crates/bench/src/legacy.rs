//! Pre-optimization replicas of the hot-path data structures, kept solely
//! so the benchmarks can measure the speedup of the rewrites against the
//! original implementations (`bench_compare` and the `*_overhead` benches).
//!
//! Each replica reproduces the code the optimized version replaced:
//!
//! * [`LinearPrefetchQueue`] — O(capacity) scans per operation, where
//!   [`semloc_context::pfq::PrefetchQueue`] keeps a block→entry index;
//! * [`NestedCache`] — `Vec<Vec<Line>>` set storage, where
//!   [`semloc_mem::Cache`] uses one flat slice;
//! * [`LegacyContextPrefetcher`] — the original `on_access` pipeline:
//!   two-pass context hashing (`FullHash::of` + `ContextKey::of`), a fresh
//!   ranking `Vec` per prediction with a second sort, and the linear queue.
//!
//! The acceleration PR (`bench_accel`) adds replicas of the structures it
//! rewrote:
//!
//! * [`LegacyScoredSet`] — interleaved `Vec<Slot>` storage with iterator
//!   scans, where [`semloc_bandit::ScoredSet`] splits actions/scores/ages
//!   into flat lanes;
//! * [`legacy_ghb_correlate`] — the original GHB delta-correlation step:
//!   two fresh `Vec` allocations and a scalar pair scan per chain walk;
//! * [`legacy_parallel_map`] — the original fixed-count work queue
//!   (scoped threads + atomic next-index + one shared results mutex),
//!   where the harness now runs [`semloc_harness::run_sharded`].
//!
//! The replicas share the CST/reducer/history/exploration implementations
//! with the optimized prefetcher, so any timing difference is attributable
//! to the rewritten components alone. `tests::legacy_prefetcher_matches_
//! optimized` pins the replica to the optimized path output-for-output.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use semloc_bandit::{ExplorationPolicy, RewardFunction};
use semloc_baselines::GhbFlavor;
use semloc_context::attrs::{ContextKey, FullHash};
use semloc_context::cst::{AddOutcome, ContextStatesTable};
use semloc_context::history::{HistoryEntry, HistoryQueue};
use semloc_context::pfq::{PfqEntry, PfqHit};
use semloc_context::reducer::Reducer;
use semloc_context::ContextConfig;
use semloc_mem::{CacheConfig, MemPressure, PrefetchReq, Prefetcher, PrefetcherStats};
use semloc_trace::{AccessContext, Addr, Cycle, Seq};

/// The original linear-scan prefetch queue (seed `pfq.rs`).
#[derive(Clone, Debug)]
pub struct LinearPrefetchQueue {
    entries: VecDeque<PfqEntry>,
    capacity: usize,
    next_id: u64,
}

impl LinearPrefetchQueue {
    /// A queue of `capacity` predictions.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "prefetch queue needs capacity");
        LinearPrefetchQueue {
            entries: VecDeque::with_capacity(capacity + 1),
            capacity,
            next_id: 0,
        }
    }

    /// Seed `PrefetchQueue::push`.
    pub fn push(
        &mut self,
        block: u64,
        key: ContextKey,
        full: FullHash,
        delta: i16,
        issue_seq: Seq,
        shadow: bool,
    ) -> (u64, Option<PfqEntry>) {
        let id = self.next_id;
        self.next_id += 1;
        self.entries.push_back(PfqEntry {
            id,
            block,
            key,
            full,
            delta,
            issue_seq,
            shadow,
            hit: false,
        });
        let expired = if self.entries.len() > self.capacity {
            self.entries.pop_front()
        } else {
            None
        };
        (id, expired)
    }

    /// Seed `PrefetchQueue::record_access`: full scan.
    pub fn record_access(&mut self, block: u64, seq: Seq, out: &mut Vec<PfqHit>) {
        for e in self.entries.iter_mut() {
            if !e.hit && e.block == block {
                e.hit = true;
                let depth = seq.saturating_sub(e.issue_seq) as u32;
                out.push(PfqHit { entry: *e, depth });
            }
        }
    }

    /// Seed `PrefetchQueue::predicts`: full scan.
    pub fn predicts(&self, block: u64) -> bool {
        self.entries.iter().any(|e| !e.hit && e.block == block)
    }

    /// Seed `PrefetchQueue::predicts_real`: full scan.
    pub fn predicts_real(&self, block: u64) -> bool {
        self.entries
            .iter()
            .any(|e| !e.hit && !e.shadow && e.block == block)
    }

    /// Seed `PrefetchQueue::demote_to_shadow`: linear id search.
    pub fn demote_to_shadow(&mut self, id: u64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.id == id) {
            e.shadow = true;
        }
    }

    /// Seed `PrefetchQueue::drain`.
    pub fn drain(&mut self) -> impl Iterator<Item = PfqEntry> + '_ {
        self.entries.drain(..)
    }

    /// Outstanding predictions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no predictions are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot<A> {
    action: A,
    score: i8,
}

/// The pre-acceleration `ScoredSet`: one interleaved `Vec<Slot>`, every
/// scan an iterator walk over ~7-byte-strided slots.
#[derive(Clone, Debug)]
pub struct LegacyScoredSet<A, const N: usize> {
    slots: Vec<Slot<A>>,
}

impl<A: Copy + Eq, const N: usize> Default for LegacyScoredSet<A, N> {
    fn default() -> Self {
        LegacyScoredSet {
            slots: Vec::with_capacity(N),
        }
    }
}

impl<A: Copy + Eq, const N: usize> LegacyScoredSet<A, N> {
    /// Seed `ScoredSet::insert` (lowest-score replacement).
    pub fn insert(&mut self, action: A) -> Option<(A, i8)> {
        if self.slots.iter().any(|s| s.action == action) {
            return None;
        }
        let slot = Slot { action, score: 0 };
        if self.slots.len() < N {
            self.slots.push(slot);
            return None;
        }
        let victim = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.score)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        let evicted = (self.slots[victim].action, self.slots[victim].score);
        self.slots[victim] = slot;
        Some(evicted)
    }

    /// Seed `ScoredSet::reward_capped`.
    pub fn reward_capped(&mut self, action: A, delta: i32, cap: i8) -> bool {
        match self.slots.iter_mut().find(|s| s.action == action) {
            Some(s) => {
                let mut new = (s.score as i32 + delta).clamp(i8::MIN as i32, i8::MAX as i32) as i8;
                if delta > 0 {
                    new = new.min(cap.max(s.score));
                }
                s.score = new;
                true
            }
            None => false,
        }
    }

    /// Seed `ScoredSet::best` (last maximum, `max_by_key` tie-break).
    pub fn best(&self) -> Option<(A, i8)> {
        self.slots
            .iter()
            .max_by_key(|s| s.score)
            .map(|s| (s.action, s.score))
    }
}

/// The pre-acceleration GHB delta-correlation step: given one chain walk's
/// block addresses, allocate a fresh delta vector, scan it for the lead
/// pair, and fold the replay targets the DC path would issue. The
/// optimized path keeps both buffers as prefetcher scratch and routes the
/// pair scan through `semloc_accel::find_pair_i64`.
pub fn legacy_ghb_correlate(blocks: &[u64], degree: usize) -> u64 {
    if blocks.len() < 4 {
        return 0;
    }
    let deltas: Vec<i64> = blocks
        .windows(2)
        .map(|w| w[0] as i64 - w[1] as i64)
        .collect();
    let (d1, d2) = (deltas[0], deltas[1]);
    let Some(i) = (1..deltas.len() - 1).find(|&i| deltas[i] == d1 && deltas[i + 1] == d2) else {
        return 0;
    };
    let mut target = blocks[0] as i64;
    let mut acc = 0u64;
    for j in (0..i).rev().take(degree) {
        target += deltas[j];
        acc = acc.wrapping_add(target as u64);
    }
    acc
}

/// The optimized counterpart of [`legacy_ghb_correlate`]: caller-owned
/// scratch and the accelerated pair scan, same fold.
pub fn sharded_ghb_correlate(blocks: &[u64], degree: usize, scratch: &mut Vec<i64>) -> u64 {
    if blocks.len() < 4 {
        return 0;
    }
    scratch.clear();
    scratch.extend(blocks.windows(2).map(|w| w[0] as i64 - w[1] as i64));
    let (d1, d2) = (scratch[0], scratch[1]);
    let Some(i) = semloc_accel::find_pair_i64(scratch, d1, d2) else {
        return 0;
    };
    let mut target = blocks[0] as i64;
    let mut acc = 0u64;
    for j in (0..i).rev().take(degree) {
        target += scratch[j];
        acc = acc.wrapping_add(target as u64);
    }
    acc
}

/// The pre-memo GHB delta-correlation prefetcher: the shipped `ghb.rs`
/// before the per-slot chain memos, re-walking the ring through `prev`
/// links (up to `max_walk` *dependent* loads) and rebuilding the full
/// delta vector from scratch on every access. Configuration-identical to
/// [`semloc_baselines::GhbPrefetcher`]; `tests::legacy_ghb_matches_
/// memoized` pins it to the optimized implementation output-for-output.
/// Only the delta-correlation flavors are replicated (the block-replay
/// bench's "before" leg); G/AC never walked chains.
#[derive(Debug)]
pub struct LegacyGhbPrefetcher {
    flavor: GhbFlavor,
    ghb: Vec<(u64, u64)>, // (block, prev position or u64::MAX)
    pushes: u64,
    it: Vec<(u16, u64, bool)>, // (tag, head position, valid)
    degree: u32,
    line_shift: u32,
    max_walk: u32,
    stats: PrefetcherStats,
    chain_buf: Vec<u64>,
    delta_buf: Vec<i64>,
}

impl LegacyGhbPrefetcher {
    /// Table 2 configuration: 2K GHB entries, 512 index entries, degree 3.
    pub fn paper_default(flavor: GhbFlavor) -> Self {
        assert!(
            flavor != GhbFlavor::GlobalAc,
            "the replica covers the delta-correlation flavors only"
        );
        LegacyGhbPrefetcher {
            flavor,
            ghb: vec![(0, 0); 2048],
            pushes: 0,
            it: vec![(0, 0, false); 512],
            degree: 3,
            line_shift: 6,
            max_walk: 64,
            stats: PrefetcherStats::default(),
            chain_buf: Vec::with_capacity(64),
            delta_buf: Vec::with_capacity(64),
        }
    }

    fn live(&self, pos: u64) -> bool {
        pos != u64::MAX && pos < self.pushes && self.pushes - pos <= self.ghb.len() as u64
    }

    fn chain_into(&self, head: u64, out: &mut Vec<u64>) {
        out.clear();
        let mut pos = head;
        while self.live(pos) && out.len() < self.max_walk as usize {
            let (block, prev) = self.ghb[(pos % self.ghb.len() as u64) as usize];
            out.push(block);
            if prev >= pos {
                break;
            }
            pos = prev;
        }
    }
}

impl Prefetcher for LegacyGhbPrefetcher {
    fn name(&self) -> &'static str {
        match self.flavor {
            GhbFlavor::GlobalDc => "ghb-g/dc",
            GhbFlavor::PcDc => "ghb-pc/dc",
            GhbFlavor::GlobalAc => "ghb-g/ac",
        }
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let block = ctx.addr >> self.line_shift;
        let key = match self.flavor {
            GhbFlavor::GlobalDc => 0,
            GhbFlavor::PcDc => ctx.pc,
            GhbFlavor::GlobalAc => unreachable!("rejected in the constructor"),
        };
        let h = key ^ (key >> 9);
        let (it_idx, tag) = ((h as usize) & (self.it.len() - 1), (key >> 2) as u16);
        let prev = {
            let (t, head, valid) = self.it[it_idx];
            if valid && t == tag && self.live(head) {
                head
            } else {
                u64::MAX
            }
        };
        let pos = self.pushes;
        let slot = (pos % self.ghb.len() as u64) as usize;
        self.ghb[slot] = (block, prev);
        self.pushes += 1;
        self.it[it_idx] = (tag, pos, true);

        let mut blocks = std::mem::take(&mut self.chain_buf);
        let mut deltas = std::mem::take(&mut self.delta_buf);
        self.chain_into(pos, &mut blocks);
        if blocks.len() < 4 {
            self.chain_buf = blocks;
            self.delta_buf = deltas;
            return;
        }
        deltas.clear();
        deltas.extend(blocks.windows(2).map(|w| w[0] as i64 - w[1] as i64));
        let (d1, d2) = (deltas[0], deltas[1]);
        let found = semloc_accel::find_pair_i64(&deltas, d1, d2);
        self.chain_buf = blocks;
        self.delta_buf = deltas;
        let Some(i) = found else { return };
        let deltas = &self.delta_buf;
        let mut target = block as i64;
        let mut k = 0u64;
        for j in (0..i).rev().take(self.degree as usize) {
            target += deltas[j];
            if target > 0 {
                k += 1;
                out.push(PrefetchReq::real((target as u64) << self.line_shift, k));
                self.stats.issued += 1;
            }
        }
    }

    fn on_issue_result(&mut self, _tag: u64, issued: bool) {
        if !issued {
            self.stats.rejected += 1;
        }
    }

    fn storage_bytes(&self) -> usize {
        self.ghb.len() * 8 + self.it.len() * 4
    }

    fn stats(&self) -> PrefetcherStats {
        self.stats
    }
}

/// The pre-acceleration parallel runner: `threads` scoped workers pulling
/// jobs off one atomic next-index counter and pushing results through a
/// single shared mutex (completion order). Results are re-sorted to job
/// order afterwards, exactly as `Matrix::run_parallel_with_store` did by
/// re-keying its result map.
pub fn legacy_parallel_map<J: Sync, R: Send>(
    threads: usize,
    jobs: &[J],
    run: impl Fn(&J) -> R + Sync,
) -> Vec<R> {
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: std::sync::Mutex<Vec<(usize, R)>> =
        std::sync::Mutex::new(Vec::with_capacity(jobs.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(job) = jobs.get(i) else { break };
                let r = run(job);
                results
                    .lock()
                    .expect("no panics hold the lock")
                    .push((i, r));
            });
        }
    });
    let mut out = results.into_inner().expect("workers finished");
    out.sort_by_key(|&(i, _)| i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    touched: bool,
    lru: u64,
    ready_at: Cycle,
}

/// Cache lookup outcome (mirrors `semloc_mem::LookupResult` shape-for-shape
/// so routines compile identically).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NestedLookup {
    /// Present and filled.
    Hit {
        /// First demand touch of a prefetched line.
        first_touch_of_prefetch: bool,
    },
    /// Present, fill outstanding.
    InFlight {
        /// Fill-completion cycle.
        ready_at: Cycle,
        /// The outstanding request is a prefetch.
        prefetch: bool,
    },
    /// Not present.
    Miss,
}

/// The original nested-`Vec` cache array (seed `cache.rs` storage layout,
/// with the demand-refill fix applied so behaviour matches the optimized
/// cache exactly).
#[derive(Debug)]
pub struct NestedCache {
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    line_shift: u32,
    tick: u64,
}

impl NestedCache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: &CacheConfig) -> Self {
        let sets = cfg.sets();
        NestedCache {
            sets: vec![vec![Line::default(); cfg.ways as usize]; sets as usize],
            set_mask: sets - 1,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
        }
    }

    #[inline]
    fn index(&self, addr: Addr) -> (usize, u64) {
        let block = addr >> self.line_shift;
        (
            (block & self.set_mask) as usize,
            block >> self.set_mask.count_ones(),
        )
    }

    /// Seed `Cache::lookup_demand` over nested sets.
    pub fn lookup_demand(&mut self, addr: Addr, now: Cycle, is_write: bool) -> NestedLookup {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        for line in &mut self.sets[set] {
            if line.valid && line.tag == tag {
                line.lru = tick;
                if is_write {
                    line.dirty = true;
                }
                if line.ready_at > now {
                    return NestedLookup::InFlight {
                        ready_at: line.ready_at,
                        prefetch: line.prefetched,
                    };
                }
                let first = line.prefetched && !line.touched;
                line.touched = true;
                line.prefetched = false;
                return NestedLookup::Hit {
                    first_touch_of_prefetch: first,
                };
            }
        }
        NestedLookup::Miss
    }

    /// Seed `Cache::fill` over nested sets. Returns whether a valid line
    /// was evicted.
    pub fn fill(&mut self, addr: Addr, ready_at: Cycle, prefetched: bool, dirty: bool) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(addr);
        let ways = &mut self.sets[set];
        if let Some(line) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= dirty;
            line.ready_at = line.ready_at.min(ready_at);
            if !prefetched {
                line.prefetched = false;
                line.touched = true;
            }
            return false;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("cache set has at least one way");
        let evicted = victim.valid;
        *victim = Line {
            tag,
            valid: true,
            dirty,
            prefetched,
            touched: false,
            lru: tick,
            ready_at,
        };
        evicted
    }
}

/// The original `ContextPrefetcher::on_access` pipeline: two-pass hashing,
/// per-prediction allocation + double sort, linear prefetch queue. CST,
/// reducer, history and exploration are the shared (unchanged) modules.
pub struct LegacyContextPrefetcher {
    cfg: ContextConfig,
    cst: ContextStatesTable,
    reducer: Reducer,
    history: HistoryQueue,
    pfq: LinearPrefetchQueue,
    rng: StdRng,
    hit_buf: Vec<PfqHit>,
}

impl LegacyContextPrefetcher {
    /// Build the replica from a configuration.
    pub fn new(cfg: ContextConfig) -> Self {
        cfg.validate();
        LegacyContextPrefetcher {
            cst: ContextStatesTable::new(cfg.cst_entries, cfg.replacement),
            reducer: Reducer::new(
                cfg.reducer_entries,
                cfg.initial_active,
                cfg.overload_threshold,
                cfg.underload_threshold,
                cfg.freeze_reducer,
            ),
            history: HistoryQueue::new(cfg.history_len),
            pfq: LinearPrefetchQueue::new(cfg.pfq_len),
            rng: StdRng::seed_from_u64(cfg.seed),
            hit_buf: Vec::with_capacity(8),
            cfg,
        }
    }

    /// Seed `ContextPrefetcher::on_access`.
    pub fn on_access(
        &mut self,
        ctx: &AccessContext,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let block = ctx.addr >> self.cfg.block_shift;

        // 1. Feedback.
        let mut hits = std::mem::take(&mut self.hit_buf);
        hits.clear();
        self.pfq.record_access(block, ctx.seq, &mut hits);
        let (lo, hi) = self.cfg.reward.window();
        for h in &hits {
            let r = self.cfg.reward.reward(h.depth);
            if h.depth < lo {
                self.cst.reward_capped(h.entry.key, h.entry.delta, r, 32);
            } else {
                self.cst.reward(h.entry.key, h.entry.delta, r);
            }
            let _ = h.depth >= lo && h.depth <= hi;
            self.cfg.exploration.observe(true);
        }
        self.hit_buf = hits;

        // 2. Two-pass context hashing.
        let full = FullHash::of(ctx, self.cfg.block_shift);
        let active = self.reducer.active_count(full);
        let key = ContextKey::of(ctx, active as usize, self.cfg.block_shift);
        if self
            .cst
            .note_shared_weak(key, full.0, self.cfg.split_strength_bar)
        {
            self.reducer.report_overload(full);
        }

        // 3. Collection.
        let mut samples: [Option<HistoryEntry>; 16] = [None; 16];
        let mut n = 0;
        for (_, e) in self.history.sample(&self.cfg.sample_depths) {
            if n == samples.len() {
                break;
            }
            samples[n] = Some(*e);
            n += 1;
        }
        let max_delta = self.cfg.max_delta();
        for e in samples.iter().take(n).flatten() {
            let delta64 = block as i64 - e.block as i64;
            if delta64 == 0 || delta64.abs() > max_delta {
                continue;
            }
            match self.cst.add_candidate(e.key, delta64 as i16) {
                AddOutcome::Evicted(victim_score) if victim_score > 0 => {
                    self.reducer.report_overload(e.full)
                }
                AddOutcome::Evicted(_) => {}
                AddOutcome::Allocated => self.reducer.report_underload(e.full),
                AddOutcome::Stored => {}
            }
        }

        // 4. Prediction: fresh Vec + double sort per access.
        self.predict(block, key, full, ctx.seq, pressure, out);

        // 5. History.
        self.history.push(HistoryEntry { key, full, block });
    }

    fn predict(
        &mut self,
        block: u64,
        key: ContextKey,
        full: FullHash,
        seq: u64,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let mut ranked = match self.cst.lookup(key) {
            Some(links) => links.ranked(),
            None => return,
        };
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| b.0.abs().cmp(&a.0.abs())));
        let explore_pick =
            if self.cfg.disable_shadow || !self.cfg.exploration.explore(&mut self.rng) {
                None
            } else {
                Some(ranked[self.rng.random_range(0..ranked.len())].0)
            };

        let acc = self.cfg.exploration.accuracy();
        let (step1, step2) = self.cfg.degree_accuracy_steps;
        let mut degree = 1 + (acc > step1) as u32 + (acc > step2) as u32;
        degree = degree.min(self.cfg.max_degree);
        let mshr_ok = pressure.l1_mshr_free > 1;

        let mut reals = 0u32;
        for &(delta, score) in &ranked {
            if reals >= degree {
                break;
            }
            if score < self.cfg.issue_score_threshold {
                break;
            }
            let target = block.wrapping_add(delta as i64 as u64);
            if self.pfq.predicts_real(target) {
                self.push_pred(target, key, full, delta, seq);
                continue;
            }
            if mshr_ok {
                let (id, expired) = self.pfq.push(target, key, full, delta, seq, false);
                self.expire(expired);
                out.push(PrefetchReq::real(target << self.cfg.block_shift, id));
                reals += 1;
            } else {
                self.push_pred(target, key, full, delta, seq);
            }
        }

        if reals == 0 && !self.cfg.disable_shadow {
            if let Some(&(delta, _)) = ranked.first() {
                let target = block.wrapping_add(delta as i64 as u64);
                if !self.pfq.predicts(target) {
                    self.push_pred(target, key, full, delta, seq);
                }
            }
        }

        if let Some(delta) = explore_pick {
            let target = block.wrapping_add(delta as i64 as u64);
            self.push_pred(target, key, full, delta, seq);
        }
    }

    fn push_pred(&mut self, target: u64, key: ContextKey, full: FullHash, delta: i16, seq: u64) {
        let (_, expired) = self.pfq.push(target, key, full, delta, seq, true);
        self.expire(expired);
    }

    fn expire(&mut self, expired: Option<PfqEntry>) {
        if let Some(e) = expired {
            if !e.hit {
                self.cst.reward(e.key, e.delta, self.cfg.reward.expiry());
                self.cfg.exploration.observe(false);
            }
        }
    }

    /// Reject a dispatched prefetch (seed `on_issue_result(_, false)`).
    pub fn reject(&mut self, tag: u64) {
        self.pfq.demote_to_shadow(tag);
    }
}

/// Lets `bench_compare` run the replica inside a full [`semloc_mem::
/// Hierarchy`] + CPU simulation, measuring the end-to-end "before" cost.
impl semloc_mem::Prefetcher for LegacyContextPrefetcher {
    fn name(&self) -> &'static str {
        "context-legacy"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        LegacyContextPrefetcher::on_access(self, ctx, pressure, out);
    }

    fn on_issue_result(&mut self, tag: u64, issued: bool) {
        if !issued {
            self.pfq.demote_to_shadow(tag);
        }
    }

    fn was_predicted(&self, addr: Addr) -> bool {
        self.pfq.predicts(addr >> self.cfg.block_shift)
    }

    fn storage_bytes(&self) -> usize {
        self.cfg.storage_bytes()
    }

    fn finish(&mut self) {
        let expiry = self.cfg.reward.expiry();
        let pending: Vec<PfqEntry> = self.pfq.drain().collect();
        for e in pending {
            if !e.hit {
                self.cst.reward(e.key, e.delta, expiry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semloc_context::ContextPrefetcher;
    use semloc_mem::Prefetcher;
    use semloc_trace::SemanticHints;

    fn pressure() -> MemPressure {
        MemPressure {
            l1_mshr_free: 4,
            l2_mshr_free: 20,
        }
    }

    /// A mixed stream: strided phase, pointer-chain phase, noise phase.
    fn stream(n: u64) -> impl Iterator<Item = AccessContext> {
        let mut state = 0xfeed_5eed_u64;
        (0..n).map(move |seq| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = match seq % 3 {
                0 => 0x10_0000 + seq * 64,
                1 => 0x80_0000 + (seq % 97) * 160,
                _ => 0x100_0000 + (state % (1 << 22)),
            };
            let mut c = AccessContext::bare(seq, 0x400 + (seq % 3) * 0x10, addr, seq % 7 == 0);
            c.reg1 = addr >> 5;
            c.branch_history = state as u16;
            c.last_loaded = state;
            if seq % 3 == 1 {
                c.hints = Some(SemanticHints::link(2, 8));
            }
            c
        })
    }

    #[test]
    fn legacy_prefetcher_matches_optimized() {
        let mut legacy = LegacyContextPrefetcher::new(ContextConfig::default());
        let mut new = ContextPrefetcher::new(ContextConfig::default());
        let (mut out_l, mut out_n) = (Vec::new(), Vec::new());
        for (i, c) in stream(20_000).enumerate() {
            out_l.clear();
            out_n.clear();
            legacy.on_access(&c, pressure(), &mut out_l);
            new.on_access(&c, pressure(), &mut out_n);
            assert_eq!(out_l, out_n, "divergence at access {i}");
            // Occasionally reject an issue on both sides.
            if i % 13 == 0 {
                for r in &out_l {
                    legacy.reject(r.tag);
                    new.on_issue_result(r.tag, false);
                }
            }
        }
    }

    #[test]
    fn legacy_scored_set_matches_soa() {
        let mut legacy = LegacyScoredSet::<i16, 4>::default();
        let mut soa = semloc_bandit::ScoredSet::<i16, 4>::default();
        let mut state = 0xabcd_u64;
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let action = (state % 23) as i16 - 11;
            match state % 3 {
                0 => assert_eq!(legacy.insert(action), soa.insert(action)),
                1 => {
                    let delta = (state % 33) as i32 - 16;
                    assert_eq!(
                        legacy.reward_capped(action, delta, 32),
                        soa.reward_capped(action, delta, 32)
                    );
                }
                _ => assert_eq!(legacy.best(), soa.best()),
            }
        }
    }

    #[test]
    fn ghb_correlate_replicas_agree() {
        let mut state = 0x5151_u64;
        let mut scratch = Vec::new();
        for len in [0usize, 3, 4, 9, 24, 48, 64] {
            let blocks: Vec<u64> = (0..len)
                .map(|_| {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    0x1000 + state % 7 // few distinct deltas => pairs recur
                })
                .collect();
            assert_eq!(
                legacy_ghb_correlate(&blocks, 4),
                sharded_ghb_correlate(&blocks, 4, &mut scratch),
                "len {len}"
            );
        }
    }

    #[test]
    fn legacy_ghb_matches_memoized() {
        for flavor in [GhbFlavor::GlobalDc, GhbFlavor::PcDc] {
            let mut legacy = LegacyGhbPrefetcher::paper_default(flavor);
            let mut new = semloc_baselines::GhbPrefetcher::paper_default(flavor);
            let mut state = 0x9e37_79b9_u64;
            let mut out_l = Vec::new();
            let mut out_n = Vec::new();
            for i in 0..30_000u64 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // A blend of strided streams (correlating) and noise from
                // 16 PCs, long enough to wrap the 2K ring.
                let pc = 0x400 + (state % 16) * 8;
                let addr = match state % 3 {
                    0 => 0x10_0000 + i * 64,
                    1 => 0x80_0000 + (i % 511) * 192,
                    _ => 0x100_0000 + (state % (1 << 20)),
                };
                let c = AccessContext::bare(i, pc, addr, false);
                out_l.clear();
                out_n.clear();
                legacy.on_access(&c, pressure(), &mut out_l);
                new.on_access(&c, pressure(), &mut out_n);
                assert_eq!(out_l, out_n, "{flavor:?} diverged at access {i}");
            }
            assert_eq!(legacy.stats(), new.stats());
        }
    }

    #[test]
    fn legacy_parallel_map_preserves_job_order() {
        let jobs: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 8] {
            let got = legacy_parallel_map(threads, &jobs, |&j| j * 3);
            assert_eq!(got, jobs.iter().map(|j| j * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn nested_cache_matches_flat_cache() {
        let cfg = CacheConfig::l1d();
        let mut nested = NestedCache::new(&cfg);
        let mut flat = semloc_mem::Cache::new(cfg);
        let mut state = 0x1234_u64;
        for now in 0..50_000u64 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let addr = (state % (1 << 20)) & !0x3f;
            match state % 4 {
                0 => {
                    let evicted = nested.fill(addr, now + 20, state.is_multiple_of(3), false);
                    let ev = flat.fill(addr, now + 20, state.is_multiple_of(3), false);
                    assert_eq!(evicted, ev.valid);
                }
                _ => {
                    let a = nested.lookup_demand(addr, now, state.is_multiple_of(5));
                    let b = flat.lookup_demand(addr, now, state.is_multiple_of(5));
                    let same = matches!(
                        (a, b),
                        (NestedLookup::Miss, semloc_mem::LookupResult::Miss)
                            | (
                                NestedLookup::Hit { .. },
                                semloc_mem::LookupResult::Hit { .. }
                            )
                            | (
                                NestedLookup::InFlight { .. },
                                semloc_mem::LookupResult::InFlight { .. }
                            )
                    );
                    assert!(same, "lookup diverged: {a:?} vs {b:?}");
                }
            }
        }
    }
}
