//! Interference-mode measurement (written to `BENCH_interfere.json`):
//! learned-context vs GHB/SMS resilience under phase changes and shared-L2
//! multi-core contention, plus the seeded adversarial search.
//!
//! Scenarios:
//!
//! * `phase-shift-1core` — a composed mcf→lbm→hashtest schedule on a
//!   single core, one run per prefetcher kind;
//! * `2core-antagonist` — the same schedule co-running against a streaming
//!   `array` antagonist through the shared L2 + DRAM model, one run per
//!   victim prefetcher kind;
//! * `4core-mix` — two composed schedules + two µkernels on four cores;
//! * `regression/*` — the three pinned adversarial collapse kernels
//!   evaluated on the warm-prefix [`AdvBench`];
//! * `search` — the full seeded hill-climb, reproducing the collapse
//!   points from scratch.
//!
//! Run with `cargo run --release -p semloc-bench --bin bench_interfere
//! [out.json]`; `SEMLOC_BUDGET` scales the composed-schedule length (the
//! CI job runs a reduced budget).

use std::fmt::Write as _;
use std::sync::Arc;

use semloc_harness::{
    adversarial_search, coverage, mc_digest, AdvBench, AdvParams, Engine, McConfig, McEngine,
    PrefetcherKind, RunResult, SearchConfig, SimConfig,
};
use semloc_workloads::{
    capture_kernel, kernel_by_name, AliasChains, CapturedTrace, Composer, PhaseFlip, ReplayKernel,
    RewardStraddle,
};

/// Fixed seed for every composed draw and the adversarial search; the
/// regression suite pins the parameter points this seed discovers.
const SEED: u64 = 42;

fn budget() -> u64 {
    std::env::var("SEMLOC_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(120_000)
}

fn capture(name: &str, b: u64) -> Arc<CapturedTrace> {
    let k = kernel_by_name(name).expect("registry kernel");
    Arc::new(capture_kernel(k.as_ref(), b))
}

fn kinds() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::context(),
        PrefetcherKind::GhbGdc,
        PrefetcherKind::Sms,
    ]
}

fn row(out: &mut String, key: &str, r: &RunResult) {
    let ipc = r.cpu.instructions as f64 / r.cpu.cycles.max(1) as f64;
    let _ = writeln!(
        out,
        "  \"{key}\": {{\"accuracy\": {:.4}, \"coverage\": {:.4}, \"l1_mpki\": {:.3}, \"ipc\": {:.4}}},",
        r.pf.accuracy(),
        coverage(r),
        r.mem.l1_mpki(r.cpu.instructions),
        ipc
    );
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interfere.json".into());
    let b = budget();
    let mut out = String::from("{\n");

    // Shared schedule: mcf→lbm→hashtest phase changes, scaled to budget.
    let menu: Vec<_> = ["mcf", "lbm", "hashtest"]
        .iter()
        .map(|n| capture(n, b / 2))
        .collect();
    let sched = Composer::new(SEED).phase_shift("bench-sched", &menu, 4, b / 8, b / 3);
    let sched_capture = Arc::new(capture_kernel(&sched, 0));
    let cfg = SimConfig::default().with_budget(0);

    // ---- phase-shift, single core --------------------------------------
    for kind in kinds() {
        let mut e = Engine::new(ReplayKernel::new(sched_capture.clone()), &kind, &cfg);
        e.run_to_end();
        let r = e.finish();
        row(
            &mut out,
            &format!("scenario/phase-shift-1core/{}", kind.label()),
            &r,
        );
    }

    // ---- 2-core: schedule vs streaming antagonist ----------------------
    let antagonist = capture("array", b / 2);
    let mut digest2 = 0u64;
    for kind in kinds() {
        let mut e = McEngine::new(
            vec![
                (ReplayKernel::new(sched_capture.clone()), kind.clone()),
                (
                    ReplayKernel::new(antagonist.clone()),
                    PrefetcherKind::Stride,
                ),
            ],
            &cfg,
            &McConfig::default(),
        );
        e.run_to_end();
        let (results, shared) = e.finish();
        if matches!(kind, PrefetcherKind::Context(_)) {
            digest2 = mc_digest(&results, &shared);
        }
        row(
            &mut out,
            &format!("scenario/2core-antagonist/{}", kind.label()),
            &results[0],
        );
    }

    // ---- 4-core mix ----------------------------------------------------
    let mut composer = Composer::new(SEED ^ 0x4c);
    let sched_b = composer.phase_shift("bench-sched-b", &menu, 3, b / 8, b / 4);
    let mut e4 = McEngine::new(
        vec![
            (
                ReplayKernel::new(sched_capture.clone()),
                PrefetcherKind::context(),
            ),
            (
                ReplayKernel::new(Arc::new(capture_kernel(&sched_b, 0))),
                PrefetcherKind::GhbGdc,
            ),
            (
                ReplayKernel::new(capture("list", b / 4)),
                PrefetcherKind::Sms,
            ),
            (
                ReplayKernel::new(capture("array", b / 4)),
                PrefetcherKind::Stride,
            ),
        ],
        &cfg,
        &McConfig::default(),
    );
    e4.run_to_end();
    let (results4, shared4) = e4.finish();
    let digest4 = mc_digest(&results4, &shared4);
    for r in &results4 {
        row(
            &mut out,
            &format!("scenario/4core-mix/{}/{}", r.kernel, r.prefetcher),
            r,
        );
    }
    let _ = writeln!(
        out,
        "  \"scenario/4core-mix/shared\": {{\"demand_lookups\": {}, \"demand_hits\": {}, \
         \"prefetch_fills\": {}, \"dram_queue_cycles\": {}}},",
        shared4.demand_lookups,
        shared4.demand_hits,
        shared4.prefetch_fills,
        shared4.dram_queue_cycles
    );

    // ---- pinned regression kernels on the warm-prefix bench ------------
    let search_cfg = SearchConfig {
        warmup: b / 3,
        tail: (b * 2) / 3,
        iters: 12,
    };
    let bench = AdvBench::new(&search_cfg, &SimConfig::default());
    let pinned = [
        AdvParams::Straddle(RewardStraddle::default()),
        AdvParams::Alias(AliasChains::default()),
        AdvParams::Flip(PhaseFlip::default()),
    ];
    for p in &pinned {
        let s = bench.eval(p).expect("bench eval");
        let _ = writeln!(
            out,
            "  \"regression/{}\": {{\"learned_accuracy\": {:.4}, \"learned_coverage\": {:.4}, \
             \"best_baseline\": \"{}\", \"baseline_coverage\": {:.4}, \"gap\": {:.4}}},",
            p.family(),
            s.learned_accuracy,
            s.learned_coverage,
            s.best_baseline,
            s.best_baseline_coverage,
            s.gap
        );
    }

    // ---- the seeded search itself --------------------------------------
    let findings =
        adversarial_search(SEED, &search_cfg, &SimConfig::default()).expect("adversarial search");
    for f in &findings {
        let _ = writeln!(
            out,
            "  \"search/{}\": {{\"params\": \"{}\", \"learned_accuracy\": {:.4}, \
             \"learned_coverage\": {:.4}, \"best_baseline\": \"{}\", \
             \"baseline_coverage\": {:.4}, \"gap\": {:.4}, \"evals\": {}}},",
            f.family,
            f.params.replace('"', "'"),
            f.learned_accuracy,
            f.learned_coverage,
            f.best_baseline,
            f.best_baseline_coverage,
            f.gap,
            f.evals
        );
    }

    let _ = writeln!(
        out,
        "  \"meta\": {{\"instr_budget\": {b}, \"seed\": {SEED}, \
         \"mc_digest_2core_context\": \"{digest2:#018x}\", \
         \"mc_digest_4core\": \"{digest4:#018x}\", \
         \"note\": \"schedule = seeded mcf/lbm/hashtest phase shifts; antagonist = streaming array on stride; \
         regression rows evaluate the pinned adversarial points on the warm-prefix bench; \
         search rows rerun the seeded hill-climb from scratch\"}}\n}}"
    );

    std::fs::write(&out_path, &out).expect("write bench json");
    println!("{out}");
    println!("wrote {out_path}");
}
