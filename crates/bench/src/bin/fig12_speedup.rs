//! Fig 12 — speedups over a no-prefetching baseline, per workload and
//! prefetcher, plus the paper's headline aggregates: average speedup over
//! the full set (paper: 32%, max 4.3×), over SPEC2006 alone (paper: 20%,
//! max 2.8×), and the context prefetcher's margin over the best competitor
//! (paper: ~76% higher average speedup, SMS the runner-up).

use semloc_bench::{banner, full_lineup, geomean, run_matrix};
use semloc_harness::{report, SimConfig, Table};
use semloc_workloads::{all_kernels, Suite};

fn main() {
    banner(
        "Fig 12",
        "Speedups delivered by the different prefetchers (baseline: no prefetching)",
        "up to 4.3x overall / 2.8x SPEC; averages 32% overall / 20% SPEC; context ~76% above best competitor",
    );
    let cfg = SimConfig::default();
    let kernels = all_kernels();
    let suites: Vec<Suite> = kernels.iter().map(|k| k.suite()).collect();
    let lineup = full_lineup();
    let m = run_matrix(&kernels, &lineup, &cfg);

    let mut table = Table::new(
        ["workload", "suite"]
            .into_iter()
            .map(String::from)
            .chain(m.prefetchers().iter().skip(1).map(|p| p.to_string())),
    );
    for (k, suite) in m.kernels().to_vec().iter().zip(&suites) {
        let mut row = vec![k.to_string(), suite.label().to_string()];
        for p in m.prefetchers().iter().skip(1) {
            row.push(match m.speedup(k, p) {
                Ok(s) => report::ratio(s),
                Err(_) => "n/a".to_string(),
            });
        }
        table.row(row);
    }
    println!("{}", table.render());

    let all: Vec<&str> = m.kernels().to_vec();
    let spec: Vec<&str> = m
        .kernels()
        .iter()
        .zip(&suites)
        .filter(|&(_, s)| *s == Suite::Spec)
        .map(|(&k, _)| k)
        .collect();

    println!("\naggregates (geometric mean of speedups):");
    let mut agg = Table::new(["prefetcher", "all", "spec2006", "max(all)"]);
    for p in m.prefetchers().iter().skip(1) {
        let max = all
            .iter()
            .filter_map(|k| m.speedup(k, p).ok())
            .fold(0.0f64, f64::max);
        agg.row([
            p.to_string(),
            report::ratio(m.geomean_speedup(p, &all).unwrap_or(f64::NAN)),
            report::ratio(m.geomean_speedup(p, &spec).unwrap_or(f64::NAN)),
            report::ratio(max),
        ]);
    }
    println!("{}", agg.render());

    let ctx_gain = m.geomean_speedup("context", &all).unwrap_or(f64::NAN) - 1.0;
    let best_other = m
        .prefetchers()
        .iter()
        .filter(|&&p| p != "none" && p != "context")
        .filter_map(|p| m.geomean_speedup(p, &all).ok())
        .fold(0.0f64, f64::max)
        - 1.0;
    println!(
        "\ncontext speedup vs best competitor's speedup: {} vs {} ({}% higher; paper: ~76%)",
        report::pct(ctx_gain),
        report::pct(best_other),
        if best_other > 0.0 {
            format!("{:.0}", (ctx_gain / best_other - 1.0) * 100.0)
        } else {
            "n/a".into()
        },
    );
    let _ = geomean([1.0]);

    if let Ok(path) = std::env::var("SEMLOC_CSV") {
        match std::fs::write(&path, m.to_csv()) {
            Ok(()) => eprintln!("wrote raw matrix CSV to {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
