//! Sensitivity of prefetcher value to core aggressiveness (extension
//! experiment): the same workloads on the Table-2 out-of-order core vs a
//! scoreboarded in-order pipeline.
//!
//! Expectation: an in-order core hides far less memory latency itself, so
//! *every* prefetcher's speedup grows — and the context prefetcher's
//! advantage on irregular code grows the most (it is the only one creating
//! memory-level parallelism the core cannot).

use semloc_bench::banner;
use semloc_cpu::CpuConfig;
use semloc_harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc_workloads::kernel_by_name;

fn main() {
    banner(
        "Core sensitivity",
        "Prefetcher speedups on out-of-order vs in-order cores (extension)",
        "prefetching matters more as the core hides less latency itself",
    );
    let names = ["mcf", "list", "hmmer", "array", "bst"];
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "workload", "ooo/stride", "ooo/context", "ino/stride", "ino/context"
    );
    for name in names {
        let k = kernel_by_name(name).expect("kernel");
        let mut row = vec![name.to_string()];
        for in_order in [false, true] {
            let cfg = SimConfig {
                cpu: CpuConfig {
                    in_order,
                    ..CpuConfig::default()
                },
                ..SimConfig::default()
            };
            let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
            for pf in [PrefetcherKind::Stride, PrefetcherKind::context()] {
                let r = run_kernel(k.as_ref(), &pf, &cfg);
                row.push(match r.speedup_over(&base) {
                    Ok(s) => format!("{s:.2}x"),
                    Err(_) => "n/a".to_string(),
                });
            }
            eprintln!("[done] {name} in_order={in_order}");
        }
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            row[0], row[1], row[2], row[3], row[4]
        );
    }
}
