//! Fig 14 — data-layout-agnostic programming: CPI of SSCA2 (a) and
//! Graph500 (b) in spatially-optimized (CSR) vs naive linked layouts, under
//! every prefetcher.
//!
//! The paper's claim: only the context prefetcher lets the naive linked
//! implementation approach the performance of the spatially optimized one;
//! spatio-temporal prefetchers distinctly favor the optimized layout.

use semloc_bench::{banner, full_lineup};
use semloc_harness::{run_kernel, PrefetcherKind, SimConfig, Table};
use semloc_workloads::kernel_by_name;

fn main() {
    banner(
        "Fig 14",
        "Prefetcher performance (CPI) on naive linked vs spatially optimized layouts",
        "context gives linked layouts performance comparable to optimized code",
    );
    let cfg = SimConfig::default();
    let mut lineup = vec![PrefetcherKind::None];
    lineup.extend(full_lineup());
    for (fig, csr, linked) in [
        ("a) SSCA2", "ssca2", "ssca2-list"),
        ("b) Graph500", "graph500", "graph500-list"),
    ] {
        println!("\n-- {fig} --");
        let mut t = Table::new(["prefetcher", "CSR cpi", "linked cpi", "linked/CSR"]);
        let mut best_linked = f64::INFINITY;
        let mut base_csr = 0.0;
        for pf in &lineup {
            let rc = run_kernel(kernel_by_name(csr).unwrap().as_ref(), pf, &cfg);
            let rl = run_kernel(kernel_by_name(linked).unwrap().as_ref(), pf, &cfg);
            eprintln!("[done] {fig} {}", pf.label());
            if pf.label() == "none" {
                base_csr = rc.cpu.cpi();
            }
            if pf.label() == "context" {
                best_linked = rl.cpu.cpi();
            }
            t.row([
                pf.label().to_string(),
                format!("{:.2}", rc.cpu.cpi()),
                format!("{:.2}", rl.cpu.cpi()),
                format!("{:.2}", rl.cpu.cpi() / rc.cpu.cpi()),
            ]);
        }
        println!("{}", t.render());
        println!(
            "context-on-linked CPI {best_linked:.2} vs unprefetched CSR CPI {base_csr:.2} ({})",
            if best_linked <= base_csr * 1.15 {
                "comparable - the paper's claim holds"
            } else {
                "gap remains"
            }
        );
    }
}
