//! Table 2 — simulator and prefetcher parameters, as configured by default.

use semloc_bench::banner;
use semloc_context::ContextConfig;
use semloc_harness::{PrefetcherKind, SimConfig};

fn main() {
    banner(
        "Table 2",
        "Simulator parameters",
        "must match the paper's configuration",
    );
    println!("{}\n", SimConfig::default().table2());

    let ctx = ContextConfig::default();
    println!("Context prefetcher");
    println!(
        "CST               {} entries x 4 links, direct-mapped",
        ctx.cst_entries
    );
    println!(
        "Reducer           {} entries, direct-mapped",
        ctx.reducer_entries
    );
    println!("History queue     {} entries", ctx.history_len);
    println!("Prefetch queue    {} entries", ctx.pfq_len);
    println!("Block granularity {} bytes", 1u64 << ctx.block_shift);
    println!(
        "Overall size      ~{:.1} kB (paper: ~31 kB)\n",
        ctx.storage_bytes() as f64 / 1024.0
    );

    println!("Competing prefetchers (storage scaled to the context budget)");
    for kind in [
        PrefetcherKind::Stride,
        PrefetcherKind::GhbGdc,
        PrefetcherKind::GhbPcdc,
        PrefetcherKind::Sms,
        PrefetcherKind::Markov,
    ] {
        let p = kind.build();
        println!(
            "{:<10} {:>6.1} kB",
            p.name(),
            p.storage_bytes() as f64 / 1024.0
        );
    }
}
