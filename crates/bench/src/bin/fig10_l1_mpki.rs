//! Fig 10 — L1 misses per kilo-instruction for the memory-intensive
//! workloads (baseline L1 MPKI > 5) plus the average over all workloads.

use semloc_bench::{banner, full_lineup, run_matrix};
use semloc_harness::{SimConfig, Table};
use semloc_workloads::all_kernels;

fn main() {
    banner(
        "Fig 10",
        "L1 MPKI per prefetcher (workloads with baseline MPKI > 5, plus all-workload average)",
        "context delivers consistently the lowest MPKI; average reduced ~4x vs no prefetching",
    );
    let cfg = SimConfig::default();
    let kernels = all_kernels();
    let lineup = full_lineup();
    let m = run_matrix(&kernels, &lineup, &cfg);

    let heavy = m.memory_intensive(5.0, false);
    let mut t = Table::new(
        ["workload".to_string()]
            .into_iter()
            .chain(m.prefetchers().iter().map(|p| p.to_string())),
    );
    for k in &heavy {
        let mut row = vec![k.to_string()];
        for p in m.prefetchers() {
            row.push(format!(
                "{:.1}",
                m.get(k, p).map(|r| r.l1_mpki()).unwrap_or(0.0)
            ));
        }
        t.row(row);
    }
    // Average over ALL workloads (as the paper's rightmost bars).
    let mut avg_row = vec!["AVERAGE(all)".to_string()];
    for p in m.prefetchers() {
        let s: f64 = m
            .kernels()
            .iter()
            .filter_map(|k| m.get(k, p))
            .map(|r| r.l1_mpki())
            .sum();
        avg_row.push(format!("{:.1}", s / m.kernels().len() as f64));
    }
    t.row(avg_row);
    println!("{}", t.render());
}
