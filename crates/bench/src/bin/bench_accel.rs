//! Before/after measurement of the acceleration layer (written to
//! `BENCH_accel.json`): per-kernel scalar-vs-SIMD rows for every
//! `semloc_accel` kernel, component rows against the pre-acceleration
//! replicas in [`semloc_bench::legacy`], and the end-to-end
//! 16-kernel × 6-prefetcher × sweep grid under the old fixed-count work
//! queue vs the work-stealing shard pool.
//!
//! "Before" numbers are live code: the portable scalar kernels (the exact
//! loops the SIMD tiers replace), the legacy replicas, and
//! [`legacy_parallel_map`] (the original atomic-counter queue). Every
//! before/after pair is digest-asserted bit-identical before timing.
//! Run with `cargo run --release -p semloc-bench --bin bench_accel
//! [accel.json]`; `SEMLOC_BUDGET` overrides the grid's 1M-instruction
//! per-cell budget.

// Wall-clock timing is this binary's purpose (semloc-lint rule D2 exempts the bench crate).
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use semloc_accel::{best_supported, Tier};
use semloc_bandit::{BellReward, RewardFunction, RewardLut, ScoredSet};
use semloc_bench::legacy::{
    legacy_ghb_correlate, legacy_parallel_map, sharded_ghb_correlate, LegacyScoredSet,
};
use semloc_harness::{
    run_kernel_with_store, run_sharded, storage_sweep_parallel_with_store,
    storage_sweep_with_store, PrefetcherKind, SimConfig, TraceStore,
};
use semloc_workloads::all_kernels;

/// xorshift64 — deterministic input streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Best-of-`reps` ns/element for `f` (each run processing `elems`
/// elements); minimum over repetitions, as in `bench_compare`.
fn time_per(reps: usize, elems: u64, mut f: impl FnMut() -> u64) -> f64 {
    black_box(f()); // warm-up
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64 / elems as f64
        })
        .fold(f64::INFINITY, f64::min)
}

fn tier_name(t: Tier) -> &'static str {
    match t {
        Tier::Scalar => "scalar",
        Tier::Sse2 => "sse2",
        Tier::Avx2 => "avx2",
        Tier::Avx512 => "avx512",
    }
}

// ---------------------------------------------------------------------------
// Per-kernel scalar vs SIMD rows
// ---------------------------------------------------------------------------

/// Lane counts chosen at and above the production shapes: 8 lanes is the
/// FeatureVec / cache-way scale, 48–128 covers GHB chains, pfq-scale scans
/// and sweep-widened tables. Needles are absent (full-scan worst case) so
/// both sides do identical work.
fn bench_simd_rows(row: &mut impl FnMut(&str, &str, f64, f64) -> f64) -> Vec<(String, f64)> {
    const ITERS: usize = 40_000;
    let best = best_supported();
    let bn = tier_name(best);
    let mut rng = Rng(0x5eed_0acc);
    let mut speedups = Vec::new();
    let mut push = |name: String, s: f64| speedups.push((name, s));

    // mix8: the FeatureVec hash loop (always exactly 8 lanes).
    let mut lanes = [0u64; 8];
    for l in lanes.iter_mut() {
        *l = rng.next();
    }
    let before = time_per(9, (ITERS * 8) as u64, || {
        let mut x = black_box(lanes);
        for _ in 0..ITERS {
            semloc_accel::mix8_with(Tier::Scalar, &mut x);
        }
        x[0]
    });
    let after = time_per(9, (ITERS * 8) as u64, || {
        let mut x = black_box(lanes);
        for _ in 0..ITERS {
            semloc_accel::mix8_with(best, &mut x);
        }
        x[0]
    });
    push(
        "mix8".into(),
        row(
            "mix8 (8 lanes)",
            &format!("simd/mix8_8/scalar_vs_{bn}"),
            before,
            after,
        ),
    );

    macro_rules! scan_row {
        ($label:expr, $bench:expr, $n:expr, $make:expr, $call:expr) => {{
            let data = $make($n, &mut rng);
            let before = time_per(9, ($n * ITERS) as u64, || {
                let mut acc = 0u64;
                for _ in 0..ITERS {
                    acc = acc.wrapping_add($call(Tier::Scalar, black_box(&data)));
                }
                acc
            });
            let after = time_per(9, ($n * ITERS) as u64, || {
                let mut acc = 0u64;
                for _ in 0..ITERS {
                    acc = acc.wrapping_add($call(best, black_box(&data)));
                }
                acc
            });
            push($label.into(), row($label, $bench, before, after));
        }};
    }

    scan_row!(
        "find_i16 (64 lanes)",
        &format!("simd/find_i16_64/scalar_vs_{bn}"),
        64,
        |n: usize, rng: &mut Rng| (0..n)
            .map(|_| (rng.next() % 1000) as i16)
            .collect::<Vec<i16>>(),
        |t, d: &Vec<i16>| semloc_accel::find_i16_with(t, d, -7).map_or(0, |i| i as u64)
    );
    scan_row!(
        "find_u64 (128 lanes)",
        &format!("simd/find_u64_128/scalar_vs_{bn}"),
        128,
        |n: usize, rng: &mut Rng| (0..n).map(|_| rng.next() | 1).collect::<Vec<u64>>(),
        |t, d: &Vec<u64>| semloc_accel::find_u64_with(t, d, 2).map_or(0, |i| i as u64)
    );
    scan_row!(
        "min_index_i8 (64 lanes)",
        &format!("simd/min_index_i8_64/scalar_vs_{bn}"),
        64,
        |n: usize, rng: &mut Rng| (0..n)
            .map(|_| (rng.next() % 200) as i8)
            .collect::<Vec<i8>>(),
        |t, d: &Vec<i8>| semloc_accel::min_index_i8_with(t, d).map_or(0, |i| i as u64)
    );
    scan_row!(
        "max_index_last_i8 (64 lanes)",
        &format!("simd/max_index_last_i8_64/scalar_vs_{bn}"),
        64,
        |n: usize, rng: &mut Rng| (0..n)
            .map(|_| (rng.next() % 200) as i8)
            .collect::<Vec<i8>>(),
        |t, d: &Vec<i8>| semloc_accel::max_index_last_i8_with(t, d).map_or(0, |i| i as u64)
    );
    scan_row!(
        "min_index_u32 (64 lanes)",
        &format!("simd/min_index_u32_64/scalar_vs_{bn}"),
        64,
        |n: usize, rng: &mut Rng| (0..n).map(|_| rng.next() as u32).collect::<Vec<u32>>(),
        |t, d: &Vec<u32>| semloc_accel::min_index_u32_with(t, d).map_or(0, |i| i as u64)
    );
    scan_row!(
        "find_pair_i64 (48 lanes)",
        &format!("simd/find_pair_i64_48/scalar_vs_{bn}"),
        48,
        |n: usize, rng: &mut Rng| (0..n)
            .map(|_| (rng.next() % 13) as i64)
            .collect::<Vec<i64>>(),
        |t, d: &Vec<i64>| {
            semloc_accel::find_pair_i64_with(t, d, 14, 14).map_or(0, |i| i as u64)
        }
    );

    // find_valid_tag / victim_way over a 64-way set-major stripe (the
    // sweep-widened shape; paper-default 8-way probes stay on the inlined
    // scalar side of the crossover).
    let tags: Vec<u64> = (0..64).map(|_| rng.next() | 1).collect();
    let valid: Vec<bool> = (0..64).map(|i| i % 7 != 0).collect();
    let lru: Vec<u64> = (0..64).map(|_| rng.next() >> 8).collect();
    let before = time_per(9, (64 * ITERS) as u64, || {
        let mut acc = 0u64;
        for _ in 0..ITERS {
            acc = acc.wrapping_add(
                semloc_accel::find_valid_tag_with(Tier::Scalar, black_box(&tags), &valid, 2)
                    .map_or(0, |i| i as u64),
            );
        }
        acc
    });
    let after = time_per(9, (64 * ITERS) as u64, || {
        let mut acc = 0u64;
        for _ in 0..ITERS {
            acc = acc.wrapping_add(
                semloc_accel::find_valid_tag_with(best, black_box(&tags), &valid, 2)
                    .map_or(0, |i| i as u64),
            );
        }
        acc
    });
    push(
        "find_valid_tag".into(),
        row(
            "find_valid_tag (64 ways)",
            &format!("simd/find_valid_tag_64/scalar_vs_{bn}"),
            before,
            after,
        ),
    );
    let before = time_per(9, (64 * ITERS) as u64, || {
        let mut acc = 0u64;
        for _ in 0..ITERS {
            acc = acc.wrapping_add(
                semloc_accel::victim_way_with(Tier::Scalar, black_box(&valid), &lru)
                    .map_or(0, |i| i as u64),
            );
        }
        acc
    });
    let after = time_per(9, (64 * ITERS) as u64, || {
        let mut acc = 0u64;
        for _ in 0..ITERS {
            acc = acc.wrapping_add(
                semloc_accel::victim_way_with(best, black_box(&valid), &lru)
                    .map_or(0, |i| i as u64),
            );
        }
        acc
    });
    push(
        "victim_way".into(),
        row(
            "victim_way (64 ways)",
            &format!("simd/victim_way_64/scalar_vs_{bn}"),
            before,
            after,
        ),
    );

    // gather_i32 over the tabulated bell (64-hit batches).
    let lut = RewardLut::new(&BellReward::paper_default());
    let idxs: Vec<u32> = (0..64).map(|_| (rng.next() % 160) as u32).collect();
    let mut out = vec![0i32; idxs.len()];
    let before = time_per(9, (idxs.len() * ITERS) as u64, || {
        let mut acc = 0u64;
        for _ in 0..ITERS {
            semloc_accel::gather_i32_with(Tier::Scalar, lut.table(), black_box(&idxs), &mut out);
            acc = acc.wrapping_add(out[0] as u64);
        }
        acc
    });
    let after = time_per(9, (idxs.len() * ITERS) as u64, || {
        let mut acc = 0u64;
        for _ in 0..ITERS {
            semloc_accel::gather_i32_with(best, lut.table(), black_box(&idxs), &mut out);
            acc = acc.wrapping_add(out[0] as u64);
        }
        acc
    });
    push(
        "gather_i32".into(),
        row(
            "gather_i32 (64 idxs)",
            &format!("simd/gather_i32_64/scalar_vs_{bn}"),
            before,
            after,
        ),
    );

    speedups
}

// ---------------------------------------------------------------------------
// Component rows (legacy replicas vs shipped implementations)
// ---------------------------------------------------------------------------

/// Bell-window reward evaluation: two `exp()` calls per hit vs one clamped
/// gather over the exact [`RewardLut`] tabulation.
fn bench_bell_reward() -> (f64, f64) {
    let bell = BellReward::paper_default();
    let lut = RewardLut::new(&bell);
    let mut rng = Rng(0xbe11);
    let depths: Vec<u32> = (0..4096).map(|_| (rng.next() % 160) as u32).collect();
    let mut out = vec![0i32; depths.len()];

    // Equality first (untimed).
    semloc_accel::gather_i32(lut.table(), &depths, &mut out);
    for (&d, &r) in depths.iter().zip(&out) {
        assert_eq!(r, bell.reward(d), "LUT must be exact at depth {d}");
    }

    let before = time_per(15, depths.len() as u64, || {
        let mut acc = 0i64;
        for &d in &depths {
            acc += bell.reward(d) as i64;
        }
        acc as u64
    });
    let after = time_per(15, depths.len() as u64, || {
        semloc_accel::gather_i32(lut.table(), &depths, &mut out);
        out.iter().map(|&r| r as i64).sum::<i64>() as u64
    });
    (before, after)
}

/// CST link maintenance: interleaved `Vec<Slot>` vs split-lane SoA, at the
/// paper's 4-links-per-entry shape, over a mixed insert/reward/best stream.
fn bench_scored_set(ops: usize) -> (f64, f64) {
    fn drive<F: FnMut(u64, i16, i32) -> u64>(ops: usize, mut f: F) -> u64 {
        let mut rng = Rng(0x5c0);
        let mut acc = 0u64;
        for _ in 0..ops {
            let r = rng.next();
            let action = (r % 23) as i16 - 11;
            let delta = ((r >> 8) % 33) as i32 - 16;
            acc = acc.wrapping_add(f(r, action, delta));
        }
        acc
    }
    let before = time_per(9, ops as u64, || {
        let mut set = LegacyScoredSet::<i16, 4>::default();
        drive(ops, |r, action, delta| match r % 3 {
            0 => set
                .insert(action)
                .map_or(0, |(a, s)| (a as i64 + s as i64) as u64),
            1 => set.reward_capped(action, delta, 32) as u64,
            _ => set.best().map_or(0, |(a, s)| (a as i64 + s as i64) as u64),
        })
    });
    let after = time_per(9, ops as u64, || {
        let mut set = ScoredSet::<i16, 4>::default();
        drive(ops, |r, action, delta| match r % 3 {
            0 => set
                .insert(action)
                .map_or(0, |(a, s)| (a as i64 + s as i64) as u64),
            1 => set.reward_capped(action, delta, 32) as u64,
            _ => set.best().map_or(0, |(a, s)| (a as i64 + s as i64) as u64),
        })
    });
    (before, after)
}

/// GHB delta correlation: fresh chain/delta `Vec`s + scalar pair scan per
/// trigger vs reusable scratch + the accelerated pair scan.
fn bench_ghb_correlate(iters: usize) -> (f64, f64) {
    let mut rng = Rng(0x6bb);
    let chains: Vec<Vec<u64>> = (0..64)
        .map(|_| {
            let len = 8 + (rng.next() % 57) as usize; // 8..=64, GHB chain scale
            (0..len).map(|_| 0x4_0000 + rng.next() % 11).collect()
        })
        .collect();
    let total: u64 = (iters * chains.len()) as u64;
    let before = time_per(9, total, || {
        let mut acc = 0u64;
        for _ in 0..iters {
            for c in &chains {
                acc = acc.wrapping_add(legacy_ghb_correlate(c, 4));
            }
        }
        acc
    });
    let mut scratch = Vec::new();
    let after = time_per(9, total, || {
        let mut acc = 0u64;
        for _ in 0..iters {
            for c in &chains {
                acc = acc.wrapping_add(sharded_ghb_correlate(c, 4, &mut scratch));
            }
        }
        acc
    });
    (before, after)
}

// ---------------------------------------------------------------------------
// End-to-end: the 16-kernel × 6-prefetcher × sweep grid
// ---------------------------------------------------------------------------

fn grid_lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::GhbGdc,
        PrefetcherKind::GhbPcdc,
        PrefetcherKind::Sms,
        PrefetcherKind::context(),
    ]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_accel.json".into());
    let budget: u64 = std::env::var("SEMLOC_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000_000);

    println!("component                       before (ns)   after (ns)   speedup");
    println!("-----------------------------------------------------------------");
    let mut json = String::from("{\n");
    let mut row = |name: &str, bench: &str, before: f64, after: f64| {
        let speedup = before / after;
        println!("{name:<30} {before:>12.2} {after:>12.2} {speedup:>8.2}x");
        let _ = writeln!(
            json,
            "  \"{bench}\": {{\"before_ns\": {before:.2}, \"after_ns\": {after:.2}, \"speedup\": {speedup:.3}}},"
        );
        speedup
    };

    // ---- per-kernel SIMD rows -----------------------------------------
    let simd = bench_simd_rows(&mut row);

    // ---- component rows ------------------------------------------------
    let (bell_before, bell_after) = bench_bell_reward();
    let bell_speedup = row(
        "bell reward (per hit)",
        "component/bell_reward/exp_vs_lut_gather",
        bell_before,
        bell_after,
    );
    let (ss_before, ss_after) = bench_scored_set(200_000);
    let ss_speedup = row(
        "scored set 4-link (per op)",
        "component/scored_set/interleaved_vs_soa",
        ss_before,
        ss_after,
    );
    let (ghb_before, ghb_after) = bench_ghb_correlate(400);
    let ghb_speedup = row(
        "ghb delta correlate (per blk)",
        "component/ghb_dc/alloc_vs_scratch_simd",
        ghb_before,
        ghb_after,
    );

    // ---- end-to-end grid: old queue vs shard pool ----------------------
    let kernels: Vec<_> = all_kernels().into_iter().take(16).collect();
    let lineup = grid_lineup();
    let cfg = SimConfig::default().with_budget(budget);
    let threads = semloc_harness::pool_threads();
    // Streams are shared and warm; the per-run result memo is disabled so
    // repeated grid passes actually simulate.
    let store = TraceStore::without_result_memo();

    let cells: Vec<(usize, usize)> = (0..kernels.len())
        .flat_map(|ki| (0..lineup.len()).map(move |pi| (ki, pi)))
        .collect();
    let run_cell = |&(ki, pi): &(usize, usize)| {
        run_kernel_with_store(&store, kernels[ki].as_ref(), &lineup[pi], &cfg)
    };

    // Correctness first (also warms the stream cache): both runners must
    // produce bit-identical per-cell statistics, in job order.
    eprintln!(
        "[grid] digest check + stream warm-up ({} cells)...",
        cells.len()
    );
    let old: Vec<_> = legacy_parallel_map(threads, &cells, run_cell);
    let new: Vec<_> = run_sharded(threads, cells.clone(), |c| run_cell(&c));
    assert_eq!(old.len(), new.len());
    for (o, n) in old.iter().zip(&new) {
        assert_eq!(
            o.stats_digest(),
            n.stats_digest(),
            "shard pool diverged on {}/{}",
            o.kernel,
            o.prefetcher
        );
    }
    let grid_digest = new
        .iter()
        .fold(0u64, |acc, r| acc ^ r.stats_digest().rotate_left(9));

    let sweep_sizes = [512usize, 2048];
    let sweep_seq = storage_sweep_with_store(&store, &kernels, &sweep_sizes, &cfg, |_| {});
    let sweep_par =
        storage_sweep_parallel_with_store(&store, &kernels, &sweep_sizes, &cfg, threads, |_| {});
    assert_eq!(sweep_seq.len(), sweep_par.len());
    for (s, p) in sweep_seq.iter().zip(&sweep_par) {
        assert_eq!(s.all.to_bits(), p.all.to_bits(), "sweep geomean diverged");
        assert_eq!(s.top10.to_bits(), p.top10.to_bits(), "sweep top10 diverged");
    }

    eprintln!("[grid] timing old queue vs shard pool (budget {budget})...");
    let grid_elems = (cells.len() as u64) * budget;
    let grid_before = time_per(2, grid_elems, || {
        let rs = legacy_parallel_map(threads, &cells, run_cell);
        let _ = storage_sweep_with_store(&store, &kernels, &sweep_sizes, &cfg, |_| {});
        rs.iter()
            .fold(0u64, |acc, r| acc ^ r.stats_digest().rotate_left(9))
    });
    let grid_after = time_per(2, grid_elems, || {
        let rs = run_sharded(threads, cells.clone(), |c| run_cell(&c));
        let _ = storage_sweep_parallel_with_store(
            &store,
            &kernels,
            &sweep_sizes,
            &cfg,
            threads,
            |_| {},
        );
        rs.iter()
            .fold(0u64, |acc, r| acc ^ r.stats_digest().rotate_left(9))
    });
    let grid_speedup = row(
        "grid 16k x 6pf + sweep (ns/instr)",
        "grid/old_queue_vs_shard_pool",
        grid_before,
        grid_after,
    );

    let simd_list = simd
        .iter()
        .map(|(n, s)| format!("\"{n}\": {s:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = write!(
        json,
        "  \"meta\": {{\"instr_budget\": {budget}, \"threads\": {threads}, \"best_tier\": \"{}\", \
         \"grid\": \"16 kernels x [none, stride, ghb-g/dc, ghb-pc/dc, sms, context] + storage sweep {:?}\", \
         \"grid_digest\": \"{grid_digest:#018x}\", \
         \"note\": \"before = live legacy code (scalar kernels, interleaved replicas, atomic-counter queue); every pair digest-asserted bit-identical before timing; pool speedup scales with available cores ({} here); mix8/victim_way rows are measured via *_with and record why those production wrappers ship scalar\"}}\n}}\n",
        tier_name(best_supported()),
        sweep_sizes,
        threads,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_accel.json");
    println!("\nwrote {out_path}");
    println!("simd rows: {simd_list}");

    // ---- floors --------------------------------------------------------
    // Floors sit at roughly half the steady-state measurements so CI
    // noise cannot flake them; the grid floor is a no-regression guard
    // (the pool's win is parallelism, and CI boxes may expose one core).
    // mix8 and victim_way are excluded: their measured losses are exactly
    // why the production wrappers route those two to the scalar kernel
    // (the rows stay in the JSON as the record of that decision).
    let floor_rows: Vec<&(String, f64)> = simd
        .iter()
        .filter(|(n, _)| !n.starts_with("mix8") && !n.starts_with("victim_way"))
        .collect();
    let geo = (floor_rows.iter().map(|(_, s)| s.ln()).sum::<f64>() / floor_rows.len() as f64).exp();
    assert!(
        geo >= 1.5,
        "shipped SIMD rows must average >= 1.5x over scalar (got {geo:.2}x)"
    );
    for (name, s) in &floor_rows {
        assert!(*s >= 0.8, "SIMD row {name} regressed vs scalar ({s:.2}x)");
    }
    assert!(
        bell_speedup >= 3.0,
        "bell reward LUT must deliver >= 3x over exp() evaluation (got {bell_speedup:.2}x)"
    );
    assert!(
        ghb_speedup >= 1.2,
        "GHB scratch + pair scan must deliver >= 1.2x (got {ghb_speedup:.2}x)"
    );
    assert!(
        ss_speedup >= 0.8,
        "SoA scored set must not regress (got {ss_speedup:.2}x)"
    );
    assert!(
        grid_speedup >= 0.85,
        "shard-pool grid must not regress vs the old queue (got {grid_speedup:.2}x)"
    );
}
