//! Before/after measurement of the hot-path rewrites, written to
//! `BENCH_hotpath.json`.
//!
//! "Before" numbers come from the legacy replicas in
//! [`semloc_bench::legacy`] (linear-scan prefetch queue, nested-`Vec`
//! cache, two-pass hashing, the original `on_access` pipeline); "after"
//! numbers from the shipped implementations. Both sides share the
//! unchanged CST/reducer/history/CPU code, so each ratio isolates the
//! rewritten component. Run with `cargo run --release -p semloc-bench
//! --bin bench_compare [output.json]`.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use semloc_bench::legacy::{LegacyContextPrefetcher, LinearPrefetchQueue, NestedCache};
use semloc_context::attrs::{ContextKey, FeatureVec, FullHash};
use semloc_context::pfq::{PfqHit, PrefetchQueue};
use semloc_context::{ContextConfig, ContextPrefetcher};
use semloc_cpu::Cpu;
use semloc_harness::SimConfig;
use semloc_mem::{Cache, CacheConfig, Hierarchy, MemPressure, Prefetcher};
use semloc_trace::{AccessContext, SemanticHints};
use semloc_workloads::kernel_by_name;

fn pressure() -> MemPressure {
    MemPressure {
        l1_mshr_free: 4,
        l2_mshr_free: 20,
    }
}

/// xorshift64 — deterministic input streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Best-of-`reps` ns/element for `f` (each run processing `elems`
/// elements). The minimum is the standard microbenchmark statistic: every
/// source of interference (scheduler, frequency, cache pollution) only
/// adds time, so the fastest observation is closest to the true cost.
fn time_per(reps: usize, elems: u64, mut f: impl FnMut() -> u64) -> f64 {
    black_box(f()); // warm-up
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64 / elems as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// A mixed access stream exercising every attribute and phase behaviour.
fn stream(n: u64) -> Vec<AccessContext> {
    let mut rng = Rng(0xfeed_5eed);
    (0..n)
        .map(|seq| {
            let r = rng.next();
            let addr = match seq % 3 {
                0 => 0x10_0000 + seq * 64,
                1 => 0x80_0000 + (seq % 97) * 160,
                _ => 0x100_0000 + (r % (1 << 22)),
            };
            let mut c = AccessContext::bare(seq, 0x400 + (seq % 3) * 0x10, addr, seq % 7 == 0);
            c.reg1 = addr >> 5;
            c.branch_history = r as u16;
            c.last_loaded = r;
            if seq % 3 == 1 {
                c.hints = Some(SemanticHints::link(2, 8));
            }
            c
        })
        .collect()
}

fn bench_hashing(ctxs: &[AccessContext]) -> (f64, f64) {
    let two_pass = time_per(15, ctxs.len() as u64, || {
        let mut acc = 0u64;
        for c in ctxs {
            let full = FullHash::of(c, 5);
            let key = ContextKey::of(c, 4, 5);
            acc = acc.wrapping_add(full.0 as u64).wrapping_add(key.0 as u64);
        }
        acc
    });
    let single_pass = time_per(15, ctxs.len() as u64, || {
        let mut acc = 0u64;
        for c in ctxs {
            let fv = FeatureVec::extract(c, 5);
            acc = acc
                .wrapping_add(fv.full_hash().0 as u64)
                .wrapping_add(fv.key(4).0 as u64);
        }
        acc
    });
    (two_pass, single_pass)
}

/// One op per element: the per-access queue traffic of the prediction
/// loop (record_access + predicts/predicts_real + pushes), on a full
/// 128-entry queue.
fn bench_pfq(n: u64) -> (f64, f64) {
    let ops: Vec<(u64, u64)> = {
        let mut rng = Rng(0xabcd);
        (0..n).map(|_| (rng.next() % 6, rng.next() % 512)).collect()
    };
    let key = ContextKey(1);
    let full = FullHash(2);
    let linear = time_per(15, n, || {
        let mut q = LinearPrefetchQueue::new(128);
        let mut hits: Vec<PfqHit> = Vec::new();
        let mut acc = 0u64;
        for (seq, &(op, block)) in ops.iter().enumerate() {
            match op {
                0..=2 => {
                    let (id, _) = q.push(block, key, full, 1, seq as u64, op == 2);
                    acc = acc.wrapping_add(id);
                }
                3 => {
                    hits.clear();
                    q.record_access(block, seq as u64, &mut hits);
                    acc = acc.wrapping_add(hits.len() as u64);
                }
                4 => acc = acc.wrapping_add(q.predicts(block) as u64),
                _ => acc = acc.wrapping_add(q.predicts_real(block) as u64),
            }
        }
        acc
    });
    let indexed = time_per(15, n, || {
        let mut q = PrefetchQueue::new(128);
        let mut hits: Vec<PfqHit> = Vec::new();
        let mut acc = 0u64;
        for (seq, &(op, block)) in ops.iter().enumerate() {
            match op {
                0..=2 => {
                    let (id, _) = q.push(block, key, full, 1, seq as u64, op == 2);
                    acc = acc.wrapping_add(id);
                }
                3 => {
                    hits.clear();
                    q.record_access(block, seq as u64, &mut hits);
                    acc = acc.wrapping_add(hits.len() as u64);
                }
                4 => acc = acc.wrapping_add(q.predicts(block) as u64),
                _ => acc = acc.wrapping_add(q.predicts_real(block) as u64),
            }
        }
        acc
    });
    (linear, indexed)
}

fn bench_cache(n: u64) -> (f64, f64) {
    let addrs: Vec<(u64, u64)> = {
        let mut rng = Rng(0x77);
        (0..n)
            .map(|_| (rng.next() % 4, (rng.next() % (1 << 21)) & !0x3f))
            .collect()
    };
    let nested = time_per(15, n, || {
        let mut c = NestedCache::new(&CacheConfig::l1d());
        let mut acc = 0u64;
        for (now, &(op, addr)) in addrs.iter().enumerate() {
            if op == 0 {
                acc = acc.wrapping_add(c.fill(addr, now as u64 + 20, op == 0, false) as u64);
            } else {
                acc = acc.wrapping_add(matches!(
                    c.lookup_demand(addr, now as u64, op == 1),
                    semloc_bench::legacy::NestedLookup::Hit { .. }
                ) as u64);
            }
        }
        acc
    });
    let flat = time_per(15, n, || {
        let mut c = Cache::new(CacheConfig::l1d());
        let mut acc = 0u64;
        for (now, &(op, addr)) in addrs.iter().enumerate() {
            if op == 0 {
                acc = acc.wrapping_add(c.fill(addr, now as u64 + 20, op == 0, false).valid as u64);
            } else {
                acc = acc.wrapping_add(matches!(
                    c.lookup_demand(addr, now as u64, op == 1),
                    semloc_mem::LookupResult::Hit { .. }
                ) as u64);
            }
        }
        acc
    });
    (nested, flat)
}

fn bench_on_access(ctxs: &[AccessContext]) -> (f64, f64) {
    let legacy = time_per(9, ctxs.len() as u64, || {
        let mut p = LegacyContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut acc = 0u64;
        for c in ctxs {
            out.clear();
            p.on_access(c, pressure(), &mut out);
            acc = acc.wrapping_add(out.len() as u64);
        }
        acc
    });
    let new = time_per(9, ctxs.len() as u64, || {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut acc = 0u64;
        for c in ctxs {
            out.clear();
            Prefetcher::on_access(&mut p, c, pressure(), &mut out);
            acc = acc.wrapping_add(out.len() as u64);
        }
        acc
    });
    (legacy, new)
}

/// Wall-clock of one full 50k-instruction simulated run of the `mcf`
/// kernel under prefetcher `P` — the `simulator_throughput/run_50k_instr/
/// context` scenario. Returns median ns per run.
fn bench_sim<P: Prefetcher, F: FnMut() -> P>(cfg: &SimConfig, mut build: F) -> f64 {
    let kernel = kernel_by_name("mcf").expect("registered");
    time_per(9, 1, || {
        let hierarchy = Hierarchy::new(cfg.mem.clone(), build());
        let mut cpu = Cpu::new(cfg.cpu.clone(), hierarchy, cfg.instr_budget);
        kernel.run(&mut cpu);
        let (stats, _mem) = cpu.finish();
        stats.instructions
    })
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let ctxs = stream(100_000);

    println!("component                       before (ns)   after (ns)   speedup");
    println!("-----------------------------------------------------------------");
    let mut json = String::from("{\n");
    let mut row = |name: &str, bench: &str, before: f64, after: f64| {
        let speedup = before / after;
        println!("{name:<30} {before:>12.2} {after:>12.2} {speedup:>8.2}x");
        let _ = writeln!(
            json,
            "  \"{bench}\": {{\"before_ns\": {before:.2}, \"after_ns\": {after:.2}, \"speedup\": {speedup:.3}}},"
        );
        speedup
    };

    let (two_pass, single_pass) = bench_hashing(&ctxs);
    row(
        "context hashing (per access)",
        "context_hashing/two_pass_vs_single_pass",
        two_pass,
        single_pass,
    );

    let (linear, indexed) = bench_pfq(200_000);
    row(
        "prefetch queue (per op)",
        "prefetch_queue/linear_vs_indexed",
        linear,
        indexed,
    );

    let (nested, flat) = bench_cache(400_000);
    row(
        "cache array (per access)",
        "cache/nested_vs_flat",
        nested,
        flat,
    );

    let (legacy_oa, new_oa) = bench_on_access(&ctxs);
    row(
        "prefetcher on_access",
        "context_prefetcher/on_access_mixed",
        legacy_oa,
        new_oa,
    );

    let cfg = SimConfig::default().with_budget(50_000);
    let sim_before = bench_sim(&cfg, || {
        LegacyContextPrefetcher::new(ContextConfig::default())
    });
    let sim_after = bench_sim(&cfg, || ContextPrefetcher::new(ContextConfig::default()));
    let sim_speedup = row(
        "simulator run_50k_instr/context",
        "simulator_throughput/run_50k_instr/context",
        sim_before,
        sim_after,
    );
    let _ = write!(
        json,
        "  \"meta\": {{\"kernel\": \"mcf\", \"instr_budget\": {}, \"note\": \"before = legacy replicas (linear PFQ, two-pass hashing, original on_access pipeline); cache comparison is component-level\"}}\n}}\n",
        cfg.instr_budget
    );
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    println!("\nwrote {out_path}");
    assert!(
        sim_speedup > 1.0,
        "end-to-end simulation must not regress (got {sim_speedup:.2}x)"
    );
}
