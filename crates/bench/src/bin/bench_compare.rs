//! Before/after measurement of the hot-path rewrites (written to
//! `BENCH_hotpath.json`), of the record-once/replay-many trace store
//! (written to `BENCH_trace.json`), of the checkpointable engine +
//! result memo (written to `BENCH_ckpt.json`), and of zero-decode block
//! replay (written to `BENCH_replay.json`).
//!
//! "Before" numbers come from the legacy replicas in
//! [`semloc_bench::legacy`] (linear-scan prefetch queue, nested-`Vec`
//! cache, two-pass hashing, the original `on_access` pipeline) and — for
//! the trace rows — from [`run_kernel_uncached`], which regenerates the
//! workload for every matrix cell as the harness did before the store.
//! For the checkpoint rows, "before" is the pre-checkpoint harness
//! behaviour: every figure pipeline re-simulates cells it shares with
//! other figures ([`TraceStore::without_result_memo`]), and a killed run
//! restarts from instruction zero. For the replay rows, "before" is the
//! harness as it shipped before block replay: a store with the
//! decoded-lane cache disabled (`with_decode_budget_mb(0)` — streaming
//! varint decode + one-instruction stepping) driving the walk-based
//! [`LegacyGhbPrefetcher`] for the GHB columns. "After" numbers come from
//! the shipped implementations. Run with `cargo run --release -p
//! semloc-bench --bin bench_compare [hotpath.json] [trace.json]
//! [ckpt.json] [replay.json]`.

// Wall-clock timing is this binary's purpose (semloc-lint rule D2 exempts the bench crate).
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use semloc_baselines::GhbFlavor;
use semloc_bench::full_lineup;
use semloc_bench::legacy::{
    LegacyContextPrefetcher, LegacyGhbPrefetcher, LinearPrefetchQueue, NestedCache,
};
use semloc_context::attrs::{ContextKey, FeatureVec, FullHash};
use semloc_context::pfq::{PfqHit, PrefetchQueue};
use semloc_context::{ContextConfig, ContextPrefetcher};
use semloc_cpu::Cpu;
use semloc_harness::{
    run_kernel_uncached, run_kernel_with_store, run_resumable, storage_sweep_with_store,
    CkptPayload, CkptStore, Engine, PrefetcherKind, SimCheckpoint, SimConfig, TraceStore,
};
use semloc_mem::{Cache, CacheConfig, Hierarchy, MemPressure, Prefetcher};
use semloc_trace::{AccessContext, CountingSink, SemanticHints, TraceSink};
use semloc_workloads::graph500::{Graph500, Layout};
use semloc_workloads::ukernels::{HashTest, ListTraversal};
use semloc_workloads::{
    capture_kernel, kernel_by_name, spec_suite, Kernel, KernelBox, ReplayKernel,
};

fn pressure() -> MemPressure {
    MemPressure {
        l1_mshr_free: 4,
        l2_mshr_free: 20,
    }
}

/// xorshift64 — deterministic input streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Best-of-`reps` ns/element for `f` (each run processing `elems`
/// elements). The minimum is the standard microbenchmark statistic: every
/// source of interference (scheduler, frequency, cache pollution) only
/// adds time, so the fastest observation is closest to the true cost.
fn time_per(reps: usize, elems: u64, mut f: impl FnMut() -> u64) -> f64 {
    black_box(f()); // warm-up
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos() as f64 / elems as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// A mixed access stream exercising every attribute and phase behaviour.
fn stream(n: u64) -> Vec<AccessContext> {
    let mut rng = Rng(0xfeed_5eed);
    (0..n)
        .map(|seq| {
            let r = rng.next();
            let addr = match seq % 3 {
                0 => 0x10_0000 + seq * 64,
                1 => 0x80_0000 + (seq % 97) * 160,
                _ => 0x100_0000 + (r % (1 << 22)),
            };
            let mut c = AccessContext::bare(seq, 0x400 + (seq % 3) * 0x10, addr, seq % 7 == 0);
            c.reg1 = addr >> 5;
            c.branch_history = r as u16;
            c.last_loaded = r;
            if seq % 3 == 1 {
                c.hints = Some(SemanticHints::link(2, 8));
            }
            c
        })
        .collect()
}

fn bench_hashing(ctxs: &[AccessContext]) -> (f64, f64) {
    let two_pass = time_per(15, ctxs.len() as u64, || {
        let mut acc = 0u64;
        for c in ctxs {
            let full = FullHash::of(c, 5);
            let key = ContextKey::of(c, 4, 5);
            acc = acc.wrapping_add(full.0 as u64).wrapping_add(key.0 as u64);
        }
        acc
    });
    let single_pass = time_per(15, ctxs.len() as u64, || {
        let mut acc = 0u64;
        for c in ctxs {
            let fv = FeatureVec::extract(c, 5);
            acc = acc
                .wrapping_add(fv.full_hash().0 as u64)
                .wrapping_add(fv.key(4).0 as u64);
        }
        acc
    });
    (two_pass, single_pass)
}

/// One op per element: the per-access queue traffic of the prediction
/// loop (record_access + predicts/predicts_real + pushes), on a full
/// 128-entry queue.
fn bench_pfq(n: u64) -> (f64, f64) {
    let ops: Vec<(u64, u64)> = {
        let mut rng = Rng(0xabcd);
        (0..n).map(|_| (rng.next() % 6, rng.next() % 512)).collect()
    };
    let key = ContextKey(1);
    let full = FullHash(2);
    let linear = time_per(15, n, || {
        let mut q = LinearPrefetchQueue::new(128);
        let mut hits: Vec<PfqHit> = Vec::new();
        let mut acc = 0u64;
        for (seq, &(op, block)) in ops.iter().enumerate() {
            match op {
                0..=2 => {
                    let (id, _) = q.push(block, key, full, 1, seq as u64, op == 2);
                    acc = acc.wrapping_add(id);
                }
                3 => {
                    hits.clear();
                    q.record_access(block, seq as u64, &mut hits);
                    acc = acc.wrapping_add(hits.len() as u64);
                }
                4 => acc = acc.wrapping_add(q.predicts(block) as u64),
                _ => acc = acc.wrapping_add(q.predicts_real(block) as u64),
            }
        }
        acc
    });
    let indexed = time_per(15, n, || {
        let mut q = PrefetchQueue::new(128);
        let mut hits: Vec<PfqHit> = Vec::new();
        let mut acc = 0u64;
        for (seq, &(op, block)) in ops.iter().enumerate() {
            match op {
                0..=2 => {
                    let (id, _) = q.push(block, key, full, 1, seq as u64, op == 2);
                    acc = acc.wrapping_add(id);
                }
                3 => {
                    hits.clear();
                    q.record_access(block, seq as u64, &mut hits);
                    acc = acc.wrapping_add(hits.len() as u64);
                }
                4 => acc = acc.wrapping_add(q.predicts(block) as u64),
                _ => acc = acc.wrapping_add(q.predicts_real(block) as u64),
            }
        }
        acc
    });
    (linear, indexed)
}

fn bench_cache(n: u64) -> (f64, f64) {
    let addrs: Vec<(u64, u64)> = {
        let mut rng = Rng(0x77);
        (0..n)
            .map(|_| (rng.next() % 4, (rng.next() % (1 << 21)) & !0x3f))
            .collect()
    };
    let nested = time_per(15, n, || {
        let mut c = NestedCache::new(&CacheConfig::l1d());
        let mut acc = 0u64;
        for (now, &(op, addr)) in addrs.iter().enumerate() {
            if op == 0 {
                acc = acc.wrapping_add(c.fill(addr, now as u64 + 20, op == 0, false) as u64);
            } else {
                acc = acc.wrapping_add(matches!(
                    c.lookup_demand(addr, now as u64, op == 1),
                    semloc_bench::legacy::NestedLookup::Hit { .. }
                ) as u64);
            }
        }
        acc
    });
    let flat = time_per(15, n, || {
        let mut c = Cache::new(CacheConfig::l1d());
        let mut acc = 0u64;
        for (now, &(op, addr)) in addrs.iter().enumerate() {
            if op == 0 {
                acc = acc.wrapping_add(c.fill(addr, now as u64 + 20, op == 0, false).valid as u64);
            } else {
                acc = acc.wrapping_add(matches!(
                    c.lookup_demand(addr, now as u64, op == 1),
                    semloc_mem::LookupResult::Hit { .. }
                ) as u64);
            }
        }
        acc
    });
    (nested, flat)
}

fn bench_on_access(ctxs: &[AccessContext]) -> (f64, f64) {
    let legacy = time_per(9, ctxs.len() as u64, || {
        let mut p = LegacyContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut acc = 0u64;
        for c in ctxs {
            out.clear();
            p.on_access(c, pressure(), &mut out);
            acc = acc.wrapping_add(out.len() as u64);
        }
        acc
    });
    let new = time_per(9, ctxs.len() as u64, || {
        let mut p = ContextPrefetcher::new(ContextConfig::default());
        let mut out = Vec::new();
        let mut acc = 0u64;
        for c in ctxs {
            out.clear();
            Prefetcher::on_access(&mut p, c, pressure(), &mut out);
            acc = acc.wrapping_add(out.len() as u64);
        }
        acc
    });
    (legacy, new)
}

/// Wall-clock of one full 50k-instruction simulated run of the `mcf`
/// kernel under prefetcher `P` — the `simulator_throughput/run_50k_instr/
/// context` scenario. Returns median ns per run.
fn bench_sim<P: Prefetcher, F: FnMut() -> P>(cfg: &SimConfig, mut build: F) -> f64 {
    let kernel = kernel_by_name("mcf").expect("registered");
    time_per(9, 1, || {
        let hierarchy = Hierarchy::new(cfg.mem.clone(), build());
        let mut cpu = Cpu::new(cfg.cpu.clone(), hierarchy, cfg.instr_budget);
        kernel.run(&mut cpu);
        let (stats, _mem) = cpu.finish();
        stats.instructions
    })
}

/// Production-scale kernel instances for the trace-store rows. At the
/// ROADMAP's target scales, per-run data-structure construction (graph
/// generation, list/table allocation) is a substantial share of each matrix
/// cell — exactly the cost the record-once/replay-many store amortizes
/// across prefetcher columns.
fn big_kernels() -> Vec<KernelBox> {
    vec![
        Box::new(Graph500 {
            layout: Layout::Csr,
            vertices: 131_072,
            degree: 16,
            seed: 71,
        }),
        Box::new(ListTraversal {
            nodes: 524_288,
            work: 3,
            seed: 11,
        }),
        Box::new(HashTest {
            buckets: 131_072,
            elems: 262_144,
            seed: 41,
        }),
    ]
}

/// The multi-column lineup of the end-to-end row: baseline plus the four
/// table-driven competitors (the Fig 12 set minus the context prefetcher,
/// whose training cost would dilute what this row isolates).
fn trace_lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::GhbGdc,
        PrefetcherKind::GhbPcdc,
        PrefetcherKind::Sms,
    ]
}

/// ns/instruction to *produce* the workload stream: running the generator
/// (graph construction + BFS) vs replaying a captured [`TraceBuffer`].
fn bench_stream_production(kernel: &dyn Kernel, budget: u64) -> (f64, f64) {
    let generate = time_per(9, budget, || {
        let mut sink = CountingSink::with_limit(budget);
        kernel.run(&mut sink);
        sink.total
    });
    let trace = std::sync::Arc::new(capture_kernel(kernel, budget));
    let replayer = ReplayKernel::new(trace);
    let replay = time_per(9, budget, || {
        let mut sink = CountingSink::with_limit(budget);
        replayer.run(&mut sink);
        sink.total
    });
    (generate, replay)
}

/// Wall-clock ns for the full kernels × lineup matrix: regenerating the
/// workload per cell (the pre-store harness behaviour, kept as
/// [`run_kernel_uncached`]) vs a fresh [`TraceStore`] capturing each kernel
/// once and replaying it for every column.
fn bench_trace_matrix(
    kernels: &[KernelBox],
    lineup: &[PrefetcherKind],
    cfg: &SimConfig,
) -> (f64, f64) {
    let regenerate = time_per(3, 1, || {
        let mut acc = 0u64;
        for k in kernels {
            for pf in lineup {
                acc = acc.wrapping_add(run_kernel_uncached(k.as_ref(), pf, cfg).cpu.cycles);
            }
        }
        acc
    });
    let replay = time_per(3, 1, || {
        let store = TraceStore::new();
        let mut acc = 0u64;
        for k in kernels {
            for pf in lineup {
                acc = acc.wrapping_add(
                    run_kernel_with_store(&store, k.as_ref(), pf, cfg)
                        .cpu
                        .cycles,
                );
            }
        }
        acc
    });
    (regenerate, replay)
}

/// One calibrated-context cell on a warm store vs uncached: the store
/// memoizes the no-prefetch probe and the captured stream, so a calibrated
/// re-run pays only the calibrated simulation itself.
fn bench_calibrated_rerun(kernel: &dyn Kernel, cfg: &SimConfig) -> (f64, f64) {
    let pf = PrefetcherKind::context_calibrated();
    let uncached = time_per(3, 1, || run_kernel_uncached(kernel, &pf, cfg).cpu.cycles);
    let store = TraceStore::new();
    run_kernel_with_store(&store, kernel, &pf, cfg); // warm capture + probe memo
    let warm = time_per(3, 1, || {
        run_kernel_with_store(&store, kernel, &pf, cfg).cpu.cycles
    });
    (uncached, warm)
}

/// The cells an `all_experiments`-style figure pipeline simulates: the
/// quick matrix (baseline + default context) followed by the Fig 13
/// storage sweep over `[512, 2048]`. The sweep's per-kernel baseline, its
/// ranking run at the default configuration, and its 2048-entry point all
/// duplicate matrix cells — exactly the overlap the result memo collapses.
/// Returns a digest over every statistic so before/after can assert
/// bit-identity.
fn figure_pipeline(store: &TraceStore, kernels: &[KernelBox], cfg: &SimConfig) -> u64 {
    let lineup = [PrefetcherKind::None, PrefetcherKind::context()];
    let mut acc = 0u64;
    for k in kernels {
        for pf in &lineup {
            acc ^= run_kernel_with_store(store, k.as_ref(), pf, cfg).stats_digest();
        }
    }
    for p in storage_sweep_with_store(store, kernels, &[512, 2048], cfg, |_| {}) {
        acc ^= p.all.to_bits() ^ p.top10.to_bits().rotate_left(17);
    }
    acc
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let trace_out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_trace.json".into());
    let ctxs = stream(100_000);

    println!("component                       before (ns)   after (ns)   speedup");
    println!("-----------------------------------------------------------------");
    let mut json = String::from("{\n");
    let mut row = |name: &str, bench: &str, before: f64, after: f64| {
        let speedup = before / after;
        println!("{name:<30} {before:>12.2} {after:>12.2} {speedup:>8.2}x");
        let _ = writeln!(
            json,
            "  \"{bench}\": {{\"before_ns\": {before:.2}, \"after_ns\": {after:.2}, \"speedup\": {speedup:.3}}},"
        );
        speedup
    };

    let (two_pass, single_pass) = bench_hashing(&ctxs);
    row(
        "context hashing (per access)",
        "context_hashing/two_pass_vs_single_pass",
        two_pass,
        single_pass,
    );

    let (linear, indexed) = bench_pfq(200_000);
    row(
        "prefetch queue (per op)",
        "prefetch_queue/linear_vs_indexed",
        linear,
        indexed,
    );

    let (nested, flat) = bench_cache(400_000);
    row(
        "cache array (per access)",
        "cache/nested_vs_flat",
        nested,
        flat,
    );

    let (legacy_oa, new_oa) = bench_on_access(&ctxs);
    row(
        "prefetcher on_access",
        "context_prefetcher/on_access_mixed",
        legacy_oa,
        new_oa,
    );

    let cfg = SimConfig::default().with_budget(50_000);
    let sim_before = bench_sim(&cfg, || {
        LegacyContextPrefetcher::new(ContextConfig::default())
    });
    let sim_after = bench_sim(&cfg, || ContextPrefetcher::new(ContextConfig::default()));
    let sim_speedup = row(
        "simulator run_50k_instr/context",
        "simulator_throughput/run_50k_instr/context",
        sim_before,
        sim_after,
    );
    let _ = write!(
        json,
        "  \"meta\": {{\"kernel\": \"mcf\", \"instr_budget\": {}, \"note\": \"before = legacy replicas (linear PFQ, two-pass hashing, original on_access pipeline); cache comparison is component-level\"}}\n}}\n",
        cfg.instr_budget
    );
    std::fs::write(&out_path, &json).expect("write BENCH_hotpath.json");
    println!("\nwrote {out_path}");

    // ---- trace store: record-once / replay-many ------------------------
    let kernels = big_kernels();
    let lineup = trace_lineup();
    let cfg = SimConfig::default().with_budget(60_000);

    // Correctness first (untimed): the store must be invisible in the
    // results — every cell's statistics digest must match the uncached run.
    {
        let store = TraceStore::new();
        for k in &kernels {
            for pf in &lineup {
                let cached = run_kernel_with_store(&store, k.as_ref(), pf, &cfg);
                let uncached = run_kernel_uncached(k.as_ref(), pf, &cfg);
                assert_eq!(
                    cached.stats_digest(),
                    uncached.stats_digest(),
                    "{}/{}: replay-backed stats diverged from regeneration",
                    k.name(),
                    pf.label()
                );
            }
        }
    }

    println!();
    println!("trace store                     before (ns)   after (ns)   speedup");
    println!("-----------------------------------------------------------------");
    let mut trace_json = String::from("{\n");
    let mut trace_row = |name: &str, bench: &str, before: f64, after: f64| {
        let speedup = before / after;
        println!("{name:<30} {before:>12.2} {after:>12.2} {speedup:>8.2}x");
        let _ = writeln!(
            trace_json,
            "  \"{bench}\": {{\"before_ns\": {before:.2}, \"after_ns\": {after:.2}, \"speedup\": {speedup:.3}}},"
        );
        speedup
    };

    let (generate, replay) = bench_stream_production(kernels[0].as_ref(), cfg.instr_budget);
    trace_row(
        "stream production (per instr)",
        "trace_store/replay_vs_generate",
        generate,
        replay,
    );

    let (regen_matrix, replay_matrix) = bench_trace_matrix(&kernels, &lineup, &cfg);
    let matrix_speedup = trace_row(
        "matrix end-to-end (3k x 5pf)",
        "trace_store/matrix_end_to_end",
        regen_matrix,
        replay_matrix,
    );

    let (cal_uncached, cal_warm) = bench_calibrated_rerun(kernels[1].as_ref(), &cfg);
    let cal_speedup = trace_row(
        "calibrated cell, warm store",
        "trace_store/calibrated_rerun",
        cal_uncached,
        cal_warm,
    );

    let _ = write!(
        trace_json,
        "  \"meta\": {{\"kernels\": [\"graph500 32768v x16\", \"list 131072n\", \"hashtest 32768b/65536e\"], \"lineup\": [\"none\", \"stride\", \"ghb-g/dc\", \"ghb-pc/dc\", \"sms\"], \"instr_budget\": {}, \"note\": \"before = run_kernel_uncached (regenerate per cell); after = shared TraceStore (capture once, replay per column); per-cell stats digests asserted equal before timing\"}}\n}}\n",
        cfg.instr_budget
    );
    std::fs::write(&trace_out_path, &trace_json).expect("write BENCH_trace.json");
    println!("\nwrote {trace_out_path}");

    // ---- checkpointable engine + full-run result memo ------------------
    let ckpt_out_path = std::env::args()
        .nth(3)
        .unwrap_or_else(|| "BENCH_ckpt.json".into());
    let small: Vec<KernelBox> = ["array", "list", "mcf"]
        .iter()
        .map(|n| kernel_by_name(n).expect("registered"))
        .collect();
    let cfg = SimConfig::quick();

    // Correctness first (untimed): sharing warm state across the matrix
    // and the sweep must be invisible in every statistic.
    let pipeline_digest = figure_pipeline(&TraceStore::without_result_memo(), &small, &cfg);
    assert_eq!(
        figure_pipeline(&TraceStore::new(), &small, &cfg),
        pipeline_digest,
        "result memo changed the figure pipeline's statistics"
    );

    println!();
    println!("checkpoint engine               before (ns)   after (ns)   speedup");
    println!("-----------------------------------------------------------------");
    let mut ckpt_json = String::from("{\n");
    let mut ckpt_row = |name: &str, bench: &str, before: f64, after: f64| {
        let speedup = before / after;
        println!("{name:<30} {before:>12.2} {after:>12.2} {speedup:>8.2}x");
        let _ = writeln!(
            ckpt_json,
            "  \"{bench}\": {{\"before_ns\": {before:.2}, \"after_ns\": {after:.2}, \"speedup\": {speedup:.3}}},"
        );
        speedup
    };

    let pipe_before = time_per(2, 1, || {
        figure_pipeline(&TraceStore::without_result_memo(), &small, &cfg)
    });
    let pipe_after = time_per(2, 1, || figure_pipeline(&TraceStore::new(), &small, &cfg));
    let pipeline_speedup = ckpt_row(
        "matrix+sweep pipeline",
        "checkpoint/matrix_sweep_pipeline",
        pipe_before,
        pipe_after,
    );

    let kind = PrefetcherKind::context();
    let replay = ReplayKernel::new(std::sync::Arc::new(capture_kernel(
        kernel_by_name("list").expect("registered").as_ref(),
        cfg.instr_budget,
    )));
    let ckpt_bytes = {
        let mut e = Engine::new(replay.clone(), &kind, &cfg);
        e.run_to(cfg.instr_budget / 2);
        e.checkpoint().to_bytes()
    };
    let restart = time_per(5, 1, || {
        let mut e = Engine::new(replay.clone(), &kind, &cfg);
        e.run_to_end();
        e.finish().cpu.cycles
    });
    let resume = time_per(5, 1, || {
        let ckpt = SimCheckpoint::from_bytes(&ckpt_bytes).expect("own checkpoint decodes");
        let mut e = Engine::new(replay.clone(), &kind, &cfg);
        e.restore(&ckpt).expect("own checkpoint restores");
        e.run_to_end();
        e.finish().cpu.cycles
    });
    let resume_speedup = ckpt_row(
        "kill at 50%: restart vs resume",
        "checkpoint/kill_resume_half",
        restart,
        resume,
    );

    let dir = std::env::temp_dir().join(format!("semloc-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CkptStore::with_dir(&dir);
    let warm = run_resumable(&store, replay.clone(), &kind, &cfg);
    match store.load(
        "list",
        Engine::new(replay.clone(), &kind, &cfg).fingerprint(),
    ) {
        Some(CkptPayload::Final(_)) => {}
        other => panic!("expected a final checkpoint on disk, got {other:?}"),
    }
    let disabled = CkptStore::new();
    let fresh_once = run_resumable(&disabled, replay.clone(), &kind, &cfg);
    assert_eq!(
        warm.stats_digest(),
        fresh_once.stats_digest(),
        "resumable run diverged from the checkpoint-free run"
    );
    let fresh = time_per(5, 1, || {
        run_resumable(&disabled, replay.clone(), &kind, &cfg)
            .cpu
            .cycles
    });
    let shortcut = time_per(5, 1, || {
        run_resumable(&store, replay.clone(), &kind, &cfg)
            .cpu
            .cycles
    });
    let _ = std::fs::remove_dir_all(&dir);
    let shortcut_speedup = ckpt_row(
        "finished cell, final ckpt",
        "checkpoint/final_short_circuit",
        fresh,
        shortcut,
    );

    let _ = write!(
        ckpt_json,
        "  \"meta\": {{\"kernels\": [\"array\", \"list\", \"mcf\"], \"instr_budget\": {}, \"sweep_sizes\": [512, 2048], \"note\": \"before = pre-checkpoint harness (no shared result memo, killed runs restart from zero, finished cells re-simulate); after = warm-state pipeline + SEMLOC-CKPT resume; pipeline digests asserted bit-identical before timing\"}}\n}}\n",
        cfg.instr_budget
    );
    std::fs::write(&ckpt_out_path, &ckpt_json).expect("write BENCH_ckpt.json");
    println!("\nwrote {ckpt_out_path}");

    // ---- zero-decode block replay --------------------------------------
    let replay_out_path = std::env::args()
        .nth(4)
        .unwrap_or_else(|| "BENCH_replay.json".into());
    let grid = spec_suite();
    let mut lineup = vec![PrefetcherKind::None];
    lineup.extend(full_lineup());
    let cfg = SimConfig::default();

    // One full pass of the production matrix (16 SPEC proxies x 6
    // prefetchers) against a fresh store, returning the folded cycle count.
    let grid_pass = |store: &TraceStore| {
        let mut acc = 0u64;
        for k in &grid {
            for pf in &lineup {
                acc = acc.wrapping_add(
                    run_kernel_with_store(store, k.as_ref(), pf, &cfg)
                        .cpu
                        .cycles,
                );
            }
        }
        acc
    };

    // One PR 6 baseline cell: streaming varint decode, one-instruction
    // stepping, and the walk-based GHB replica for the GHB columns.
    // Assembled manually because `PrefetcherKind` can only build the
    // shipped (chain-memoized) implementation.
    let legacy_ghb_cell = |store: &TraceStore, k: &dyn Kernel, flavor: GhbFlavor| {
        let replayer = store.replay(k, cfg.instr_budget);
        let pf: Box<dyn Prefetcher> = Box::new(LegacyGhbPrefetcher::paper_default(flavor));
        let hierarchy = Hierarchy::new(cfg.mem.clone(), pf);
        let mut cpu = Cpu::new(cfg.cpu.clone(), hierarchy, cfg.instr_budget);
        let target = if cfg.instr_budget == 0 {
            u64::MAX
        } else {
            cfg.instr_budget
        };
        for i in replayer.trace().buf.iter_from(0) {
            if cpu.stats().instructions >= target {
                break;
            }
            cpu.instr(i);
        }
        cpu.finish().0
    };

    // The PR 6 pass over the whole grid: non-GHB columns run the shipped
    // implementations through the streaming path (unchanged by this PR),
    // GHB columns run the frozen walk-based replica.
    let legacy_pass = |store: &TraceStore| {
        let mut acc = 0u64;
        for k in &grid {
            for pf in &lineup {
                let cycles = match pf {
                    PrefetcherKind::GhbGdc => {
                        legacy_ghb_cell(store, k.as_ref(), GhbFlavor::GlobalDc).cycles
                    }
                    PrefetcherKind::GhbPcdc => {
                        legacy_ghb_cell(store, k.as_ref(), GhbFlavor::PcDc).cycles
                    }
                    _ => {
                        run_kernel_with_store(store, k.as_ref(), pf, &cfg)
                            .cpu
                            .cycles
                    }
                };
                acc = acc.wrapping_add(cycles);
            }
        }
        acc
    };

    // Correctness first (untimed): decoded block replay must be invisible
    // in the results — every cell's statistics digest must match the
    // streaming-decode run — and the decoded store must have expanded each
    // stream exactly once for the whole grid (the decode-once property).
    let decoded_store = TraceStore::new();
    let streaming_store = TraceStore::new().with_decode_budget_mb(0);
    for k in &grid {
        for pf in &lineup {
            let decoded = run_kernel_with_store(&decoded_store, k.as_ref(), pf, &cfg);
            let streaming = run_kernel_with_store(&streaming_store, k.as_ref(), pf, &cfg);
            assert_eq!(
                decoded.stats_digest(),
                streaming.stats_digest(),
                "{}/{}: decoded block replay diverged from streaming decode",
                k.name(),
                pf.label()
            );
            // The PR 6 baseline leg must simulate the same machine: the
            // walk-based GHB replica has to reproduce the shipped cell's
            // CPU statistics exactly.
            let legacy = match pf {
                PrefetcherKind::GhbGdc => Some(legacy_ghb_cell(
                    &streaming_store,
                    k.as_ref(),
                    GhbFlavor::GlobalDc,
                )),
                PrefetcherKind::GhbPcdc => Some(legacy_ghb_cell(
                    &streaming_store,
                    k.as_ref(),
                    GhbFlavor::PcDc,
                )),
                _ => None,
            };
            if let Some(legacy) = legacy {
                assert_eq!(
                    legacy,
                    streaming.cpu,
                    "{}/{}: walk-based GHB replica diverged from the shipped cell",
                    k.name(),
                    pf.label()
                );
            }
        }
    }
    let once = decoded_store.decode_stats();
    assert!(
        once.misses <= grid.len() as u64,
        "decode-once violated: {} decodes for {} kernels",
        once.misses,
        grid.len()
    );
    assert_eq!(once.evictions, 0, "default budget must hold the full grid");
    let never = streaming_store.decode_stats();
    assert_eq!(
        (never.hits, never.misses),
        (0, 0),
        "a zero-budget store must never touch the decode cache"
    );

    println!();
    println!("block replay                    before (ns)   after (ns)   speedup");
    println!("-----------------------------------------------------------------");
    let mut replay_json = String::from("{\n");
    let mut replay_row = |name: &str, bench: &str, before: f64, after: f64| {
        let speedup = before / after;
        println!("{name:<30} {before:>12.2} {after:>12.2} {speedup:>8.2}x");
        let _ = writeln!(
            replay_json,
            "  \"{bench}\": {{\"before_ns\": {before:.2}, \"after_ns\": {after:.2}, \"speedup\": {speedup:.3}}},"
        );
        speedup
    };

    // Fresh stores inside the timed closures: each rep pays capture +
    // (for "after") decode + replay for the whole grid, so the comparison
    // is end-to-end matrix wall-clock, not a warm-cache microbenchmark.
    let streaming_matrix = time_per(2, 1, || {
        legacy_pass(&TraceStore::new().with_decode_budget_mb(0))
    });
    let decoded_matrix = time_per(2, 1, || grid_pass(&TraceStore::new()));
    let replay_speedup = replay_row(
        "matrix end-to-end (16k x 6pf)",
        "replay/matrix_end_to_end",
        streaming_matrix,
        decoded_matrix,
    );

    let _ = writeln!(
        replay_json,
        "  \"replay/decode_once\": {{\"kernels\": {}, \"cells\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}}},",
        grid.len(),
        grid.len() * lineup.len(),
        once.hits,
        once.misses,
        once.evictions
    );
    let _ = write!(
        replay_json,
        "  \"meta\": {{\"kernels\": \"16 SPEC proxies\", \"lineup\": [\"none\", \"stride\", \"ghb-g/dc\", \"ghb-pc/dc\", \"sms\", \"context\"], \"instr_budget\": {}, \"note\": \"before = the PR 6 harness: streaming varint decode + one-instruction stepping (SEMLOC_DECODE_CACHE_MB=0) with the walk-based GHB; after = decoded-lane cache + block-batched stepping + chain-memoized GHB; per-cell stats digests asserted bit-identical (decoded vs streaming, and legacy GHB vs shipped) and decode-once (<= 1 decode per kernel per run) asserted via store counters before timing\"}}\n}}\n",
        cfg.instr_budget
    );
    std::fs::write(&replay_out_path, &replay_json).expect("write BENCH_replay.json");
    println!("\nwrote {replay_out_path}");

    assert!(
        sim_speedup > 1.0,
        "end-to-end simulation must not regress (got {sim_speedup:.2}x)"
    );
    assert!(
        matrix_speedup >= 1.5,
        "trace store must deliver >= 1.5x on the multi-column matrix (got {matrix_speedup:.2}x)"
    );
    assert!(
        cal_speedup > 1.0,
        "warm-store calibrated rerun must not regress (got {cal_speedup:.2}x)"
    );
    assert!(
        pipeline_speedup >= 1.3,
        "warm-state pipeline must deliver >= 1.3x on matrix+sweep (got {pipeline_speedup:.2}x)"
    );
    assert!(
        resume_speedup > 1.2,
        "resuming from a 50% checkpoint must beat restarting (got {resume_speedup:.2}x)"
    );
    assert!(
        shortcut_speedup > 2.0,
        "a final checkpoint must short-circuit simulation (got {shortcut_speedup:.2}x)"
    );
    assert!(
        replay_speedup >= 1.4,
        "decoded block replay must deliver >= 1.4x on the production matrix (got {replay_speedup:.2}x)"
    );
}
