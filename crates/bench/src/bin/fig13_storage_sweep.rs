//! Fig 13 — impact of CST storage size on overall speedup, for the Top-10
//! subset and for all workloads.
//!
//! The paper's counterintuitive finding: bigger is not monotonically
//! better — the all-workload benefit peaks at a moderate size (64–128 kB in
//! the paper's accounting) and then drops, because a larger action space
//! slows training.

use semloc_bench::banner;
use semloc_harness::{storage_sweep, SimConfig};
use semloc_workloads::all_kernels;

fn main() {
    banner(
        "Fig 13",
        "Impact of CST size on overall speedup (Top10 and All geomeans)",
        "benefit peaks at a moderate size and does not grow monotonically",
    );
    let cfg = SimConfig::default();
    let kernels = all_kernels();
    let sizes = [256usize, 512, 1024, 2048, 4096, 8192];
    let points = storage_sweep(&kernels, &sizes, &cfg, |s| {
        eprintln!("[sweep] finished CST size {s}")
    });
    println!(
        "\n{:>10} {:>10} {:>8} {:>8}",
        "CST", "storage", "Top10", "All"
    );
    for p in &points {
        println!(
            "{:>10} {:>9.1}k {:>7.2}x {:>7.2}x",
            p.cst_entries,
            p.storage_bytes as f64 / 1024.0,
            p.top10,
            p.all
        );
    }
    let best_all = points
        .iter()
        .max_by(|a, b| a.all.partial_cmp(&b.all).unwrap())
        .unwrap();
    println!(
        "\nall-workload benefit peaks at CST {} entries (~{:.0} kB), not at the maximum size",
        best_all.cst_entries,
        best_all.storage_bytes as f64 / 1024.0
    );
}
