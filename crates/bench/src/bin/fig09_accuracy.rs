//! Fig 9 — accuracy and timeliness: every demand access classified as
//! {hit prefetched line, shorter wait, non-timely, miss not prefetched,
//! hit older demand}, plus wrong prefetches (counted on top of 100%).

use semloc_bench::{banner, full_lineup, run_matrix};
use semloc_harness::SimConfig;
use semloc_mem::AccessClass;
use semloc_workloads::all_kernels;

fn main() {
    banner(
        "Fig 9",
        "Accuracy and timeliness of the evaluated prefetchers (fractions of demand accesses)",
        "context shows the largest 'hit prefetched'+'shorter wait' share on irregular and u-benchmarks",
    );
    let cfg = SimConfig::default();
    let kernels = all_kernels();
    let lineup = full_lineup();
    let m = run_matrix(&kernels, &lineup, &cfg);

    println!(
        "\n{:<14} {:<10} {:>8} {:>8} {:>9} {:>8} {:>8} {:>7}",
        "workload", "prefetcher", "hit-pf", "shorter", "nontimely", "miss", "hit-old", "wrong"
    );
    for k in m.kernels() {
        for p in m.prefetchers().iter().skip(1) {
            let r = m.get(k, p).expect("run present");
            let c = &r.mem.classes;
            println!(
                "{:<14} {:<10} {:>7.1}% {:>7.1}% {:>8.1}% {:>7.1}% {:>7.1}% {:>6.1}%",
                k,
                p,
                c.fraction(AccessClass::HitPrefetchedLine) * 100.0,
                c.fraction(AccessClass::ShorterWait) * 100.0,
                c.fraction(AccessClass::NonTimely) * 100.0,
                c.fraction(AccessClass::MissNotPrefetched) * 100.0,
                c.fraction(AccessClass::HitOlderDemand) * 100.0,
                c.wrong_fraction() * 100.0,
            );
        }
        println!();
    }

    // Aggregate benefit share per prefetcher (the visual takeaway).
    println!("average useful share (hit prefetched + shorter wait) across all workloads:");
    for p in m.prefetchers().iter().skip(1) {
        let mut sum = 0.0;
        let mut n = 0;
        for k in m.kernels() {
            if let Some(r) = m.get(k, p) {
                let c = &r.mem.classes;
                sum += c.fraction(AccessClass::HitPrefetchedLine)
                    + c.fraction(AccessClass::ShorterWait);
                n += 1;
            }
        }
        println!("  {:<10} {:>5.1}%", p, sum / n as f64 * 100.0);
    }
}
