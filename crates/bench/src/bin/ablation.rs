//! Ablation study (DESIGN.md §6): each design decision of the context
//! prefetcher disabled or replaced in isolation, measured on the workloads
//! that benefit most from the prefetcher.

use semloc_bench::{banner, geomean};
use semloc_harness::{ablation_variants, run_kernel, PrefetcherKind, SimConfig, Table};
use semloc_workloads::kernel_by_name;

fn main() {
    banner(
        "Ablation",
        "Design-decision ablations of the context prefetcher",
        "bell reward, dynamic feature selection, shadow prefetches, sampling, replacement (DESIGN.md #6)",
    );
    let cfg = SimConfig::default();
    let names = [
        "list", "mcf", "omnetpp", "hmmer", "h264ref", "ssca_lds", "astar", "milc", "bst",
        "hashtest", "KNN", "bzip2",
    ];
    let kernels: Vec<_> = names
        .iter()
        .map(|n| kernel_by_name(n).expect("kernel"))
        .collect();
    let baselines: Vec<_> = kernels
        .iter()
        .map(|k| run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg))
        .collect();

    let mut t = Table::new([
        "variant",
        "geomean speedup",
        "delta vs baseline",
        "description",
    ]);
    let mut base_geo = 0.0;
    // Paper-default first, then each ablation, then the per-workload
    // calibration extension.
    for v in ablation_variants() {
        let speedups: Vec<f64> = kernels
            .iter()
            .zip(&baselines)
            .filter_map(|(k, b)| {
                run_kernel(k.as_ref(), &PrefetcherKind::Context(v.config.clone()), &cfg)
                    .speedup_over(b)
                    .ok()
            })
            .collect();
        let geo = geomean(speedups);
        eprintln!("[done] {}: {geo:.3}", v.name);
        if v.name == "baseline" {
            base_geo = geo;
        }
        let delta = if base_geo > 0.0 {
            format!("{:+.1}%", (geo / base_geo - 1.0) * 100.0)
        } else {
            "-".into()
        };
        t.row([
            v.name.to_string(),
            format!("{geo:.2}x"),
            delta,
            v.description.to_string(),
        ]);
    }
    // Extension: per-workload reward calibration (§4.3 formula).
    let speedups: Vec<f64> = kernels
        .iter()
        .zip(&baselines)
        .filter_map(|(k, b)| {
            run_kernel(k.as_ref(), &PrefetcherKind::context_calibrated(), &cfg)
                .speedup_over(b)
                .ok()
        })
        .collect();
    let geo = geomean(speedups);
    let delta = format!("{:+.1}%", (geo / base_geo - 1.0) * 100.0);
    t.row([
        "calibrated".to_string(),
        format!("{geo:.2}x"),
        delta,
        "EXTENSION: reward window derived per workload from the #4.3 distance formula".to_string(),
    ]);
    println!("{}", t.render());
}
