//! Kill/resume smoke test for the on-disk `SEMLOC-CKPT` path, driven as
//! two separate processes so the resume genuinely starts cold:
//!
//! ```text
//! ckpt_smoke interrupted <dir>   # run every golden cell partway, persist
//!                                # mid-run checkpoints, then exit (the
//!                                # "kill")
//! ckpt_smoke resume <dir>        # a fresh process resumes each cell from
//!                                # disk and must reproduce the pinned
//!                                # golden digest bit for bit
//! ```
//!
//! The resume phase also re-runs the matrix a second time: every cell now
//! has a *final* checkpoint on disk, so the rerun must short-circuit
//! simulation entirely and still fold to the same pinned digest.

use std::sync::Arc;

use semloc_harness::{run_resumable, CkptPayload, CkptStore, Engine, PrefetcherKind, SimConfig};
use semloc_workloads::{capture_kernel, kernel_by_name, ReplayKernel};

/// Same pinned fingerprint as `golden_digest.rs` / `checkpoint_golden.rs`.
const GOLDEN: u64 = 0xe1cb_22f1_96f5_5582;

const KERNELS: [&str; 3] = ["array", "list", "mcf"];

/// Fraction of the budget each cell runs before the simulated kill.
const INTERRUPT_AT: u64 = 50_000;

fn lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::context(),
    ]
}

fn replay_of(name: &str, budget: u64) -> ReplayKernel {
    let k = kernel_by_name(name).expect("registered kernel");
    ReplayKernel::new(Arc::new(capture_kernel(k.as_ref(), budget)))
}

/// FNV-1a fold of per-cell digests, mirroring `Matrix::stats_digest`.
fn fold(digests: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for d in digests {
        for b in d.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

fn interrupted(store: &CkptStore, cfg: &SimConfig) {
    let mut saved = 0;
    for kernel in KERNELS {
        let replay = replay_of(kernel, cfg.instr_budget);
        for kind in lineup() {
            let mut e = Engine::new(replay.clone(), &kind, cfg);
            e.run_to(INTERRUPT_AT);
            assert_eq!(e.cursor(), INTERRUPT_AT);
            let fp = e.fingerprint();
            store.save(kernel, fp, &CkptPayload::Mid(e.checkpoint().to_bytes()));
            assert!(
                matches!(store.load(kernel, fp), Some(CkptPayload::Mid(_))),
                "{kernel}/{}: mid-run checkpoint must persist",
                kind.label()
            );
            saved += 1;
            // Dropping the engine here is the "kill": nothing past
            // INTERRUPT_AT was simulated in this process.
        }
    }
    println!("interrupted: persisted {saved} mid-run checkpoints");
}

fn resume(store: &CkptStore, cfg: &SimConfig) {
    let mut digests = Vec::new();
    for kernel in KERNELS {
        let replay = replay_of(kernel, cfg.instr_budget);
        for kind in lineup() {
            let r = run_resumable(store, replay.clone(), &kind, cfg);
            digests.push(r.stats_digest());
        }
    }
    let cells = digests.len() as u64;
    let (_, loads, rejects) = store.stats();
    assert!(
        loads >= cells,
        "every cell must have resumed from disk (loaded {loads}/{cells})"
    );
    assert_eq!(rejects, 0, "no checkpoint may be rejected in the smoke run");
    assert_eq!(
        fold(&digests),
        GOLDEN,
        "resumed matrix diverged from the pinned golden digest"
    );
    println!(
        "resume: {cells} cells resumed, digest {:#018x} == golden",
        GOLDEN
    );

    // Second pass: every cell finished above, so a final checkpoint now
    // short-circuits simulation — and must still fold to the same digest.
    let loads_before = loads;
    let mut shortcut = Vec::new();
    for kernel in KERNELS {
        let replay = replay_of(kernel, cfg.instr_budget);
        for kind in lineup() {
            shortcut.push(run_resumable(store, replay.clone(), &kind, cfg).stats_digest());
        }
    }
    let (_, loads_after, rejects_after) = store.stats();
    assert!(
        loads_after >= loads_before + cells,
        "rerun must load final checkpoints instead of simulating"
    );
    assert_eq!(rejects_after, 0);
    assert_eq!(
        fold(&shortcut),
        GOLDEN,
        "final-checkpoint short-circuit diverged from the pinned golden digest"
    );
    println!("resume: short-circuit rerun matches the golden digest");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let phase = args.next().unwrap_or_default();
    let dir = args
        .next()
        .unwrap_or_else(|| "/tmp/semloc-ckpt-smoke".into());
    let store = CkptStore::with_dir(&dir);
    let cfg = SimConfig::quick();
    match phase.as_str() {
        "interrupted" => interrupted(&store, &cfg),
        "resume" => resume(&store, &cfg),
        other => {
            eprintln!("usage: ckpt_smoke <interrupted|resume> [dir] (got {other:?})");
            std::process::exit(2);
        }
    }
}
