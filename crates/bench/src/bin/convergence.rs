//! Learning-convergence curves (§7.1's "accuracy and convergence").
//!
//! Replays each workload at growing instruction budgets (deterministic
//! workloads make prefix re-runs exact) and differentiates consecutive
//! runs, yielding interval IPC and interval prediction accuracy — i.e. how
//! fast the reinforcement-learning loop converges from a cold start.

use semloc_bench::banner;
use semloc_harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc_workloads::kernel_by_name;

fn main() {
    banner(
        "Convergence",
        "Interval IPC and prediction accuracy over training time (context prefetcher)",
        "the learning process converges within the first phases; exploration anneals with accuracy",
    );
    let budgets: Vec<u64> = (1..=8).map(|i| i * 50_000).collect();
    for name in ["list", "mcf", "hmmer", "bst"] {
        let kernel = kernel_by_name(name).expect("kernel");
        println!("\n-- {name} --");
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>12}",
            "instrs", "IPC(int)", "acc(cum)", "hits(cum)", "expired(cum)"
        );
        let mut prev_instr = 0u64;
        let mut prev_cycles = 0u64;
        for &b in &budgets {
            let cfg = SimConfig::default().with_budget(b);
            let r = run_kernel(kernel.as_ref(), &PrefetcherKind::context(), &cfg);
            let d_i = r.cpu.instructions - prev_instr;
            let d_c = r.cpu.cycles.saturating_sub(prev_cycles).max(1);
            let learn = r.learn.expect("learning stats");
            println!(
                "{:>10} {:>10.3} {:>11.1}% {:>12} {:>12}",
                r.cpu.instructions,
                d_i as f64 / d_c as f64,
                learn.prediction_accuracy() * 100.0,
                learn.hits,
                learn.expired
            );
            prev_instr = r.cpu.instructions;
            prev_cycles = r.cpu.cycles;
        }
    }
    println!("\n(interval IPC rises as the CST converges; cumulative accuracy stabilizes)");
}
