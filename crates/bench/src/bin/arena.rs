//! `semloc-arena` — rank pipeline compositions (written to
//! `BENCH_arena.json`): the default tournament grid (feature sets × reward
//! shapes × CST geometry, 14 cells) over the shared trace captures, ranked
//! by geomean speedup over the no-prefetch baseline.
//!
//! Run with `cargo run --release -p semloc-bench --bin semloc-arena
//! [out.json]`. Knobs:
//!
//! * `SEMLOC_ARENA_BUDGET`  — instructions per run (default 120000);
//! * `SEMLOC_ARENA_WARM`    — warm-prefix length before the fork
//!   (default budget/6);
//! * `SEMLOC_ARENA_KERNELS` — comma-separated workloads
//!   (default `array,list,mcf`);
//! * `SEMLOC_ARENA_THREADS` — shard-pool width (default: host parallelism);
//! * `SEMLOC_ARENA_VERIFY`  — `off`/`first`/`all` warm-vs-cold digest
//!   verification subset (default `first`).

use semloc_harness::{arena_run, default_cells, ArenaOpts, TraceStore, VerifyMode};
use semloc_workloads::{kernel_by_name, KernelBox};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&b| b > 0)
        .unwrap_or(default)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_arena.json".into());
    let budget = env_u64("SEMLOC_ARENA_BUDGET", 120_000);
    let opts = ArenaOpts {
        budget,
        warm: env_u64("SEMLOC_ARENA_WARM", budget / 6),
        threads: std::env::var("SEMLOC_ARENA_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(semloc_harness::pool_threads),
        verify: match std::env::var("SEMLOC_ARENA_VERIFY") {
            Ok(v) => VerifyMode::parse(&v)
                .unwrap_or_else(|| panic!("SEMLOC_ARENA_VERIFY must be off|first|all, got {v:?}")),
            Err(_) => VerifyMode::default(),
        },
    };
    let names = std::env::var("SEMLOC_ARENA_KERNELS").unwrap_or_else(|_| "array,list,mcf".into());
    let kernels: Vec<KernelBox> = names
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(|n| kernel_by_name(n).unwrap_or_else(|| panic!("unknown kernel {n:?}")))
        .collect();
    assert!(!kernels.is_empty(), "SEMLOC_ARENA_KERNELS selected nothing");

    let cells = default_cells();
    println!(
        "semloc-arena: {} cells x {} kernels, budget {}, warm {}, verify {:?}",
        cells.len(),
        kernels.len(),
        opts.budget,
        opts.warm,
        opts.verify
    );
    let report = arena_run(TraceStore::global(), &kernels, &cells, &opts);
    println!("{}", report.render());
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write arena json");
    println!(
        "wrote {out_path} ({} verified warm-vs-cold runs)",
        report.verified
    );
}
