//! Fig 1 — memory accesses of a linked-list insertion sort (100 random
//! elements), mapped by real memory address (top of the paper's figure) and
//! by logical list index (bottom).
//!
//! The paper's point: the physical-address view is disordered (no spatial
//! locality for a prefetcher to exploit), while the logical-index view is a
//! perfectly recurring linear ramp — *semantic* locality.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use semloc_bench::banner;
use semloc_trace::{AddressSpace, Placement};

/// One recorded access: (access number, node address, logical index).
struct Access {
    t: usize,
    addr: u64,
    logical: usize,
}

fn simulate(elements: usize, seed: u64) -> Vec<Access> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut heap = AddressSpace::new(seed, Placement::Scatter);
    // Sorted list as (addr, value) pairs in list order.
    let mut list: Vec<(u64, u64)> = Vec::new();
    let mut log = Vec::new();
    let mut t = 0usize;
    for _ in 0..elements {
        let value: u64 = rng.random_range(0..1_000_000);
        let node = heap.alloc(32);
        let mut pos = 0;
        while pos < list.len() && list[pos].1 < value {
            log.push(Access {
                t,
                addr: list[pos].0,
                logical: pos,
            });
            t += 1;
            pos += 1;
        }
        list.insert(pos, (node, value));
        log.push(Access {
            t,
            addr: node,
            logical: pos,
        });
        t += 1;
    }
    log
}

/// Render a coarse ASCII scatter plot: `rows` bins of the y-value over the
/// full time axis.
fn scatter(
    accesses: &[Access],
    y: impl Fn(&Access) -> f64,
    y_max: f64,
    rows: usize,
    cols: usize,
) -> String {
    let mut grid = vec![vec![' '; cols]; rows];
    let t_max = accesses.last().map(|a| a.t + 1).unwrap_or(1) as f64;
    for a in accesses {
        let c = ((a.t as f64 / t_max) * cols as f64) as usize;
        let r = ((y(a) / y_max) * (rows - 1) as f64) as usize;
        let r = rows - 1 - r.min(rows - 1);
        grid[r][c.min(cols - 1)] = '*';
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() {
    banner(
        "Fig 1",
        "Memory accesses for list insertion sort (100 random elements)",
        "top: real addresses look random; bottom: logical indices form recurring linear ramps",
    );
    let accesses = simulate(100, 42);
    let min_addr = accesses.iter().map(|a| a.addr).min().unwrap();
    let max_addr = accesses.iter().map(|a| a.addr).max().unwrap();
    let span = (max_addr - min_addr) as f64;

    println!("\n-- accesses by real memory address (offset from heap base, bytes) --");
    println!(
        "{}",
        scatter(&accesses, |a| (a.addr - min_addr) as f64, span, 16, 100)
    );
    println!("\n-- accesses by logical list index --");
    println!(
        "{}",
        scatter(&accesses, |a| a.logical as f64, 100.0, 16, 100)
    );

    // Quantify the contrast the figure makes visually.
    let addr_steps: Vec<i64> = accesses
        .windows(2)
        .map(|w| w[1].addr as i64 - w[0].addr as i64)
        .collect();
    let logical_steps: Vec<i64> = accesses
        .windows(2)
        .map(|w| w[1].logical as i64 - w[0].logical as i64)
        .collect();
    let seq = |steps: &[i64]| {
        steps
            .iter()
            .filter(|&&d| d == 1 || (1..=32).contains(&d))
            .count() as f64
            / steps.len() as f64
    };
    let addr_lin = addr_steps
        .iter()
        .filter(|&&d| (0..=64).contains(&d))
        .count() as f64
        / addr_steps.len() as f64;
    let log_lin =
        logical_steps.iter().filter(|&&d| d == 1).count() as f64 / logical_steps.len() as f64;
    println!("\nconsecutive-step linearity:");
    println!(
        "  physical addresses: {:5.1}% of steps are small forward strides",
        addr_lin * 100.0
    );
    println!(
        "  logical indices:    {:5.1}% of steps are exactly +1",
        log_lin * 100.0
    );
    println!("  (paper: the logical traversal is always semantically linear)");
    let _ = seq;
}
