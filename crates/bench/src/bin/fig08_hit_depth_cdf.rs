//! Fig 8 — cumulative distribution of prediction hit depths for the
//! µbenchmarks (top of the paper's figure) and a subset of the regular
//! benchmarks (bottom), with the reward window overlaid.
//!
//! §7.1 reads off this figure: a visible step begins at depth 18 (the
//! window's lower edge); up to ~25% of prefetches are issued too late
//! (depth < 18); early prefetches (depth > 50) split the µbenchmarks into
//! groups, with the input-dependent lookups (maptest, hashtest, bst) the
//! hardest.

use semloc_bench::banner;
use semloc_harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc_workloads::kernel_by_name;

const DEPTH_POINTS: [u32; 12] = [4, 8, 12, 17, 18, 24, 30, 38, 44, 50, 64, 96];

fn main() {
    banner(
        "Fig 8",
        "Cumulative distribution of prediction hit depths (context prefetcher, real + shadow)",
        "step starting at depth 18; <=25-35% late; early fraction splits workloads into groups",
    );
    let cfg = SimConfig::default();
    let micro = [
        "array", "list", "listsort", "bst", "prim", "hashtest", "maptest", "ssca_lds",
    ];
    let regular = ["mcf", "omnetpp", "hmmer", "lbm", "graph500", "suffixArray"];

    for (title, set) in [
        ("ubenchmarks", &micro[..]),
        ("regular benchmarks", &regular[..]),
    ] {
        println!("\n-- {title} --");
        print!("{:<14}", "workload");
        for d in DEPTH_POINTS {
            print!(" {d:>5}");
        }
        println!("   late<18  window  early>50");
        for name in set {
            let k = kernel_by_name(name).expect("kernel exists");
            let r = run_kernel(k.as_ref(), &PrefetcherKind::context(), &cfg);
            let learn = r.learn.expect("context stats");
            print!("{name:<14}");
            for d in DEPTH_POINTS {
                print!(" {:>5.2}", learn.depth_cdf.cdf_at(d));
            }
            println!(
                "   {:>6.1}%  {:>5.1}%  {:>7.1}%",
                learn.depth_cdf.cdf_at(17) * 100.0,
                learn.depth_cdf.fraction_in_window(18, 50) * 100.0,
                (1.0 - learn.depth_cdf.cdf_at(50)) * 100.0,
            );
            eprintln!("[done] {name}");
        }
    }
    println!("\n(reward window 18..=50 accesses; CDF values are P[hit depth <= d])");
}
