//! Fig 11 — L2 misses per kilo-instruction for the memory-intensive
//! workloads (baseline L2 MPKI > 1) plus the average over all workloads.
//!
//! The paper's headline: the context prefetcher cuts average L2 MPKI by
//! almost 4x vs no prefetching and 2x vs SMS, the best competitor.

use semloc_bench::{banner, full_lineup, run_matrix};
use semloc_harness::{SimConfig, Table};
use semloc_workloads::all_kernels;

fn main() {
    banner(
        "Fig 11",
        "L2 MPKI per prefetcher (workloads with baseline L2 MPKI > 1, plus all-workload average)",
        "average L2 MPKI ~4x lower than no-prefetch, ~2x lower than the best competitor",
    );
    let cfg = SimConfig::default();
    let kernels = all_kernels();
    let lineup = full_lineup();
    let m = run_matrix(&kernels, &lineup, &cfg);

    let heavy = m.memory_intensive(1.0, true);
    let mut t = Table::new(
        ["workload".to_string()]
            .into_iter()
            .chain(m.prefetchers().iter().map(|p| p.to_string())),
    );
    for k in &heavy {
        let mut row = vec![k.to_string()];
        for p in m.prefetchers() {
            row.push(format!(
                "{:.2}",
                m.get(k, p).map(|r| r.l2_mpki()).unwrap_or(0.0)
            ));
        }
        t.row(row);
    }
    let mut averages = Vec::new();
    let mut avg_row = vec!["AVERAGE(all)".to_string()];
    for p in m.prefetchers() {
        let s: f64 = m
            .kernels()
            .iter()
            .filter_map(|k| m.get(k, p))
            .map(|r| r.l2_mpki())
            .sum();
        let avg = s / m.kernels().len() as f64;
        averages.push((*p, avg));
        avg_row.push(format!("{avg:.2}"));
    }
    t.row(avg_row);
    println!("{}", t.render());

    let base = averages
        .iter()
        .find(|(p, _)| *p == "none")
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    let ctx = averages
        .iter()
        .find(|(p, _)| *p == "context")
        .map(|&(_, v)| v)
        .unwrap_or(0.0);
    let best_other = averages
        .iter()
        .filter(|(p, _)| *p != "none" && *p != "context")
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    if ctx > 0.0 {
        println!(
            "\naverage L2 MPKI: none {base:.2} -> context {ctx:.2} ({:.1}x reduction; paper ~4x). best competitor {best_other:.2} ({:.1}x over context; paper ~2x)",
            base / ctx,
            best_other / ctx
        );
    }
}
