//! Run the complete evaluation — every table and figure — in one sitting,
//! sharing the main run matrix across Figs 9/10/11/12.
//!
//! This is the binary behind `EXPERIMENTS.md`; expect ~10–20 minutes at the
//! default budget (`SEMLOC_BUDGET` scales it).

use semloc_bench::{banner, full_lineup, geomean, run_matrix};
use semloc_harness::{
    ablation_variants, run_kernel, storage_sweep, PrefetcherKind, SimConfig, Table,
};
use semloc_mem::AccessClass;
use semloc_workloads::{all_kernels, kernel_by_name, Suite};

fn main() {
    let cfg = SimConfig::default();
    println!(
        "semloc full evaluation (budget {} instructions per run)\n",
        cfg.instr_budget
    );

    // ---- shared main matrix ----
    let kernels = all_kernels();
    let suites: Vec<Suite> = kernels.iter().map(|k| k.suite()).collect();
    let m = run_matrix(&kernels, &full_lineup(), &cfg);

    // ---- Fig 12 ----
    banner(
        "Fig 12",
        "Speedups over no prefetching",
        "32% avg all / 20% avg SPEC / 4.3x max / +76% vs best",
    );
    let mut t = Table::new(
        ["workload".to_string(), "suite".to_string()]
            .into_iter()
            .chain(m.prefetchers().iter().skip(1).map(|p| p.to_string())),
    );
    for (k, suite) in m.kernels().to_vec().iter().zip(&suites) {
        let mut row = vec![k.to_string(), suite.label().to_string()];
        for p in m.prefetchers().iter().skip(1) {
            row.push(match m.speedup(k, p) {
                Ok(s) => format!("{s:.2}x"),
                Err(_) => "n/a".to_string(),
            });
        }
        t.row(row);
    }
    println!("{}", t.render());
    let spec: Vec<&str> = m
        .kernels()
        .iter()
        .zip(&suites)
        .filter(|&(_, s)| *s == Suite::Spec)
        .map(|(&k, _)| k)
        .collect();
    let all: Vec<&str> = m.kernels().to_vec();
    println!("\ngeomean speedups:");
    for p in m.prefetchers().iter().skip(1) {
        let max = all
            .iter()
            .filter_map(|k| m.speedup(k, p).ok())
            .fold(0.0f64, f64::max);
        println!(
            "  {:<10} all {:.2}x  spec {:.2}x  max {:.2}x",
            p,
            m.geomean_speedup(p, &all).unwrap_or(f64::NAN),
            m.geomean_speedup(p, &spec).unwrap_or(f64::NAN),
            max
        );
    }

    // ---- Fig 10 / Fig 11 ----
    for (id, l2, thresh) in [("Fig 10", false, 5.0), ("Fig 11", true, 1.0)] {
        banner(
            id,
            if l2 { "L2 MPKI" } else { "L1 MPKI" },
            "context lowest; avg L2 MPKI ~4x below baseline",
        );
        let heavy = m.memory_intensive(thresh, l2);
        let mut t = Table::new(
            ["workload".to_string()]
                .into_iter()
                .chain(m.prefetchers().iter().map(|p| p.to_string())),
        );
        for k in &heavy {
            let mut row = vec![k.to_string()];
            for p in m.prefetchers() {
                let v = m
                    .get(k, p)
                    .map(|r| if l2 { r.l2_mpki() } else { r.l1_mpki() })
                    .unwrap_or(0.0);
                row.push(format!("{v:.2}"));
            }
            t.row(row);
        }
        let mut avg = vec!["AVERAGE(all)".to_string()];
        for p in m.prefetchers() {
            let s: f64 = m
                .kernels()
                .iter()
                .filter_map(|k| m.get(k, p))
                .map(|r| if l2 { r.l2_mpki() } else { r.l1_mpki() })
                .sum();
            avg.push(format!("{:.2}", s / m.kernels().len() as f64));
        }
        t.row(avg);
        println!("{}", t.render());
    }

    // ---- Fig 9 (aggregate view) ----
    banner(
        "Fig 9",
        "Access classification (all-workload averages)",
        "context has the largest useful share",
    );
    let mut t = Table::new([
        "prefetcher",
        "hit-pf",
        "shorter",
        "nontimely",
        "miss",
        "hit-old",
        "wrong",
    ]);
    for p in m.prefetchers().iter().skip(1) {
        let mut acc = [0.0f64; 6];
        let mut n = 0;
        for k in m.kernels() {
            if let Some(r) = m.get(k, p) {
                let c = &r.mem.classes;
                acc[0] += c.fraction(AccessClass::HitPrefetchedLine);
                acc[1] += c.fraction(AccessClass::ShorterWait);
                acc[2] += c.fraction(AccessClass::NonTimely);
                acc[3] += c.fraction(AccessClass::MissNotPrefetched);
                acc[4] += c.fraction(AccessClass::HitOlderDemand);
                acc[5] += c.wrong_fraction();
                n += 1;
            }
        }
        let mut row = vec![p.to_string()];
        row.extend(acc.iter().map(|v| format!("{:.1}%", v / n as f64 * 100.0)));
        t.row(row);
    }
    println!("{}", t.render());

    // ---- Fig 8 ----
    banner(
        "Fig 8",
        "Hit-depth CDF checkpoints (context)",
        "step at 18; late<=35%; early splits groups",
    );
    println!(
        "{:<14} {:>8} {:>8} {:>8}",
        "workload", "late<18", "window", "early>50"
    );
    for name in [
        "array", "list", "listsort", "bst", "prim", "hashtest", "maptest", "ssca_lds", "mcf",
        "hmmer",
    ] {
        let k = kernel_by_name(name).expect("kernel");
        let r = run_kernel(k.as_ref(), &PrefetcherKind::context(), &cfg);
        let l = r.learn.expect("learn stats");
        println!(
            "{name:<14} {:>7.1}% {:>7.1}% {:>7.1}%",
            l.depth_cdf.cdf_at(17) * 100.0,
            l.depth_cdf.fraction_in_window(18, 50) * 100.0,
            (1.0 - l.depth_cdf.cdf_at(50)) * 100.0
        );
    }

    // ---- Fig 13 ----
    banner("Fig 13", "CST storage sweep", "peaks at a moderate size");
    let pts = storage_sweep(&kernels, &[256, 512, 1024, 2048, 4096, 8192], &cfg, |s| {
        eprintln!("[sweep] {s}")
    });
    println!("{:>8} {:>9} {:>8} {:>8}", "CST", "storage", "Top10", "All");
    for p in &pts {
        println!(
            "{:>8} {:>8.1}k {:>7.2}x {:>7.2}x",
            p.cst_entries,
            p.storage_bytes as f64 / 1024.0,
            p.top10,
            p.all
        );
    }

    // ---- Fig 14 ----
    banner(
        "Fig 14",
        "Layout-agnostic programming (CPI)",
        "context closes the naive-vs-optimized gap",
    );
    let mut lineup = vec![PrefetcherKind::None];
    lineup.extend(full_lineup());
    for (fig, csr, linked) in [
        ("SSCA2", "ssca2", "ssca2-list"),
        ("Graph500", "graph500", "graph500-list"),
    ] {
        println!("\n{fig}:");
        println!("{:<11} {:>9} {:>11}", "prefetcher", "CSR cpi", "linked cpi");
        for pf in &lineup {
            let rc = run_kernel(kernel_by_name(csr).unwrap().as_ref(), pf, &cfg);
            let rl = run_kernel(kernel_by_name(linked).unwrap().as_ref(), pf, &cfg);
            println!(
                "{:<11} {:>9.2} {:>11.2}",
                pf.label(),
                rc.cpu.cpi(),
                rl.cpu.cpi()
            );
        }
    }

    // ---- Ablations ----
    banner(
        "Ablation",
        "Design-decision ablations (geomean over prefetcher-friendly subset)",
        "DESIGN.md #6",
    );
    let names = [
        "list", "mcf", "omnetpp", "hmmer", "h264ref", "ssca_lds", "astar", "milc", "bst",
        "hashtest", "KNN", "bzip2",
    ];
    let ks: Vec<_> = names
        .iter()
        .map(|n| kernel_by_name(n).expect("kernel"))
        .collect();
    let bases: Vec<_> = ks
        .iter()
        .map(|k| run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg))
        .collect();
    for v in ablation_variants() {
        let geo = geomean(ks.iter().zip(&bases).filter_map(|(k, b)| {
            run_kernel(k.as_ref(), &PrefetcherKind::Context(v.config.clone()), &cfg)
                .speedup_over(b)
                .ok()
        }));
        println!("  {:<16} {:.2}x  ({})", v.name, geo, v.description);
    }
    let geo = geomean(ks.iter().zip(&bases).filter_map(|(k, b)| {
        run_kernel(k.as_ref(), &PrefetcherKind::context_calibrated(), &cfg)
            .speedup_over(b)
            .ok()
    }));
    println!(
        "  {:<16} {geo:.2}x  (EXTENSION: per-workload #4.3 reward calibration)",
        "calibrated"
    );

    println!("\nall experiments complete.");
}
