//! Fig 5 — the bell-shaped reward function over prediction hit depth.

use semloc_bandit::{BellReward, RewardFunction, StepReward};
use semloc_bench::banner;

fn main() {
    banner(
        "Fig 5",
        "Reward function for the context-based prefetcher",
        "bell over the 18-50-access window, negative edges outside, graceful degradation inside",
    );
    let bell = BellReward::paper_default();
    let step = StepReward::paper_default();
    let (lo, hi) = bell.window();
    println!(
        "positive window: {lo}..={hi} accesses; expiry penalty: {}\n",
        bell.expiry()
    );
    println!("{:>6}  {:>6}  {:>6}  plot (bell)", "depth", "bell", "step");
    for depth in (0..=96).step_by(2) {
        let r = bell.reward(depth);
        let s = step.reward(depth);
        let bar_len = (r + 8).max(0) as usize;
        let marker = if depth >= lo && depth <= hi { '#' } else { '-' };
        println!(
            "{depth:>6}  {r:>6}  {s:>6}  {}",
            marker.to_string().repeat(bar_len.min(30))
        );
    }
}
