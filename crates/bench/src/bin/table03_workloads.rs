//! Table 3 — the workloads and benchmark suites used.

use semloc_bench::banner;
use semloc_harness::Table;
use semloc_workloads::registry::table3;

fn main() {
    banner(
        "Table 3",
        "Workloads and benchmarks used",
        "SPEC2006 (16), PBBS (3), Graph500, HPCS SSCA2, ukernels",
    );
    let mut by_suite: std::collections::BTreeMap<&str, Vec<&str>> = Default::default();
    for info in table3() {
        by_suite
            .entry(info.suite.label())
            .or_default()
            .push(info.name);
    }
    let mut t = Table::new(["suite", "workloads"]);
    for (suite, names) in by_suite {
        t.row([suite.to_string(), names.join(", ")]);
    }
    println!("{}", t.render());
}
