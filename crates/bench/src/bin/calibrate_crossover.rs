//! Per-kernel scalar→SIMD crossover calibration (written to
//! `BENCH_crossover.json`).
//!
//! The auto-dispatched wrappers in `semloc_accel` route short inputs to the
//! inlinable scalar kernels because an outlined `#[target_feature]` call
//! plus vector setup costs more than a branchy loop over a handful of
//! elements. Where exactly that trade flips differs per kernel — a masked
//! 64-lane byte scan amortizes its setup far sooner than a gather — so the
//! dispatch constants live in [`semloc_accel::crossover`], one per kernel,
//! and this binary is the instrument that produced them: for every kernel
//! it sweeps input lengths, times the scalar loop against the best
//! supported tier at each length, and reports the smallest length from
//! which the SIMD tier never loses again (the *stable* crossover, not the
//! first lucky win).
//!
//! Inputs are needle-absent full scans — the shape the wrappers are tuned
//! for, matching `bench_accel`'s rows. Run with
//! `cargo run --release -p semloc-bench --bin calibrate_crossover
//! [crossover.json]` and compare the printed table against the committed
//! constants when bringing up a new host class.

// Wall-clock timing is this binary's purpose (semloc-lint rule D2 exempts the bench crate).
#![allow(clippy::disallowed_methods)]

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use semloc_accel::{best_supported, crossover, scalar, Tier};

/// xorshift64 — deterministic input streams.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// Best-of-`reps` ns per call over `iters` calls.
fn time_call(reps: usize, iters: usize, mut f: impl FnMut() -> u64) -> f64 {
    black_box(f()); // warm-up
    (0..reps)
        .map(|_| {
            let t = Instant::now();
            let mut acc = 0u64;
            for _ in 0..iters {
                acc = acc.wrapping_add(f());
            }
            black_box(acc);
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// The lane counts swept: production shapes (4–8 way probes, 48–64 lane
/// tables) plus the sweep-widened tail.
const LENGTHS: &[usize] = &[4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128];

/// One kernel's sweep: `(length, scalar_ns, simd_ns)` rows plus the stable
/// crossover — the smallest swept length from which SIMD never loses.
struct Sweep {
    name: &'static str,
    committed: usize,
    rows: Vec<(usize, f64, f64)>,
}

impl Sweep {
    fn stable_crossover(&self) -> Option<usize> {
        // Walk from the largest length down; the crossover is the smallest
        // length where this and every longer measurement favors SIMD.
        let mut cross = None;
        for &(n, scalar_ns, simd_ns) in self.rows.iter().rev() {
            if simd_ns <= scalar_ns {
                cross = Some(n);
            } else {
                break;
            }
        }
        cross
    }
}

fn sweep(
    name: &'static str,
    committed: usize,
    mut run: impl FnMut(Option<Tier>, usize) -> u64,
) -> Sweep {
    const ITERS: usize = 30_000;
    let best = best_supported();
    let rows = LENGTHS
        .iter()
        .map(|&n| {
            let scalar_ns = time_call(9, ITERS, || run(None, n));
            let simd_ns = time_call(9, ITERS, || run(Some(best), n));
            (n, scalar_ns, simd_ns)
        })
        .collect();
    Sweep {
        name,
        committed,
        rows,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_crossover.json".into());
    let best = best_supported();
    let mut rng = Rng(0xc0_55_0e_12);

    let max_n = *LENGTHS.last().expect("length table is non-empty");
    let i16s: Vec<i16> = (0..max_n).map(|_| (rng.next() % 1000) as i16).collect();
    let u64s: Vec<u64> = (0..max_n).map(|_| rng.next() | 1).collect();
    let i8s: Vec<i8> = (0..max_n).map(|_| (rng.next() % 200) as i8).collect();
    let u32s: Vec<u32> = (0..max_n).map(|_| rng.next() as u32).collect();
    let i64s: Vec<i64> = (0..max_n).map(|_| (rng.next() % 13) as i64).collect();
    let tags = u64s.clone();
    let valid: Vec<bool> = (0..max_n).map(|i| i % 7 != 0).collect();
    let lru: Vec<u64> = (0..max_n).map(|_| rng.next() >> 8).collect();
    let table: Vec<i32> = (0..160).map(|i| i * 3 - 40).collect();
    let idxs: Vec<u32> = (0..max_n).map(|_| (rng.next() % 160) as u32).collect();
    let mut out = vec![0i32; max_n];

    // Each closure runs the *scalar module* directly for `None` (the code
    // the wrapper inlines below the crossover) and the dispatched tier for
    // `Some(best)` — exactly the two sides the constants arbitrate.
    let sweeps = vec![
        sweep("find_i16", crossover::FIND_I16, |t, n| {
            let d = black_box(&i16s[..n]);
            match t {
                None => scalar::find_i16(d, -7),
                Some(t) => semloc_accel::find_i16_with(t, d, -7),
            }
            .map_or(0, |i| i as u64)
        }),
        sweep("find_u64", crossover::FIND_U64, |t, n| {
            let d = black_box(&u64s[..n]);
            match t {
                None => scalar::find_u64(d, 2),
                Some(t) => semloc_accel::find_u64_with(t, d, 2),
            }
            .map_or(0, |i| i as u64)
        }),
        sweep("min_index_i8", crossover::MIN_INDEX_I8, |t, n| {
            let d = black_box(&i8s[..n]);
            match t {
                None => scalar::min_index_i8(d),
                Some(t) => semloc_accel::min_index_i8_with(t, d),
            }
            .map_or(0, |i| i as u64)
        }),
        sweep("max_index_last_i8", crossover::MAX_INDEX_LAST_I8, |t, n| {
            let d = black_box(&i8s[..n]);
            match t {
                None => scalar::max_index_last_i8(d),
                Some(t) => semloc_accel::max_index_last_i8_with(t, d),
            }
            .map_or(0, |i| i as u64)
        }),
        sweep("min_index_u32", crossover::MIN_INDEX_U32, |t, n| {
            let d = black_box(&u32s[..n]);
            match t {
                None => scalar::min_index_u32(d),
                Some(t) => semloc_accel::min_index_u32_with(t, d),
            }
            .map_or(0, |i| i as u64)
        }),
        sweep("find_valid_tag", crossover::FIND_VALID_TAG, |t, n| {
            let (tg, vl) = (black_box(&tags[..n]), black_box(&valid[..n]));
            match t {
                None => scalar::find_valid_tag(tg, vl, 2),
                Some(t) => semloc_accel::find_valid_tag_with(t, tg, vl, 2),
            }
            .map_or(0, |i| i as u64)
        }),
        sweep("victim_way", usize::MAX, |t, n| {
            let (vl, lr) = (black_box(&valid[..n]), black_box(&lru[..n]));
            match t {
                None => scalar::victim_way(vl, lr),
                Some(t) => semloc_accel::victim_way_with(t, vl, lr),
            }
            .map_or(0, |i| i as u64)
        }),
        sweep("gather_i32", crossover::GATHER_I32, |t, n| {
            let ix = black_box(&idxs[..n]);
            match t {
                None => scalar::gather_i32(&table, ix, &mut out),
                Some(t) => semloc_accel::gather_i32_with(t, &table, ix, &mut out),
            }
            out[0] as u64
        }),
        sweep("find_pair_i64", crossover::FIND_PAIR_I64, |t, n| {
            let d = black_box(&i64s[..n]);
            match t {
                None => scalar::find_pair_i64(d, 14, 14),
                Some(t) => semloc_accel::find_pair_i64_with(t, d, 14, 14),
            }
            .map_or(0, |i| i as u64)
        }),
    ];

    println!(
        "kernel              committed   measured   (lengths where SIMD wins, best tier: {best:?})"
    );
    println!("--------------------------------------------------------------------------------");
    let mut json = String::from("{\n");
    for s in &sweeps {
        let measured = s.stable_crossover();
        let measured_str = measured.map_or("never".into(), |n| n.to_string());
        let committed_str = if s.committed == usize::MAX {
            "never".into()
        } else {
            s.committed.to_string()
        };
        println!("{:<19} {committed_str:>9} {measured_str:>10}", s.name);
        let rows = s
            .rows
            .iter()
            .map(|(n, sc, si)| {
                format!("{{\"lanes\": {n}, \"scalar_ns\": {sc:.2}, \"simd_ns\": {si:.2}}}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "  \"{}\": {{\"committed\": {}, \"measured\": {}, \"rows\": [{rows}]}},",
            s.name,
            if s.committed == usize::MAX {
                "null".into()
            } else {
                s.committed.to_string()
            },
            measured.map_or("null".into(), |n| n.to_string()),
        );
    }
    let _ = writeln!(
        json,
        "  \"meta\": {{\"best_tier\": \"{best:?}\", \"lengths\": {LENGTHS:?}, \
         \"note\": \"committed = semloc_accel::crossover constants; measured = smallest swept length from which the best tier never loses to scalar on this host (needle-absent full scans); victim_way is recorded for the ships-scalar decision, not dispatched\"}}\n}}"
    );
    std::fs::write(&out_path, &json).expect("write BENCH_crossover.json");
    println!("\nwrote {out_path}");
}
