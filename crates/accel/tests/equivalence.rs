//! Property suite pinning every SIMD tier to the scalar reference
//! bit-for-bit, over tie-dense and rail-heavy inputs: small alphabets so
//! duplicate minima/maxima (where tie-break order matters) and matches in
//! both vector-body and padded-tail positions occur constantly.

use proptest::prelude::*;
use semloc_accel::{available_tiers, Tier};

/// Every tier the host can execute, asserted against scalar.
fn tiers() -> Vec<Tier> {
    let t = available_tiers();
    assert!(t.contains(&Tier::Scalar));
    t
}

fn score_i8() -> impl Strategy<Value = i8> {
    prop_oneof![Just(i8::MIN), Just(i8::MAX), -2i8..3, any::<i8>(),]
}

proptest! {
    #[test]
    fn mix8_matches_scalar_on_every_tier(vals in collection::vec(any::<u64>(), 8..9)) {
        let mut reference: [u64; 8] = vals.clone().try_into().unwrap();
        semloc_accel::mix8_with(Tier::Scalar, &mut reference);
        for t in tiers() {
            let mut got: [u64; 8] = vals.clone().try_into().unwrap();
            semloc_accel::mix8_with(t, &mut got);
            prop_assert_eq!(got, reference, "tier {:?}", t);
        }
    }

    #[test]
    fn find_i16_matches_scalar_on_every_tier(
        hay in collection::vec(-3i16..4, 0..40),
        needle in -3i16..4,
    ) {
        let want = semloc_accel::find_i16_with(Tier::Scalar, &hay, needle);
        for t in tiers() {
            prop_assert_eq!(semloc_accel::find_i16_with(t, &hay, needle), want, "tier {:?}", t);
        }
    }

    #[test]
    fn find_u64_matches_scalar_on_every_tier(
        hay in collection::vec(0u64..6, 0..24),
        needle in 0u64..6,
    ) {
        let want = semloc_accel::find_u64_with(Tier::Scalar, &hay, needle);
        for t in tiers() {
            prop_assert_eq!(semloc_accel::find_u64_with(t, &hay, needle), want, "tier {:?}", t);
        }
    }

    #[test]
    fn min_index_i8_matches_scalar_on_every_tier(v in collection::vec(score_i8(), 0..72)) {
        let want = semloc_accel::min_index_i8_with(Tier::Scalar, &v);
        for t in tiers() {
            prop_assert_eq!(semloc_accel::min_index_i8_with(t, &v), want, "tier {:?}", t);
        }
    }

    #[test]
    fn max_index_last_i8_matches_scalar_on_every_tier(v in collection::vec(score_i8(), 0..72)) {
        let want = semloc_accel::max_index_last_i8_with(Tier::Scalar, &v);
        for t in tiers() {
            prop_assert_eq!(semloc_accel::max_index_last_i8_with(t, &v), want, "tier {:?}", t);
        }
    }

    #[test]
    fn min_index_u32_matches_scalar_on_every_tier(
        v in collection::vec(
            prop_oneof![Just(0u32), Just(u32::MAX), 0u32..4, any::<u32>()],
            0..40,
        )
    ) {
        let want = semloc_accel::min_index_u32_with(Tier::Scalar, &v);
        for t in tiers() {
            prop_assert_eq!(semloc_accel::min_index_u32_with(t, &v), want, "tier {:?}", t);
        }
    }

    #[test]
    fn find_valid_tag_matches_scalar_on_every_tier(
        ways in collection::vec((0u64..5, any::<bool>()), 0..24),
        needle in 0u64..5,
    ) {
        let tags: Vec<u64> = ways.iter().map(|w| w.0).collect();
        let valid: Vec<bool> = ways.iter().map(|w| w.1).collect();
        let want = semloc_accel::find_valid_tag_with(Tier::Scalar, &tags, &valid, needle);
        for t in tiers() {
            prop_assert_eq!(
                semloc_accel::find_valid_tag_with(t, &tags, &valid, needle),
                want,
                "tier {:?}", t
            );
        }
    }

    #[test]
    fn victim_way_matches_scalar_on_every_tier(
        ways in collection::vec(
            (any::<bool>(), prop_oneof![0u64..4, Just(u64::MAX), any::<u64>()]),
            0..24,
        )
    ) {
        let valid: Vec<bool> = ways.iter().map(|w| w.0).collect();
        let lru: Vec<u64> = ways.iter().map(|w| w.1).collect();
        let want = semloc_accel::victim_way_with(Tier::Scalar, &valid, &lru);
        for t in tiers() {
            prop_assert_eq!(semloc_accel::victim_way_with(t, &valid, &lru), want, "tier {:?}", t);
        }
    }

    #[test]
    fn gather_i32_matches_scalar_on_every_tier(
        table in collection::vec(any::<i32>(), 1..50),
        idxs in collection::vec(prop_oneof![0u32..64, Just(u32::MAX)], 0..40),
    ) {
        let mut want = vec![0i32; idxs.len()];
        semloc_accel::gather_i32_with(Tier::Scalar, &table, &idxs, &mut want);
        for t in tiers() {
            let mut got = vec![0i32; idxs.len()];
            semloc_accel::gather_i32_with(t, &table, &idxs, &mut got);
            prop_assert_eq!(&got, &want, "tier {:?}", t);
        }
    }

    #[test]
    fn find_pair_i64_matches_scalar_on_every_tier(
        deltas in collection::vec(-2i64..3, 0..40),
        d1 in -2i64..3,
        d2 in -2i64..3,
    ) {
        let want = semloc_accel::find_pair_i64_with(Tier::Scalar, &deltas, d1, d2);
        for t in tiers() {
            prop_assert_eq!(
                semloc_accel::find_pair_i64_with(t, &deltas, d1, d2),
                want,
                "tier {:?}", t
            );
        }
    }
}

/// The edge lengths the random vectors may under-sample: exactly at, one
/// below, and one above each vector width used by the tiers.
#[test]
fn boundary_lengths_agree_on_every_tier() {
    for n in [
        0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
    ] {
        let i8s: Vec<i8> = (0..n).map(|i| ((i * 37) % 11) as i8 - 5).collect();
        let u32s: Vec<u32> = (0..n).map(|i| ((i * 29) % 7) as u32).collect();
        let u64s: Vec<u64> = (0..n).map(|i| ((i * 13) % 5) as u64).collect();
        let i16s: Vec<i16> = (0..n).map(|i| ((i * 7) % 9) as i16 - 4).collect();
        let valid: Vec<bool> = (0..n).map(|i| i % 3 != 0).collect();
        for t in available_tiers() {
            assert_eq!(
                semloc_accel::min_index_i8_with(t, &i8s),
                semloc_accel::min_index_i8_with(Tier::Scalar, &i8s),
                "min_index_i8 len {n} tier {t:?}"
            );
            assert_eq!(
                semloc_accel::max_index_last_i8_with(t, &i8s),
                semloc_accel::max_index_last_i8_with(Tier::Scalar, &i8s),
                "max_index_last_i8 len {n} tier {t:?}"
            );
            assert_eq!(
                semloc_accel::min_index_u32_with(t, &u32s),
                semloc_accel::min_index_u32_with(Tier::Scalar, &u32s),
                "min_index_u32 len {n} tier {t:?}"
            );
            for needle in 0..6 {
                assert_eq!(
                    semloc_accel::find_u64_with(t, &u64s, needle),
                    semloc_accel::find_u64_with(Tier::Scalar, &u64s, needle),
                    "find_u64 len {n} needle {needle} tier {t:?}"
                );
                assert_eq!(
                    semloc_accel::find_valid_tag_with(t, &u64s, &valid, needle),
                    semloc_accel::find_valid_tag_with(Tier::Scalar, &u64s, &valid, needle),
                    "find_valid_tag len {n} needle {needle} tier {t:?}"
                );
            }
            for needle in -4..5 {
                assert_eq!(
                    semloc_accel::find_i16_with(t, &i16s, needle),
                    semloc_accel::find_i16_with(Tier::Scalar, &i16s, needle),
                    "find_i16 len {n} needle {needle} tier {t:?}"
                );
            }
        }
    }
}
