//! Portable reference implementations — the semantic contract every SIMD
//! tier must reproduce bit-for-bit, including tie-breaks: first match,
//! first minimum, last maximum (the `Iterator::min_by_key`/`max_by_key`
//! conventions of the scans these kernels replace).

/// SplitMix64 finalizer (the `mix` of `semloc_context::attrs`).
#[inline]
pub(crate) fn splitmix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Apply the SplitMix64 finalizer to each lane.
#[inline]
pub fn mix8(x: &mut [u64; 8]) {
    for v in x.iter_mut() {
        *v = splitmix(*v);
    }
}

/// First index equal to `needle`.
#[inline]
pub fn find_i16(hay: &[i16], needle: i16) -> Option<usize> {
    hay.iter().position(|&a| a == needle)
}

/// First index equal to `needle`.
#[inline]
pub fn find_u64(hay: &[u64], needle: u64) -> Option<usize> {
    hay.iter().position(|&a| a == needle)
}

/// First index of the minimum.
#[inline]
pub fn min_index_i8(v: &[i8]) -> Option<usize> {
    let mut best: Option<(usize, i8)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, b)) if b <= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Last index of the maximum.
#[inline]
pub fn max_index_last_i8(v: &[i8]) -> Option<usize> {
    let mut best: Option<(usize, i8)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, b)) if b > x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// First index of the minimum.
#[inline]
pub fn min_index_u32(v: &[u32]) -> Option<usize> {
    let mut best: Option<(usize, u32)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, b)) if b <= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// First way with `valid[i] && tags[i] == needle`.
#[inline]
pub fn find_valid_tag(tags: &[u64], valid: &[bool], needle: u64) -> Option<usize> {
    (0..tags.len()).find(|&i| valid[i] && tags[i] == needle)
}

/// The LRU key of a way: invalid ways are free (key 0) and always beat
/// valid ones, whose key is `lru + 1` (wrapping, so the contract is total
/// over all of `u64` — real LRU ticks never reach the wrap).
#[inline]
pub(crate) fn lru_key(valid: bool, lru: u64) -> u64 {
    if valid {
        lru.wrapping_add(1)
    } else {
        0
    }
}

/// First way minimizing [`lru_key`].
#[inline]
pub fn victim_way(valid: &[bool], lru: &[u64]) -> Option<usize> {
    let mut best: Option<(usize, u64)> = None;
    for i in 0..valid.len() {
        let k = lru_key(valid[i], lru[i]);
        match best {
            Some((_, b)) if b <= k => {}
            _ => best = Some((i, k)),
        }
    }
    best.map(|(i, _)| i)
}

/// `out[i] = table[min(idxs[i], table.len() - 1)]`.
#[inline]
pub fn gather_i32(table: &[i32], idxs: &[u32], out: &mut [i32]) {
    let last = table.len() - 1;
    for (o, &idx) in out.iter_mut().zip(idxs) {
        *o = table[(idx as usize).min(last)];
    }
}

/// First `i` in `1..deltas.len()-1` with `deltas[i] == d1 && deltas[i+1] == d2`.
#[inline]
pub fn find_pair_i64(deltas: &[i64], d1: i64, d2: i64) -> Option<usize> {
    if deltas.len() < 3 {
        return None;
    }
    (1..deltas.len() - 1).find(|&i| deltas[i] == d1 && deltas[i + 1] == d2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_known_vector() {
        // SplitMix64 finalizer of 0 with these constants is 0 (all-zero
        // input stays zero under xor-shift-multiply), so probe non-zero.
        assert_eq!(splitmix(0), 0);
        let a = splitmix(1);
        assert_ne!(a, 1);
        assert_eq!(a, splitmix(1), "pure function");
    }

    #[test]
    fn tie_breaks_match_iterator_conventions() {
        let v = [3i8, -1, -1, 5];
        assert_eq!(
            min_index_i8(&v),
            v.iter().enumerate().min_by_key(|&(_, s)| s).map(|(i, _)| i)
        );
        let w = [3i8, 5, 5, -1];
        assert_eq!(
            max_index_last_i8(&w),
            w.iter().enumerate().max_by_key(|&(_, s)| s).map(|(i, _)| i)
        );
    }

    #[test]
    fn victim_prefers_first_invalid_then_first_lru_min() {
        assert_eq!(victim_way(&[true, false, false], &[1, 9, 9]), Some(1));
        assert_eq!(victim_way(&[true, true, true], &[5, 2, 2]), Some(1));
        assert_eq!(victim_way(&[], &[]), None);
    }

    #[test]
    fn gather_clamps_to_the_tail_entry() {
        let table = [10, 20, 30, 0];
        let mut out = [0i32; 5];
        gather_i32(&table, &[0, 2, 3, 4, 1000], &mut out);
        assert_eq!(out, [10, 30, 0, 0, 0]);
    }

    #[test]
    fn pair_scan_skips_index_zero_and_needs_a_successor() {
        let d = [7i64, 7, 7, 9];
        // i=0 excluded; i=1 matches (7,7)? deltas[1]=7, deltas[2]=7.
        assert_eq!(find_pair_i64(&d, 7, 7), Some(1));
        assert_eq!(find_pair_i64(&d, 7, 9), Some(2));
        assert_eq!(find_pair_i64(&d, 9, 7), None);
        assert_eq!(find_pair_i64(&[1, 2], 1, 2), None, "too short");
    }
}
