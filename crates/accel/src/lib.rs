//! Runtime-dispatched SIMD kernels for the simulator's measured hot paths.
//!
//! Four kernel families back the structures that dominate many-cell runs:
//!
//! * **hash mixing** — [`mix8`], the SplitMix64 finalizer applied to the 8
//!   per-attribute lanes of a `FeatureVec` extraction;
//! * **scored-set scans** — [`find_i16`], [`find_u64`], [`min_index_i8`],
//!   [`max_index_last_i8`], [`min_index_u32`]: the CST link search,
//!   victim-select and best-candidate reductions;
//! * **cache tag probes** — [`find_valid_tag`] and [`victim_way`] over a
//!   set-major SoA cache array;
//! * **reward gathers** — [`gather_i32`], batch evaluation of the
//!   precomputed bell-reward table, plus [`find_pair_i64`], the GHB
//!   delta-correlation pair scan.
//!
//! Every kernel has four implementations — portable scalar, SSE2, AVX2
//! and AVX-512 — selected once per process by [`tier`]: the `SEMLOC_ACCEL`
//! environment variable (`scalar`, `sse2`, `avx2`, `avx512` or `auto`, the
//! default) names the *requested* tier, which is then capped at what
//! `is_x86_feature_detected!` reports, so a binary built on one machine
//! never faults on another. All four paths are **bit-identical** for every
//! input (tie-breaks included: first-minimum, last-maximum, first-match —
//! matching the `Iterator::min_by_key`/`max_by_key` conventions of the
//! structures they replace); the equivalence property suites in
//! `tests/equivalence.rs` pin this, and the golden-digest CI job runs the
//! full harness under `scalar`, `auto` and the parallel shard pool
//! asserting one digest.
//!
//! The per-tier entry points ([`mix8_with`] and friends) are public so
//! tests and benchmarks can compare tiers directly; production callers use
//! the auto-dispatched forms.

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::sync::OnceLock;

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
#[cfg(target_arch = "x86_64")]
pub mod sse2;

/// One implementation tier. Ordered: later tiers require strictly more CPU
/// features.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable scalar Rust — always available, the reference semantics.
    Scalar,
    /// 128-bit SSE2 (baseline on x86_64).
    Sse2,
    /// 256-bit AVX2.
    Avx2,
    /// 512-bit AVX-512 (requires the F+BW+DQ+VL subset).
    Avx512,
}

impl Tier {
    /// Parse a `SEMLOC_ACCEL` value. `auto` (and unset) request the best
    /// supported tier.
    fn from_env(v: &str) -> Option<Tier> {
        match v {
            "scalar" => Some(Tier::Scalar),
            "sse2" => Some(Tier::Sse2),
            "avx2" => Some(Tier::Avx2),
            "avx512" => Some(Tier::Avx512),
            _ => None,
        }
    }
}

/// Whether this host can execute `t`'s instructions.
pub fn supported(t: Tier) -> bool {
    match t {
        Tier::Scalar => true,
        #[cfg(target_arch = "x86_64")]
        Tier::Sse2 => true, // SSE2 is architectural baseline on x86_64
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
        #[cfg(target_arch = "x86_64")]
        Tier::Avx512 => {
            std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
                && std::arch::is_x86_feature_detected!("avx512dq")
                && std::arch::is_x86_feature_detected!("avx512vl")
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => false,
    }
}

/// The best tier this host supports.
pub fn best_supported() -> Tier {
    if supported(Tier::Avx512) {
        Tier::Avx512
    } else if supported(Tier::Avx2) {
        Tier::Avx2
    } else if supported(Tier::Sse2) {
        Tier::Sse2
    } else {
        Tier::Scalar
    }
}

fn resolve_tier() -> Tier {
    let requested = match std::env::var("SEMLOC_ACCEL") {
        Ok(v) if !v.is_empty() => match Tier::from_env(&v) {
            Some(t) => t,
            None if v == "auto" => best_supported(),
            None => panic!("SEMLOC_ACCEL={v:?}: expected scalar|sse2|avx2|avx512|auto"),
        },
        _ => best_supported(),
    };
    // Cap the request at what the CPU offers: a tier is a performance
    // choice, never a correctness one, so degrading silently is safe (all
    // tiers are bit-identical) and keeps one binary portable.
    if supported(requested) {
        requested
    } else {
        best_supported().min(requested)
    }
}

/// The process-wide dispatch tier (resolved once from `SEMLOC_ACCEL` and
/// CPU feature detection).
pub fn tier() -> Tier {
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(resolve_tier)
}

/// Default minimum input length (lanes) at which an auto-dispatched
/// wrapper hands a scan to the SIMD tiers.
///
/// `#[target_feature]` functions cannot be inlined into callers compiled
/// without that feature, so every SIMD call pays an outlined call plus
/// vector setup (~a dozen ns). A branchy scalar loop over a handful of
/// elements beats that by a wide margin — measured on the simulator's own
/// structures, routing an 8-way cache probe or a 4-link CST scan through
/// the dispatcher *doubled* the end-to-end cost of a no-prefetch run.
/// Below the crossover the wrappers therefore run the (inlinable) scalar
/// kernel directly; at or above it, the resolved [`tier`] takes over. The
/// explicit `*_with` entry points bypass the crossover — the equivalence
/// suites use them to pin every tier bit-identical at every length, so
/// the cutover is a pure performance choice, never a correctness one.
///
/// Where the trade flips differs per kernel, so each wrapper reads its
/// own constant from [`crossover`]; this shared value is the default for
/// kernels whose measured crossover matches the historical shared cut.
pub const SIMD_CROSSOVER_LANES: usize = 16;

/// Per-kernel scalar→SIMD crossover lane counts.
///
/// Measured by the `calibrate_crossover` bench binary (semloc-bench):
/// for each kernel it sweeps input lengths over needle-absent full scans
/// and reports the smallest length from which the best supported tier
/// never loses to the inlined scalar loop again. The committed values are
/// that measurement rounded *up* to the next production shape (4/8-way
/// probes, 16-entry queues, 48–64-lane tables), so hosts slightly slower
/// at vector setup than the calibration box still never regress. Re-run
/// the bench and compare its table against these when bringing up a new
/// host class.
pub mod crossover {
    use super::SIMD_CROSSOVER_LANES;

    /// [`crate::find_i16`] — CST link search. Measured stable at 8: the
    /// 32-lane masked compare amortizes its setup over a single vector,
    /// so only the paper-default 4-link scans stay scalar.
    pub const FIND_I16: usize = 8;
    /// [`crate::find_u64`] — scored-set tag scan. Measured stable at 6,
    /// committed at the 8-lane production shape.
    pub const FIND_U64: usize = 8;
    /// [`crate::min_index_i8`] — victim-select reduction. Measured stable
    /// at 16 (two passes — reduce then rescan — need more lanes to pay
    /// off than a single-pass scan).
    pub const MIN_INDEX_I8: usize = SIMD_CROSSOVER_LANES;
    /// [`crate::max_index_last_i8`] — best-candidate reduction. Measured
    /// stable at 6, committed at the 8-lane production shape.
    pub const MAX_INDEX_LAST_I8: usize = 8;
    /// [`crate::min_index_u32`] — LRU-style minimum scan. Measured stable
    /// at 12, committed at 16 (also two-pass).
    pub const MIN_INDEX_U32: usize = SIMD_CROSSOVER_LANES;
    /// [`crate::find_valid_tag`] — cache tag probe. Measured stable at
    /// 12, committed at 16 so paper-default 8-way probes keep the inlined
    /// scalar loop.
    pub const FIND_VALID_TAG: usize = SIMD_CROSSOVER_LANES;
    /// [`crate::gather_i32`] — reward-table batch gather. Measured stable
    /// at 16 (`vpgatherdd` issues one load µop per lane, so small batches
    /// gain nothing over the scalar loop).
    pub const GATHER_I32: usize = SIMD_CROSSOVER_LANES;
    /// [`crate::find_pair_i64`] — GHB delta-correlation pair scan.
    /// Measured stable at 12, committed at 16: chains at the paper's
    /// 8-deep history stay scalar, sweep-widened chains vectorize.
    pub const FIND_PAIR_I64: usize = SIMD_CROSSOVER_LANES;
}

macro_rules! dispatch {
    ($t:expr, $f:ident ( $($arg:expr),* )) => {{
        match $t {
            #[cfg(target_arch = "x86_64")]
            // semloc-lint: allow(unsafe-audit): tier() / `supported` guarantee the AVX-512 F+BW+DQ+VL bundle was detected before this path is taken
            Tier::Avx512 => unsafe { avx512::$f($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // semloc-lint: allow(unsafe-audit): tier() / `supported` guarantee AVX2 was detected before this path is taken
            Tier::Avx2 => unsafe { avx2::$f($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            // semloc-lint: allow(unsafe-audit): SSE2 is the x86_64 architectural baseline, always executable
            Tier::Sse2 => unsafe { sse2::$f($($arg),*) },
            #[allow(unreachable_patterns)] // non-x86_64 builds fold every tier to scalar
            _ => scalar::$f($($arg),*),
        }
    }};
}

/// Apply the SplitMix64 finalizer to all 8 lanes in place.
///
/// Always runs the scalar kernel: pre-AVX512DQ x86 has no packed 64-bit
/// multiply, so the AVX2 tier synthesizes each of SplitMix64's multiplies
/// from three `vpmuludq`s — measurably slower than eight native `imul`s at
/// this fixed width (~0.4x in `bench_accel`). [`mix8_with`] still reaches
/// the vector tiers for equivalence testing.
#[inline]
pub fn mix8(x: &mut [u64; 8]) {
    scalar::mix8(x)
}

/// [`mix8`] at an explicit tier (caller must check [`supported`]).
#[inline]
pub fn mix8_with(t: Tier, x: &mut [u64; 8]) {
    dispatch!(t, mix8(x))
}

/// Index of the first element equal to `needle`.
#[inline]
pub fn find_i16(hay: &[i16], needle: i16) -> Option<usize> {
    if hay.len() < crossover::FIND_I16 {
        return scalar::find_i16(hay, needle);
    }
    find_i16_with(tier(), hay, needle)
}

/// [`find_i16`] at an explicit tier.
#[inline]
pub fn find_i16_with(t: Tier, hay: &[i16], needle: i16) -> Option<usize> {
    dispatch!(t, find_i16(hay, needle))
}

/// Index of the first element equal to `needle`.
#[inline]
pub fn find_u64(hay: &[u64], needle: u64) -> Option<usize> {
    if hay.len() < crossover::FIND_U64 {
        return scalar::find_u64(hay, needle);
    }
    find_u64_with(tier(), hay, needle)
}

/// [`find_u64`] at an explicit tier.
#[inline]
pub fn find_u64_with(t: Tier, hay: &[u64], needle: u64) -> Option<usize> {
    dispatch!(t, find_u64(hay, needle))
}

/// Index of the first minimum (the `min_by_key` tie-break).
#[inline]
pub fn min_index_i8(v: &[i8]) -> Option<usize> {
    if v.len() < crossover::MIN_INDEX_I8 {
        return scalar::min_index_i8(v);
    }
    min_index_i8_with(tier(), v)
}

/// [`min_index_i8`] at an explicit tier.
#[inline]
pub fn min_index_i8_with(t: Tier, v: &[i8]) -> Option<usize> {
    dispatch!(t, min_index_i8(v))
}

/// Index of the **last** maximum (the `max_by_key` tie-break).
#[inline]
pub fn max_index_last_i8(v: &[i8]) -> Option<usize> {
    if v.len() < crossover::MAX_INDEX_LAST_I8 {
        return scalar::max_index_last_i8(v);
    }
    max_index_last_i8_with(tier(), v)
}

/// [`max_index_last_i8`] at an explicit tier.
#[inline]
pub fn max_index_last_i8_with(t: Tier, v: &[i8]) -> Option<usize> {
    dispatch!(t, max_index_last_i8(v))
}

/// Index of the first minimum (the `min_by_key` tie-break).
#[inline]
pub fn min_index_u32(v: &[u32]) -> Option<usize> {
    if v.len() < crossover::MIN_INDEX_U32 {
        return scalar::min_index_u32(v);
    }
    min_index_u32_with(tier(), v)
}

/// [`min_index_u32`] at an explicit tier.
#[inline]
pub fn min_index_u32_with(t: Tier, v: &[u32]) -> Option<usize> {
    dispatch!(t, min_index_u32(v))
}

/// Index of the first way with `valid[i] && tags[i] == needle`.
/// `tags` and `valid` must have equal lengths.
#[inline]
pub fn find_valid_tag(tags: &[u64], valid: &[bool], needle: u64) -> Option<usize> {
    if tags.len() < crossover::FIND_VALID_TAG {
        assert_eq!(tags.len(), valid.len(), "tag/valid arrays must pair up");
        return scalar::find_valid_tag(tags, valid, needle);
    }
    find_valid_tag_with(tier(), tags, valid, needle)
}

/// [`find_valid_tag`] at an explicit tier.
#[inline]
pub fn find_valid_tag_with(t: Tier, tags: &[u64], valid: &[bool], needle: u64) -> Option<usize> {
    assert_eq!(tags.len(), valid.len(), "tag/valid arrays must pair up");
    dispatch!(t, find_valid_tag(tags, valid, needle))
}

/// Replacement victim: index of the first way minimizing the LRU key
/// `if valid { lru + 1 } else { 0 }` (invalid ways always win; ties go to
/// the first way, matching `min_by_key`).
///
/// Always runs the scalar kernel: the AVX2 tier must materialize a key
/// scratch array before its first-minimum rescan, and that setup loses to
/// the branchy scalar loop even at 64 ways (~0.7x in `bench_accel`).
/// [`victim_way_with`] still reaches the vector tiers for equivalence
/// testing.
#[inline]
pub fn victim_way(valid: &[bool], lru: &[u64]) -> Option<usize> {
    assert_eq!(valid.len(), lru.len(), "valid/lru arrays must pair up");
    scalar::victim_way(valid, lru)
}

/// [`victim_way`] at an explicit tier.
#[inline]
pub fn victim_way_with(t: Tier, valid: &[bool], lru: &[u64]) -> Option<usize> {
    assert_eq!(valid.len(), lru.len(), "valid/lru arrays must pair up");
    dispatch!(t, victim_way(valid, lru))
}

/// Gather `out[i] = table[min(idxs[i], table.len() - 1)]` — batch lookup of
/// a precomputed reward table whose final entry covers the whole
/// beyond-range tail. `table` must be non-empty and `out` at least as long
/// as `idxs`.
#[inline]
pub fn gather_i32(table: &[i32], idxs: &[u32], out: &mut [i32]) {
    if idxs.len() < crossover::GATHER_I32 {
        assert!(!table.is_empty(), "gather table must be non-empty");
        assert!(out.len() >= idxs.len(), "gather output too short");
        return scalar::gather_i32(table, idxs, out);
    }
    gather_i32_with(tier(), table, idxs, out)
}

/// [`gather_i32`] at an explicit tier.
#[inline]
pub fn gather_i32_with(t: Tier, table: &[i32], idxs: &[u32], out: &mut [i32]) {
    assert!(!table.is_empty(), "gather table must be non-empty");
    assert!(out.len() >= idxs.len(), "gather output too short");
    dispatch!(t, gather_i32(table, idxs, out))
}

/// First `i` in `1..deltas.len()-1` with `deltas[i] == d1 &&
/// deltas[i+1] == d2` — the GHB delta-correlation scan (its search starts
/// at 1 because index 0 is the pair being correlated).
#[inline]
pub fn find_pair_i64(deltas: &[i64], d1: i64, d2: i64) -> Option<usize> {
    if deltas.len() < crossover::FIND_PAIR_I64 {
        return scalar::find_pair_i64(deltas, d1, d2);
    }
    find_pair_i64_with(tier(), deltas, d1, d2)
}

/// [`find_pair_i64`] at an explicit tier.
#[inline]
pub fn find_pair_i64_with(t: Tier, deltas: &[i64], d1: i64, d2: i64) -> Option<usize> {
    dispatch!(t, find_pair_i64(deltas, d1, d2))
}

/// Every tier this host can run, scalar first (test helper: equivalence
/// suites iterate it).
pub fn available_tiers() -> Vec<Tier> {
    [Tier::Scalar, Tier::Sse2, Tier::Avx2, Tier::Avx512]
        .into_iter()
        .filter(|&t| supported(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_supported() {
        assert!(supported(Tier::Scalar));
        assert!(available_tiers().contains(&Tier::Scalar));
    }

    #[test]
    fn tier_is_stable_across_calls() {
        assert_eq!(tier(), tier());
        assert!(supported(tier()), "resolved tier must be executable");
    }

    #[test]
    fn env_parse_accepts_the_documented_values() {
        assert_eq!(Tier::from_env("scalar"), Some(Tier::Scalar));
        assert_eq!(Tier::from_env("sse2"), Some(Tier::Sse2));
        assert_eq!(Tier::from_env("avx2"), Some(Tier::Avx2));
        assert_eq!(Tier::from_env("avx512"), Some(Tier::Avx512));
        assert_eq!(Tier::from_env("auto"), None);
        assert_eq!(Tier::from_env("neon"), None);
    }

    #[test]
    fn best_supported_is_ordered() {
        assert!(best_supported() >= Tier::Scalar);
    }

    #[test]
    fn dispatched_forms_match_scalar_on_a_smoke_input() {
        let mut a = [1u64, 2, 3, 4, 5, 6, 7, u64::MAX];
        let mut b = a;
        mix8(&mut a);
        scalar::mix8(&mut b);
        assert_eq!(a, b);
        assert_eq!(find_i16(&[3, -1, 7, -1], -1), Some(1));
        assert_eq!(min_index_i8(&[4, -2, -2, 9]), Some(1));
        assert_eq!(max_index_last_i8(&[4, 9, 9, -2]), Some(2));
    }
}
