//! 128-bit SSE2 implementations.
//!
//! SSE2 is the x86_64 architectural baseline, so this tier is always
//! executable on this architecture. Pre-AVX2 SSE lacks a few operations the
//! kernels want — 64-bit equality (synthesized from `pcmpeqd` + a lane
//! swap), signed byte min/max (synthesized by biasing into unsigned), and
//! any form of gather (no SIMD form exists, so [`gather_i32`] and
//! [`victim_way`] defer to the scalar reference) — every synthesis is
//! bit-identical to the scalar semantics, as pinned by the equivalence
//! property suite.
//!
//! # Safety
//!
//! Every `pub fn` here carries `#[target_feature(enable = "sse2")]`, so
//! calling one from a context without that feature statically enabled is
//! `unsafe`; the sole obligation is that the CPU supports SSE2 — trivially
//! true on `x86_64`, where SSE2 is the architectural baseline. The
//! [`crate::dispatch!`] sites uphold this. That shared contract is
//! documented here once rather than per function.

#![allow(unsafe_op_in_unsafe_fn)]
#![allow(clippy::missing_safety_doc)] // the uniform contract is in the module docs above

use std::arch::x86_64::*;

/// Load two `u64` lanes from the head of `p`.
#[inline]
#[target_feature(enable = "sse2")]
fn load_u64x2(p: &[u64]) -> __m128i {
    debug_assert!(p.len() >= 2);
    // semloc-lint: allow(unsafe-audit): unaligned 16-byte read from a slice asserted to hold >= 2 u64 lanes
    unsafe { _mm_loadu_si128(p.as_ptr() as *const __m128i) }
}

/// Store two `u64` lanes to the head of `p`.
#[inline]
#[target_feature(enable = "sse2")]
fn store_u64x2(p: &mut [u64], v: __m128i) {
    debug_assert!(p.len() >= 2);
    // semloc-lint: allow(unsafe-audit): unaligned 16-byte write into a slice asserted to hold >= 2 u64 lanes
    unsafe { _mm_storeu_si128(p.as_mut_ptr() as *mut __m128i, v) }
}

/// Load 16 bytes (eight `i16` / sixteen `i8` / four `u32` lanes).
#[inline]
#[target_feature(enable = "sse2")]
fn load_bytes16(p: *const u8, len_ok: bool) -> __m128i {
    debug_assert!(len_ok);
    // semloc-lint: allow(unsafe-audit): unaligned 16-byte read; every caller passes a pointer with >= 16 readable bytes (checked by its `len_ok` bound)
    unsafe { _mm_loadu_si128(p as *const __m128i) }
}

/// Full 64-bit lane-wise multiply (SSE2 only has 32x32->64):
/// `lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32)` — exactly the low
/// 64 bits of the product, i.e. `u64::wrapping_mul` per lane.
#[inline]
#[target_feature(enable = "sse2")]
fn mul64(a: __m128i, b: __m128i) -> __m128i {
    let a_hi = _mm_srli_epi64(a, 32);
    let b_hi = _mm_srli_epi64(b, 32);
    let lolo = _mm_mul_epu32(a, b);
    let lohi = _mm_mul_epu32(a, b_hi);
    let hilo = _mm_mul_epu32(a_hi, b);
    let cross = _mm_add_epi64(lohi, hilo);
    _mm_add_epi64(lolo, _mm_slli_epi64(cross, 32))
}

/// Lane-wise 64-bit equality (`pcmpeqq` is SSE4.1): compare 32-bit halves,
/// then AND each half with its swapped partner so a lane is all-ones iff
/// both halves matched.
#[inline]
#[target_feature(enable = "sse2")]
fn cmpeq64(a: __m128i, b: __m128i) -> __m128i {
    let eq32 = _mm_cmpeq_epi32(a, b);
    let swapped = _mm_shuffle_epi32::<0b10_11_00_01>(eq32);
    _mm_and_si128(eq32, swapped)
}

/// SplitMix64 finalizer on both lanes.
#[inline]
#[target_feature(enable = "sse2")]
fn splitmix2(mut x: __m128i) -> __m128i {
    let k1 = _mm_set1_epi64x(0xbf58_476d_1ce4_e5b9_u64 as i64);
    let k2 = _mm_set1_epi64x(0x94d0_49bb_1331_11eb_u64 as i64);
    x = mul64(_mm_xor_si128(x, _mm_srli_epi64(x, 30)), k1);
    x = mul64(_mm_xor_si128(x, _mm_srli_epi64(x, 27)), k2);
    _mm_xor_si128(x, _mm_srli_epi64(x, 31))
}

/// See [`crate::scalar::mix8`].
#[target_feature(enable = "sse2")]
pub fn mix8(x: &mut [u64; 8]) {
    for i in (0..8).step_by(2) {
        let v = splitmix2(load_u64x2(&x[i..]));
        store_u64x2(&mut x[i..], v);
    }
}

/// See [`crate::scalar::find_i16`].
#[target_feature(enable = "sse2")]
pub fn find_i16(hay: &[i16], needle: i16) -> Option<usize> {
    let splat = _mm_set1_epi16(needle);
    let mut i = 0;
    while i + 8 <= hay.len() {
        let v = load_bytes16(hay[i..].as_ptr() as *const u8, hay.len() - i >= 8);
        let m = _mm_movemask_epi8(_mm_cmpeq_epi16(v, splat)) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize / 2);
        }
        i += 8;
    }
    let rem = hay.len() - i;
    if rem > 0 {
        // Pad the tail with a value that cannot equal the needle.
        let mut buf = [needle.wrapping_add(1); 8];
        buf[..rem].copy_from_slice(&hay[i..]);
        let v = load_bytes16(buf.as_ptr() as *const u8, true);
        let m = _mm_movemask_epi8(_mm_cmpeq_epi16(v, splat)) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize / 2);
        }
    }
    None
}

/// See [`crate::scalar::find_u64`].
#[target_feature(enable = "sse2")]
pub fn find_u64(hay: &[u64], needle: u64) -> Option<usize> {
    let splat = _mm_set1_epi64x(needle as i64);
    let mut i = 0;
    while i + 2 <= hay.len() {
        let m = _mm_movemask_epi8(cmpeq64(load_u64x2(&hay[i..]), splat)) as u32;
        if m & 0xff == 0xff {
            return Some(i);
        }
        if m >> 8 == 0xff {
            return Some(i + 1);
        }
        i += 2;
    }
    if i < hay.len() && hay[i] == needle {
        return Some(i);
    }
    None
}

/// See [`crate::scalar::min_index_i8`]. Signed min via the `x ^ 0x80` bias
/// into unsigned (`pminsb` is SSE4.1).
#[target_feature(enable = "sse2")]
pub fn min_index_i8(v: &[i8]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let flip = _mm_set1_epi8(i8::MIN);
    let mut acc = _mm_set1_epi8(-1); // biased i8::MAX
    let chunk = |base: usize, pad: i8| -> __m128i {
        if v.len() - base >= 16 {
            load_bytes16(v[base..].as_ptr() as *const u8, true)
        } else {
            let mut buf = [pad; 16];
            buf[..v.len() - base].copy_from_slice(&v[base..]);
            load_bytes16(buf.as_ptr() as *const u8, true)
        }
    };
    // Pass 1: global minimum (biased-unsigned domain; padding loses).
    let mut i = 0;
    while i < v.len() {
        acc = _mm_min_epu8(acc, _mm_xor_si128(chunk(i, i8::MAX), flip));
        i += 16;
    }
    acc = _mm_min_epu8(acc, _mm_srli_si128::<8>(acc));
    acc = _mm_min_epu8(acc, _mm_srli_si128::<4>(acc));
    acc = _mm_min_epu8(acc, _mm_srli_si128::<2>(acc));
    acc = _mm_min_epu8(acc, _mm_srli_si128::<1>(acc));
    let min_raw = ((_mm_cvtsi128_si32(acc) & 0xff) as u8 ^ 0x80) as i8;
    // Pass 2: first index holding it (mask off padding lanes).
    let splat = _mm_set1_epi8(min_raw);
    let mut i = 0;
    while i < v.len() {
        let lanes = (v.len() - i).min(16);
        let m = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk(i, min_raw.wrapping_add(1)), splat)) as u32
            & ((1u32 << lanes) - 1);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 16;
    }
    unreachable!("the minimum of a non-empty slice is present in it")
}

/// See [`crate::scalar::max_index_last_i8`]: the **last** maximum.
#[target_feature(enable = "sse2")]
pub fn max_index_last_i8(v: &[i8]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let flip = _mm_set1_epi8(i8::MIN);
    let mut acc = _mm_setzero_si128(); // biased i8::MIN
    let chunk = |base: usize, pad: i8| -> __m128i {
        if v.len() - base >= 16 {
            load_bytes16(v[base..].as_ptr() as *const u8, true)
        } else {
            let mut buf = [pad; 16];
            buf[..v.len() - base].copy_from_slice(&v[base..]);
            load_bytes16(buf.as_ptr() as *const u8, true)
        }
    };
    let mut i = 0;
    while i < v.len() {
        acc = _mm_max_epu8(acc, _mm_xor_si128(chunk(i, i8::MIN), flip));
        i += 16;
    }
    acc = _mm_max_epu8(acc, _mm_srli_si128::<8>(acc));
    acc = _mm_max_epu8(acc, _mm_srli_si128::<4>(acc));
    acc = _mm_max_epu8(acc, _mm_srli_si128::<2>(acc));
    acc = _mm_max_epu8(acc, _mm_srli_si128::<1>(acc));
    let max_raw = ((_mm_cvtsi128_si32(acc) & 0xff) as u8 ^ 0x80) as i8;
    // Scan chunks from the back for the last occurrence.
    let splat = _mm_set1_epi8(max_raw);
    let mut base = (v.len() - 1) / 16 * 16;
    loop {
        let lanes = (v.len() - base).min(16);
        let m = _mm_movemask_epi8(_mm_cmpeq_epi8(chunk(base, max_raw.wrapping_add(1)), splat))
            as u32
            & ((1u32 << lanes) - 1);
        if m != 0 {
            return Some(base + (31 - m.leading_zeros()) as usize);
        }
        if base == 0 {
            unreachable!("the maximum of a non-empty slice is present in it");
        }
        base -= 16;
    }
}

/// See [`crate::scalar::min_index_u32`]. Unsigned min via the sign-bit bias
/// and `pcmpgtd` blend (`pminud` is SSE4.1).
#[target_feature(enable = "sse2")]
pub fn min_index_u32(v: &[u32]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let flip = _mm_set1_epi32(i32::MIN);
    let chunk = |base: usize, pad: u32| -> __m128i {
        if v.len() - base >= 4 {
            load_bytes16(v[base..].as_ptr() as *const u8, true)
        } else {
            let mut buf = [pad; 4];
            buf[..v.len() - base].copy_from_slice(&v[base..]);
            load_bytes16(buf.as_ptr() as *const u8, true)
        }
    };
    let mut acc = _mm_set1_epi32(i32::MAX); // biased u32::MAX
    let mut i = 0;
    while i < v.len() {
        let b = _mm_xor_si128(chunk(i, u32::MAX), flip);
        let gt = _mm_cmpgt_epi32(acc, b);
        acc = _mm_or_si128(_mm_and_si128(gt, b), _mm_andnot_si128(gt, acc));
        i += 4;
    }
    let a = _mm_xor_si128(acc, flip); // back to raw domain for the reduce
    let lanes = [
        _mm_cvtsi128_si32(a) as u32,
        _mm_cvtsi128_si32(_mm_srli_si128::<4>(a)) as u32,
        _mm_cvtsi128_si32(_mm_srli_si128::<8>(a)) as u32,
        _mm_cvtsi128_si32(_mm_srli_si128::<12>(a)) as u32,
    ];
    let min = lanes.iter().copied().min().unwrap_or(u32::MAX);
    let splat = _mm_set1_epi32(min as i32);
    let mut i = 0;
    while i < v.len() {
        let n = (v.len() - i).min(4);
        let m = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(
            chunk(i, min.wrapping_add(1)),
            splat,
        ))) as u32
            & ((1u32 << n) - 1);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 4;
    }
    unreachable!("the minimum of a non-empty slice is present in it")
}

/// See [`crate::scalar::find_valid_tag`]: first way whose tag matches and
/// whose valid bit is set. The tag compare runs two ways at a time; the
/// (rarely consulted) valid bits are checked per matching lane.
#[target_feature(enable = "sse2")]
pub fn find_valid_tag(tags: &[u64], valid: &[bool], needle: u64) -> Option<usize> {
    let splat = _mm_set1_epi64x(needle as i64);
    let mut i = 0;
    while i + 2 <= tags.len() {
        let m = _mm_movemask_epi8(cmpeq64(load_u64x2(&tags[i..]), splat)) as u32;
        if m != 0 {
            if m & 0xff == 0xff && valid[i] {
                return Some(i);
            }
            if m >> 8 == 0xff && valid[i + 1] {
                return Some(i + 1);
            }
        }
        i += 2;
    }
    if i < tags.len() && valid[i] && tags[i] == needle {
        return Some(i);
    }
    None
}

/// See [`crate::scalar::victim_way`]. SSE2 has no 64-bit compare at all
/// (min, greater-than and equality all arrive with SSE4.x/AVX2), so this
/// tier uses the scalar reference — bit-identical by construction.
#[target_feature(enable = "sse2")]
pub fn victim_way(valid: &[bool], lru: &[u64]) -> Option<usize> {
    crate::scalar::victim_way(valid, lru)
}

/// See [`crate::scalar::gather_i32`]. No gather instruction exists before
/// AVX2; scalar reference.
#[target_feature(enable = "sse2")]
pub fn gather_i32(table: &[i32], idxs: &[u32], out: &mut [i32]) {
    crate::scalar::gather_i32(table, idxs, out)
}

/// See [`crate::scalar::find_pair_i64`]: two candidate positions per
/// iteration, comparing `deltas[i..]` against `d1` and the shifted
/// `deltas[i+1..]` against `d2` in one go.
#[target_feature(enable = "sse2")]
pub fn find_pair_i64(deltas: &[i64], d1: i64, d2: i64) -> Option<usize> {
    if deltas.len() < 3 {
        return None;
    }
    let s1 = _mm_set1_epi64x(d1);
    let s2 = _mm_set1_epi64x(d2);
    let mut i = 1;
    while i + 3 <= deltas.len() {
        let eq1 = cmpeq64(load_u64x2(bytemuck_i64(&deltas[i..])), s1);
        let eq2 = cmpeq64(load_u64x2(bytemuck_i64(&deltas[i + 1..])), s2);
        let m = _mm_movemask_epi8(_mm_and_si128(eq1, eq2)) as u32;
        if m & 0xff == 0xff {
            return Some(i);
        }
        if m >> 8 == 0xff {
            return Some(i + 1);
        }
        i += 2;
    }
    while i + 1 < deltas.len() {
        if deltas[i] == d1 && deltas[i + 1] == d2 {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Reinterpret an `i64` slice as `u64` (same size, same bit patterns).
#[inline]
fn bytemuck_i64(v: &[i64]) -> &[u64] {
    // semloc-lint: allow(unsafe-audit): i64 and u64 have identical size, alignment and validity; length is preserved
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u64, v.len()) }
}
