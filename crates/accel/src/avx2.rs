//! 256-bit AVX2 implementations.
//!
//! AVX2 fills the gaps SSE2 has to synthesize around: native 64-bit
//! equality/compare (`vpcmpeqq`/`vpcmpgtq`), signed byte min/max
//! (`vpminsb`/`vpmaxsb`), unsigned dword min (`vpminud`) and a real gather
//! (`vpgatherdd`). Every kernel is pinned bit-identical to
//! [`crate::scalar`] by the equivalence property suite.
//!
//! # Safety
//!
//! Every `pub fn` here carries `#[target_feature(enable = "avx2")]`, so
//! calling one from a context without that feature statically enabled is
//! `unsafe`; the sole obligation is that the CPU actually supports AVX2,
//! which [`crate::supported`] checks via `is_x86_feature_detected!` before
//! the dispatcher ever selects this tier. That shared contract is
//! documented here once rather than per function.

#![allow(unsafe_op_in_unsafe_fn)]
#![allow(clippy::missing_safety_doc)] // the uniform contract is in the module docs above

use std::arch::x86_64::*;

/// Load four `u64` lanes from the head of `p`.
#[inline]
#[target_feature(enable = "avx2")]
fn load_u64x4(p: &[u64]) -> __m256i {
    debug_assert!(p.len() >= 4);
    // semloc-lint: allow(unsafe-audit): unaligned 32-byte read from a slice asserted to hold >= 4 u64 lanes
    unsafe { _mm256_loadu_si256(p.as_ptr() as *const __m256i) }
}

/// Store four `u64` lanes to the head of `p`.
#[inline]
#[target_feature(enable = "avx2")]
fn store_u64x4(p: &mut [u64], v: __m256i) {
    debug_assert!(p.len() >= 4);
    // semloc-lint: allow(unsafe-audit): unaligned 32-byte write into a slice asserted to hold >= 4 u64 lanes
    unsafe { _mm256_storeu_si256(p.as_mut_ptr() as *mut __m256i, v) }
}

/// Load 32 bytes (sixteen `i16` / thirty-two `i8` / eight `u32` lanes).
#[inline]
#[target_feature(enable = "avx2")]
fn load_bytes32(p: *const u8, len_ok: bool) -> __m256i {
    debug_assert!(len_ok);
    // semloc-lint: allow(unsafe-audit): unaligned 32-byte read; every caller passes a pointer with >= 32 readable bytes (checked by its `len_ok` bound)
    unsafe { _mm256_loadu_si256(p as *const __m256i) }
}

/// Full 64-bit lane-wise wrapping multiply from `vpmuludq` halves.
#[inline]
#[target_feature(enable = "avx2")]
fn mul64(a: __m256i, b: __m256i) -> __m256i {
    let a_hi = _mm256_srli_epi64(a, 32);
    let b_hi = _mm256_srli_epi64(b, 32);
    let lolo = _mm256_mul_epu32(a, b);
    let lohi = _mm256_mul_epu32(a, b_hi);
    let hilo = _mm256_mul_epu32(a_hi, b);
    let cross = _mm256_add_epi64(lohi, hilo);
    _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32))
}

/// SplitMix64 finalizer on all four lanes.
#[inline]
#[target_feature(enable = "avx2")]
fn splitmix4(mut x: __m256i) -> __m256i {
    let k1 = _mm256_set1_epi64x(0xbf58_476d_1ce4_e5b9_u64 as i64);
    let k2 = _mm256_set1_epi64x(0x94d0_49bb_1331_11eb_u64 as i64);
    x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), k1);
    x = mul64(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), k2);
    _mm256_xor_si256(x, _mm256_srli_epi64(x, 31))
}

/// See [`crate::scalar::mix8`].
#[target_feature(enable = "avx2")]
pub fn mix8(x: &mut [u64; 8]) {
    let lo = splitmix4(load_u64x4(&x[..4]));
    let hi = splitmix4(load_u64x4(&x[4..]));
    store_u64x4(&mut x[..4], lo);
    store_u64x4(&mut x[4..], hi);
}

/// See [`crate::scalar::find_i16`].
#[target_feature(enable = "avx2")]
pub fn find_i16(hay: &[i16], needle: i16) -> Option<usize> {
    let splat = _mm256_set1_epi16(needle);
    let mut i = 0;
    while i + 16 <= hay.len() {
        let v = load_bytes32(hay[i..].as_ptr() as *const u8, hay.len() - i >= 16);
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, splat)) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize / 2);
        }
        i += 16;
    }
    let rem = hay.len() - i;
    if rem > 0 {
        let mut buf = [needle.wrapping_add(1); 16];
        buf[..rem].copy_from_slice(&hay[i..]);
        let v = load_bytes32(buf.as_ptr() as *const u8, true);
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi16(v, splat)) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize / 2);
        }
    }
    None
}

/// See [`crate::scalar::find_u64`].
#[target_feature(enable = "avx2")]
pub fn find_u64(hay: &[u64], needle: u64) -> Option<usize> {
    let splat = _mm256_set1_epi64x(needle as i64);
    let mut i = 0;
    while i + 4 <= hay.len() {
        let eq = _mm256_cmpeq_epi64(load_u64x4(&hay[i..]), splat);
        let m = _mm256_movemask_epi8(eq) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize / 8);
        }
        i += 4;
    }
    while i < hay.len() {
        if hay[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// See [`crate::scalar::min_index_i8`]: `vpminsb` reduce, then first-index
/// rescan of the winning value.
#[target_feature(enable = "avx2")]
pub fn min_index_i8(v: &[i8]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let chunk = |base: usize, pad: i8| -> __m256i {
        if v.len() - base >= 32 {
            load_bytes32(v[base..].as_ptr() as *const u8, true)
        } else {
            let mut buf = [pad; 32];
            buf[..v.len() - base].copy_from_slice(&v[base..]);
            load_bytes32(buf.as_ptr() as *const u8, true)
        }
    };
    let mut acc = _mm256_set1_epi8(i8::MAX);
    let mut i = 0;
    while i < v.len() {
        acc = _mm256_min_epi8(acc, chunk(i, i8::MAX));
        i += 32;
    }
    let mut lane = _mm_min_epi8(
        _mm256_castsi256_si128(acc),
        _mm256_extracti128_si256::<1>(acc),
    );
    lane = _mm_min_epi8(lane, _mm_srli_si128::<8>(lane));
    lane = _mm_min_epi8(lane, _mm_srli_si128::<4>(lane));
    lane = _mm_min_epi8(lane, _mm_srli_si128::<2>(lane));
    lane = _mm_min_epi8(lane, _mm_srli_si128::<1>(lane));
    let min_raw = (_mm_cvtsi128_si32(lane) & 0xff) as u8 as i8;
    let splat = _mm256_set1_epi8(min_raw);
    let mut i = 0;
    while i < v.len() {
        let lanes = (v.len() - i).min(32);
        let mask = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(chunk(i, min_raw.wrapping_add(1)), splat))
            as u32
            & mask;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 32;
    }
    unreachable!("the minimum of a non-empty slice is present in it")
}

/// See [`crate::scalar::max_index_last_i8`]: the **last** maximum.
#[target_feature(enable = "avx2")]
pub fn max_index_last_i8(v: &[i8]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let chunk = |base: usize, pad: i8| -> __m256i {
        if v.len() - base >= 32 {
            load_bytes32(v[base..].as_ptr() as *const u8, true)
        } else {
            let mut buf = [pad; 32];
            buf[..v.len() - base].copy_from_slice(&v[base..]);
            load_bytes32(buf.as_ptr() as *const u8, true)
        }
    };
    let mut acc = _mm256_set1_epi8(i8::MIN);
    let mut i = 0;
    while i < v.len() {
        acc = _mm256_max_epi8(acc, chunk(i, i8::MIN));
        i += 32;
    }
    let mut lane = _mm_max_epi8(
        _mm256_castsi256_si128(acc),
        _mm256_extracti128_si256::<1>(acc),
    );
    lane = _mm_max_epi8(lane, _mm_srli_si128::<8>(lane));
    lane = _mm_max_epi8(lane, _mm_srli_si128::<4>(lane));
    lane = _mm_max_epi8(lane, _mm_srli_si128::<2>(lane));
    lane = _mm_max_epi8(lane, _mm_srli_si128::<1>(lane));
    let max_raw = (_mm_cvtsi128_si32(lane) & 0xff) as u8 as i8;
    let splat = _mm256_set1_epi8(max_raw);
    let mut base = (v.len() - 1) / 32 * 32;
    loop {
        let lanes = (v.len() - base).min(32);
        let mask = if lanes == 32 {
            u32::MAX
        } else {
            (1u32 << lanes) - 1
        };
        let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(
            chunk(base, max_raw.wrapping_add(1)),
            splat,
        )) as u32
            & mask;
        if m != 0 {
            return Some(base + (31 - m.leading_zeros()) as usize);
        }
        if base == 0 {
            unreachable!("the maximum of a non-empty slice is present in it");
        }
        base -= 32;
    }
}

/// See [`crate::scalar::min_index_u32`]: `vpminud` reduce + first-index
/// rescan.
#[target_feature(enable = "avx2")]
pub fn min_index_u32(v: &[u32]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let chunk = |base: usize, pad: u32| -> __m256i {
        if v.len() - base >= 8 {
            load_bytes32(v[base..].as_ptr() as *const u8, true)
        } else {
            let mut buf = [pad; 8];
            buf[..v.len() - base].copy_from_slice(&v[base..]);
            load_bytes32(buf.as_ptr() as *const u8, true)
        }
    };
    let mut acc = _mm256_set1_epi32(u32::MAX as i32);
    let mut i = 0;
    while i < v.len() {
        acc = _mm256_min_epu32(acc, chunk(i, u32::MAX));
        i += 8;
    }
    let mut lane = _mm_min_epu32(
        _mm256_castsi256_si128(acc),
        _mm256_extracti128_si256::<1>(acc),
    );
    lane = _mm_min_epu32(lane, _mm_srli_si128::<8>(lane));
    lane = _mm_min_epu32(lane, _mm_srli_si128::<4>(lane));
    let min = _mm_cvtsi128_si32(lane) as u32;
    let splat = _mm256_set1_epi32(min as i32);
    let mut i = 0;
    while i < v.len() {
        let lanes = (v.len() - i).min(8);
        let m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(
            chunk(i, min.wrapping_add(1)),
            splat,
        ))) as u32
            & ((1u32 << lanes) - 1);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 8;
    }
    unreachable!("the minimum of a non-empty slice is present in it")
}

/// See [`crate::scalar::find_valid_tag`].
#[target_feature(enable = "avx2")]
pub fn find_valid_tag(tags: &[u64], valid: &[bool], needle: u64) -> Option<usize> {
    let splat = _mm256_set1_epi64x(needle as i64);
    let mut i = 0;
    while i + 4 <= tags.len() {
        let eq = _mm256_cmpeq_epi64(load_u64x4(&tags[i..]), splat);
        let mut m = _mm256_movemask_epi8(eq) as u32;
        while m != 0 {
            let lane = m.trailing_zeros() as usize / 8;
            if valid[i + lane] {
                return Some(i + lane);
            }
            m &= !(0xffu32 << (lane * 8));
        }
        i += 4;
    }
    while i < tags.len() {
        if valid[i] && tags[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// See [`crate::scalar::victim_way`]. The SIMD part computes every way's
/// LRU key (`0` if invalid, else `lru + 1`) four ways at a time; the final
/// first-min scan over at most `ways` keys runs scalar.
#[target_feature(enable = "avx2")]
pub fn victim_way(valid: &[bool], lru: &[u64]) -> Option<usize> {
    const MAX_WAYS: usize = 64;
    let n = valid.len();
    if n == 0 {
        return None;
    }
    if n > MAX_WAYS {
        return crate::scalar::victim_way(valid, lru);
    }
    let one = _mm256_set1_epi64x(1);
    let zero = _mm256_setzero_si256();
    let mut keys = [u64::MAX; MAX_WAYS];
    let mut i = 0;
    while i + 4 <= n {
        // Widen the four valid bytes (0/1) to 64-bit lanes.
        let vb = _mm_set_epi32(
            0,
            0,
            0,
            i32::from_le_bytes([
                valid[i] as u8,
                valid[i + 1] as u8,
                valid[i + 2] as u8,
                valid[i + 3] as u8,
            ]),
        );
        let v64 = _mm256_cvtepu8_epi64(vb);
        let invalid = _mm256_cmpeq_epi64(v64, zero);
        let lrup1 = _mm256_add_epi64(load_u64x4(&lru[i..]), one);
        store_u64x4(&mut keys[i..], _mm256_andnot_si256(invalid, lrup1));
        i += 4;
    }
    while i < n {
        keys[i] = if valid[i] { lru[i].wrapping_add(1) } else { 0 };
        i += 1;
    }
    let mut best = 0usize;
    for (j, &k) in keys[..n].iter().enumerate() {
        if k < keys[best] {
            best = j;
        }
    }
    Some(best)
}

/// See [`crate::scalar::gather_i32`]: clamp indices with `vpminud`, then a
/// single `vpgatherdd` per eight lanes.
#[target_feature(enable = "avx2")]
pub fn gather_i32(table: &[i32], idxs: &[u32], out: &mut [i32]) {
    assert!(!table.is_empty());
    assert!(out.len() >= idxs.len());
    let last = _mm256_set1_epi32((table.len() - 1) as i32);
    let mut i = 0;
    while i + 8 <= idxs.len() {
        let raw = load_bytes32(idxs[i..].as_ptr() as *const u8, idxs.len() - i >= 8);
        let clamped = _mm256_min_epu32(raw, last);
        // semloc-lint: allow(unsafe-audit): every index lane was clamped to table.len()-1 above, so the gather reads in bounds
        let got = unsafe { _mm256_i32gather_epi32::<4>(table.as_ptr(), clamped) };
        // semloc-lint: allow(unsafe-audit): unaligned 32-byte write; out.len() >= idxs.len() is asserted and i + 8 <= idxs.len() holds here
        unsafe { _mm256_storeu_si256(out[i..].as_mut_ptr() as *mut __m256i, got) };
        i += 8;
    }
    let lastu = table.len() - 1;
    while i < idxs.len() {
        out[i] = table[(idxs[i] as usize).min(lastu)];
        i += 1;
    }
}

/// See [`crate::scalar::find_pair_i64`]: four candidate positions per
/// iteration via two shifted 64-bit equality compares.
#[target_feature(enable = "avx2")]
pub fn find_pair_i64(deltas: &[i64], d1: i64, d2: i64) -> Option<usize> {
    if deltas.len() < 3 {
        return None;
    }
    let s1 = _mm256_set1_epi64x(d1);
    let s2 = _mm256_set1_epi64x(d2);
    let cast = |v: &[i64]| -> &[u64] {
        // semloc-lint: allow(unsafe-audit): i64 and u64 have identical size, alignment and validity; length is preserved
        unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u64, v.len()) }
    };
    let mut i = 1;
    while i + 5 <= deltas.len() {
        let eq1 = _mm256_cmpeq_epi64(load_u64x4(cast(&deltas[i..])), s1);
        let eq2 = _mm256_cmpeq_epi64(load_u64x4(cast(&deltas[i + 1..])), s2);
        let m = _mm256_movemask_epi8(_mm256_and_si256(eq1, eq2)) as u32;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize / 8);
        }
        i += 4;
    }
    while i + 1 < deltas.len() {
        if deltas[i] == d1 && deltas[i + 1] == d2 {
            return Some(i);
        }
        i += 1;
    }
    None
}
