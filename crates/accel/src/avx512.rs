//! 512-bit AVX-512 implementations.
//!
//! Three things make this tier more than "AVX2 but wider". First, the
//! 64-lane scans the scored-set structures actually issue (`min_index_i8`
//! / `max_index_last_i8` over up to 64 scores) fit in a *single* 512-bit
//! vector. Second, per-lane mask registers replace the pad-buffer tail
//! handling of the narrower tiers: every kernel here loads its tail with
//! `maskz`/`mask` loads and compares under the same mask, so there are no
//! copy-to-stack padding loops at all. Third, AVX512DQ provides a native
//! packed 64-bit multiply (`vpmullq`), so the SplitMix64 finalizer no
//! longer needs the three-`vpmuludq` synthesis the AVX2 tier pays for.
//!
//! Every kernel is pinned bit-identical to [`crate::scalar`] by the
//! equivalence property suite (which iterates [`crate::available_tiers`],
//! so this tier joins automatically on hosts that support it).
//!
//! # Safety
//!
//! Every `pub fn` here carries `#[target_feature]` for the AVX-512 subset
//! it needs (F+BW+DQ+VL, the set [`crate::supported`] detects as a bundle),
//! so calling one from a context without those features statically enabled
//! is `unsafe`; the sole obligation is that the CPU actually supports them,
//! which [`crate::supported`] checks via `is_x86_feature_detected!` before
//! the dispatcher ever selects this tier. That shared contract is
//! documented here once rather than per function.

#![allow(unsafe_op_in_unsafe_fn)]
#![allow(clippy::missing_safety_doc)] // the uniform contract is in the module docs above

use std::arch::x86_64::*;

/// Mask with the low `lanes` bits set (`lanes` ≤ 64).
#[inline]
fn low_mask(lanes: usize) -> u64 {
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// Load up to eight `u64` lanes under `k`; masked-out lanes are zero.
#[inline]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn maskz_u64(k: __mmask8, p: *const u64) -> __m512i {
    // semloc-lint: allow(unsafe-audit): masked load touches only the lanes set in k, which callers derive from the slice's remaining length
    unsafe { _mm512_maskz_loadu_epi64(k, p as *const i64) }
}

/// SplitMix64 finalizer on all eight lanes (native `vpmullq`).
#[inline]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn splitmix8(mut x: __m512i) -> __m512i {
    let k1 = _mm512_set1_epi64(0xbf58_476d_1ce4_e5b9_u64 as i64);
    let k2 = _mm512_set1_epi64(0x94d0_49bb_1331_11eb_u64 as i64);
    x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), k1);
    x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), k2);
    _mm512_xor_si512(x, _mm512_srli_epi64(x, 31))
}

/// See [`crate::scalar::mix8`]: all eight lanes in one vector.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn mix8(x: &mut [u64; 8]) {
    // semloc-lint: allow(unsafe-audit): unaligned 64-byte read/write over exactly the 8-lane array
    unsafe {
        let v = splitmix8(_mm512_loadu_si512(x.as_ptr() as *const __m512i));
        _mm512_storeu_si512(x.as_mut_ptr() as *mut __m512i, v);
    }
}

/// See [`crate::scalar::find_i16`]: 32 lanes per compare, tails by mask.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn find_i16(hay: &[i16], needle: i16) -> Option<usize> {
    let splat = _mm512_set1_epi16(needle);
    let mut i = 0;
    while i < hay.len() {
        let lanes = (hay.len() - i).min(32);
        let k = low_mask(lanes) as __mmask32;
        // semloc-lint: allow(unsafe-audit): masked load touches only the `lanes` in-bounds elements selected by k
        let v = unsafe { _mm512_maskz_loadu_epi16(k, hay.as_ptr().add(i)) };
        let m = _mm512_mask_cmpeq_epi16_mask(k, v, splat);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 32;
    }
    None
}

/// See [`crate::scalar::find_u64`]: 8 lanes per compare.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn find_u64(hay: &[u64], needle: u64) -> Option<usize> {
    let splat = _mm512_set1_epi64(needle as i64);
    let mut i = 0;
    while i < hay.len() {
        let lanes = (hay.len() - i).min(8);
        let k = low_mask(lanes) as __mmask8;
        let m = _mm512_mask_cmpeq_epi64_mask(k, maskz_u64(k, hay.as_ptr().wrapping_add(i)), splat);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 8;
    }
    None
}

/// Horizontal minimum of all 64 `i8` lanes.
#[inline]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn hmin_i8(acc: __m512i) -> i8 {
    let mut lane = _mm_min_epi8(
        _mm256_castsi256_si128(_mm256_min_epi8(
            _mm512_extracti64x4_epi64::<0>(acc),
            _mm512_extracti64x4_epi64::<1>(acc),
        )),
        _mm256_extracti128_si256::<1>(_mm256_min_epi8(
            _mm512_extracti64x4_epi64::<0>(acc),
            _mm512_extracti64x4_epi64::<1>(acc),
        )),
    );
    lane = _mm_min_epi8(lane, _mm_srli_si128::<8>(lane));
    lane = _mm_min_epi8(lane, _mm_srli_si128::<4>(lane));
    lane = _mm_min_epi8(lane, _mm_srli_si128::<2>(lane));
    lane = _mm_min_epi8(lane, _mm_srli_si128::<1>(lane));
    (_mm_cvtsi128_si32(lane) & 0xff) as u8 as i8
}

/// Horizontal maximum of all 64 `i8` lanes.
#[inline]
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
fn hmax_i8(acc: __m512i) -> i8 {
    let half = _mm256_max_epi8(
        _mm512_extracti64x4_epi64::<0>(acc),
        _mm512_extracti64x4_epi64::<1>(acc),
    );
    let mut lane = _mm_max_epi8(
        _mm256_castsi256_si128(half),
        _mm256_extracti128_si256::<1>(half),
    );
    lane = _mm_max_epi8(lane, _mm_srli_si128::<8>(lane));
    lane = _mm_max_epi8(lane, _mm_srli_si128::<4>(lane));
    lane = _mm_max_epi8(lane, _mm_srli_si128::<2>(lane));
    lane = _mm_max_epi8(lane, _mm_srli_si128::<1>(lane));
    (_mm_cvtsi128_si32(lane) & 0xff) as u8 as i8
}

/// See [`crate::scalar::min_index_i8`]: one 64-lane vector covers the
/// whole scored set in the common case; min-reduce, then first-index
/// rescan of the winning value.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn min_index_i8(v: &[i8]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let pad = _mm512_set1_epi8(i8::MAX);
    let mut acc = pad;
    let mut i = 0;
    while i < v.len() {
        let k = low_mask((v.len() - i).min(64));
        // semloc-lint: allow(unsafe-audit): masked load touches only the in-bounds lanes selected by k; masked-out lanes take the pad value
        let c = unsafe { _mm512_mask_loadu_epi8(pad, k, v.as_ptr().add(i)) };
        acc = _mm512_min_epi8(acc, c);
        i += 64;
    }
    let splat = _mm512_set1_epi8(hmin_i8(acc));
    let mut i = 0;
    while i < v.len() {
        let k = low_mask((v.len() - i).min(64));
        // semloc-lint: allow(unsafe-audit): masked load touches only the in-bounds lanes selected by k
        let c = unsafe { _mm512_maskz_loadu_epi8(k, v.as_ptr().add(i)) };
        let m = _mm512_mask_cmpeq_epi8_mask(k, c, splat);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 64;
    }
    unreachable!("the minimum of a non-empty slice is present in it")
}

/// See [`crate::scalar::max_index_last_i8`]: the **last** maximum, found
/// by scanning chunks from the tail and taking the highest set mask bit.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn max_index_last_i8(v: &[i8]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let pad = _mm512_set1_epi8(i8::MIN);
    let mut acc = pad;
    let mut i = 0;
    while i < v.len() {
        let k = low_mask((v.len() - i).min(64));
        // semloc-lint: allow(unsafe-audit): masked load touches only the in-bounds lanes selected by k; masked-out lanes take the pad value
        let c = unsafe { _mm512_mask_loadu_epi8(pad, k, v.as_ptr().add(i)) };
        acc = _mm512_max_epi8(acc, c);
        i += 64;
    }
    let splat = _mm512_set1_epi8(hmax_i8(acc));
    let mut base = (v.len() - 1) / 64 * 64;
    loop {
        let k = low_mask((v.len() - base).min(64));
        // semloc-lint: allow(unsafe-audit): masked load touches only the in-bounds lanes selected by k
        let c = unsafe { _mm512_maskz_loadu_epi8(k, v.as_ptr().add(base)) };
        let m = _mm512_mask_cmpeq_epi8_mask(k, c, splat);
        if m != 0 {
            return Some(base + (63 - m.leading_zeros()) as usize);
        }
        if base == 0 {
            unreachable!("the maximum of a non-empty slice is present in it");
        }
        base -= 64;
    }
}

/// See [`crate::scalar::min_index_u32`]: 16-lane `vpminud` reduce +
/// first-index rescan.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn min_index_u32(v: &[u32]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let pad = _mm512_set1_epi32(u32::MAX as i32);
    let mut acc = pad;
    let mut i = 0;
    while i < v.len() {
        let k = low_mask((v.len() - i).min(16)) as __mmask16;
        // semloc-lint: allow(unsafe-audit): masked load touches only the in-bounds lanes selected by k; masked-out lanes take the pad value
        let c = unsafe { _mm512_mask_loadu_epi32(pad, k, v.as_ptr().add(i) as *const i32) };
        acc = _mm512_min_epu32(acc, c);
        i += 16;
    }
    let half = _mm256_min_epu32(
        _mm512_extracti64x4_epi64::<0>(acc),
        _mm512_extracti64x4_epi64::<1>(acc),
    );
    let mut lane = _mm_min_epu32(
        _mm256_castsi256_si128(half),
        _mm256_extracti128_si256::<1>(half),
    );
    lane = _mm_min_epu32(lane, _mm_srli_si128::<8>(lane));
    lane = _mm_min_epu32(lane, _mm_srli_si128::<4>(lane));
    let splat = _mm512_set1_epi32(_mm_cvtsi128_si32(lane));
    let mut i = 0;
    while i < v.len() {
        let k = low_mask((v.len() - i).min(16)) as __mmask16;
        // semloc-lint: allow(unsafe-audit): masked load touches only the in-bounds lanes selected by k
        let c = unsafe { _mm512_maskz_loadu_epi32(k, v.as_ptr().add(i) as *const i32) };
        let m = _mm512_mask_cmpeq_epi32_mask(k, c, splat);
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 16;
    }
    unreachable!("the minimum of a non-empty slice is present in it")
}

/// See [`crate::scalar::find_valid_tag`]: per-lane mask bits make the
/// valid check a bit-clear loop instead of byte arithmetic.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn find_valid_tag(tags: &[u64], valid: &[bool], needle: u64) -> Option<usize> {
    let splat = _mm512_set1_epi64(needle as i64);
    let mut i = 0;
    while i < tags.len() {
        let lanes = (tags.len() - i).min(8);
        let k = low_mask(lanes) as __mmask8;
        let mut m =
            _mm512_mask_cmpeq_epi64_mask(k, maskz_u64(k, tags.as_ptr().wrapping_add(i)), splat);
        while m != 0 {
            let lane = m.trailing_zeros() as usize;
            if valid[i + lane] {
                return Some(i + lane);
            }
            m &= m - 1; // clear the lowest set lane
        }
        i += 8;
    }
    None
}

/// See [`crate::scalar::victim_way`]. The valid bits become a lane mask
/// directly: `maskz_add` computes `lru + 1` in valid lanes and `0` in
/// invalid ones — no widening, no scratch compare. The final first-min
/// scan over at most `ways` keys runs scalar.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn victim_way(valid: &[bool], lru: &[u64]) -> Option<usize> {
    const MAX_WAYS: usize = 64;
    let n = valid.len();
    if n == 0 {
        return None;
    }
    if n > MAX_WAYS {
        return crate::scalar::victim_way(valid, lru);
    }
    let one = _mm512_set1_epi64(1);
    let mut keys = [u64::MAX; MAX_WAYS];
    let mut i = 0;
    while i < n {
        let lanes = (n - i).min(8);
        let k = low_mask(lanes) as __mmask8;
        let mut vm: __mmask8 = 0;
        for (j, &ok) in valid[i..i + lanes].iter().enumerate() {
            vm |= (ok as u8) << j;
        }
        let lruv = maskz_u64(k, lru.as_ptr().wrapping_add(i));
        let keysv = _mm512_maskz_add_epi64(vm, lruv, one);
        // semloc-lint: allow(unsafe-audit): masked store writes only the `lanes` in-bounds slots of the fixed-size keys array selected by k
        unsafe { _mm512_mask_storeu_epi64(keys.as_mut_ptr().add(i) as *mut i64, k, keysv) };
        i += 8;
    }
    let mut best = 0usize;
    for (j, &key) in keys[..n].iter().enumerate() {
        if key < keys[best] {
            best = j;
        }
    }
    Some(best)
}

/// See [`crate::scalar::gather_i32`]: clamp sixteen indices with
/// `vpminud`, then one masked `vpgatherdd` per chunk (the mask keeps
/// tail lanes from touching memory at all).
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn gather_i32(table: &[i32], idxs: &[u32], out: &mut [i32]) {
    assert!(!table.is_empty());
    assert!(out.len() >= idxs.len());
    let last = _mm512_set1_epi32((table.len() - 1) as i32);
    let zero = _mm512_setzero_si512();
    let mut i = 0;
    while i < idxs.len() {
        let lanes = (idxs.len() - i).min(16);
        let k = low_mask(lanes) as __mmask16;
        // semloc-lint: allow(unsafe-audit): masked load touches only the `lanes` in-bounds elements selected by k
        let raw = unsafe { _mm512_maskz_loadu_epi32(k, idxs.as_ptr().add(i) as *const i32) };
        let clamped = _mm512_min_epu32(raw, last);
        // semloc-lint: allow(unsafe-audit): every active index lane was clamped to table.len()-1, and masked-out lanes perform no memory access
        let got = unsafe { _mm512_mask_i32gather_epi32::<4>(zero, k, clamped, table.as_ptr()) };
        // semloc-lint: allow(unsafe-audit): masked store writes only the `lanes` in-bounds slots of `out` selected by k (out.len() >= idxs.len() is asserted)
        unsafe { _mm512_mask_storeu_epi32(out.as_mut_ptr().add(i), k, got) };
        i += 16;
    }
}

/// See [`crate::scalar::find_pair_i64`]: eight candidate positions per
/// iteration via two shifted 64-bit equality mask-compares.
#[target_feature(enable = "avx512f,avx512bw,avx512dq,avx512vl")]
pub fn find_pair_i64(deltas: &[i64], d1: i64, d2: i64) -> Option<usize> {
    if deltas.len() < 3 {
        return None;
    }
    let s1 = _mm512_set1_epi64(d1);
    let s2 = _mm512_set1_epi64(d2);
    let cast = |v: &[i64]| -> *const u64 { v.as_ptr() as *const u64 };
    let mut i = 1;
    while i + 1 < deltas.len() {
        let lanes = (deltas.len() - 1 - i).min(8);
        let k = low_mask(lanes) as __mmask8;
        let a = _mm512_mask_cmpeq_epi64_mask(k, maskz_u64(k, cast(&deltas[i..])), s1);
        let b = _mm512_mask_cmpeq_epi64_mask(k, maskz_u64(k, cast(&deltas[i + 1..])), s2);
        let m = a & b;
        if m != 0 {
            return Some(i + m.trailing_zeros() as usize);
        }
        i += 8;
    }
    None
}
