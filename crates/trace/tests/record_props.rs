//! Property tests over the trace encodings: the `SEMLOC02` stream format
//! (`record.rs`) and the struct-of-arrays [`TraceBuffer`] must round-trip
//! every [`InstrKind`] variant — including absent registers and
//! `SemanticHints` edge values — bit-exactly, and the reader must reject
//! malformed inputs (bad magic, truncation, count mismatch) cleanly.

use std::io::ErrorKind;

use proptest::prelude::*;

use semloc_trace::{
    Instr, InstrKind, RecordingSink, RefForm, Reg, SemanticHints, TraceBuffer, TraceReader,
    TraceSink, TraceWriter,
};

/// Build one instruction from raw entropy, covering every variant and the
/// interesting boundary values (absent registers, zero/huge results,
/// hint fields at their packed-format limits, negative PC/address motion).
fn instr_from(raw: (u64, u64, u64, u64)) -> Instr {
    let (sel, pc_bits, addr_bits, misc) = raw;
    let pc = match sel >> 8 & 0b11 {
        0 => pc_bits,                  // anywhere in the address space
        1 => pc_bits % 0x10_000,       // low, loop-like
        2 => u64::MAX - (pc_bits % 9), // wraparound deltas
        _ => 0,
    };
    let reg = |bits: u64, present: u64| (present & 1 == 1).then_some(Reg((bits % 32) as u8));
    let result = match sel >> 12 & 0b11 {
        0 => 0,
        1 => u64::MAX,
        _ => misc,
    };
    let hints = (sel >> 16 & 1 == 1).then(|| {
        let mut h = SemanticHints {
            type_id: match sel >> 20 & 0b11 {
                0 => 0,
                1 => u16::MAX,
                _ => (misc >> 16) as u16,
            },
            // pack() keeps 14 bits of link_offset; stay in-range so the
            // round-trip is exact (the mask is its own unit-tested
            // behaviour).
            link_offset: match sel >> 24 & 0b11 {
                0 => 0,
                1 => 0x3fff,
                _ => (misc % 0x4000) as u16,
            },
            ref_form: RefForm::ALL[(sel >> 28 & 0b11) as usize],
        };
        // The all-ones packing is SEMLOC02's "no hints" sentinel (see
        // `reserved_hint_packing_decodes_as_none`); representable hints
        // must avoid it.
        if h.pack() == u32::MAX {
            h.link_offset = 0;
        }
        h
    });
    let size = 1u8 << (sel >> 4 & 0b11); // 1/2/4/8 bytes
    match sel % 5 {
        0 => Instr {
            pc,
            kind: InstrKind::Alu {
                latency: (misc as u32) % 64 + 1,
            },
            src1: reg(misc, sel >> 32),
            src2: reg(misc >> 8, sel >> 33),
            dst: reg(misc >> 16, sel >> 34),
            result,
        },
        1 => Instr {
            pc,
            kind: InstrKind::Load {
                addr: addr_bits,
                size,
                hints,
            },
            src1: reg(misc, sel >> 32),
            src2: None,
            dst: reg(misc >> 16, sel >> 34),
            result,
        },
        2 => Instr {
            pc,
            kind: InstrKind::Store {
                addr: addr_bits,
                size,
            },
            src1: reg(misc, sel >> 32),
            src2: reg(misc >> 8, sel >> 33),
            dst: None,
            result,
        },
        3 => Instr {
            pc,
            kind: InstrKind::Branch {
                taken: sel >> 40 & 1 == 1,
                target: addr_bits,
            },
            src1: reg(misc, sel >> 32),
            src2: None,
            dst: None,
            result,
        },
        _ => Instr {
            pc,
            kind: InstrKind::Nop,
            src1: None,
            src2: None,
            dst: None,
            result,
        },
    }
}

fn encode(instrs: &[Instr]) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new(), 0).expect("vec write");
    for &i in instrs {
        w.instr(i);
    }
    w.finish().expect("vec write")
}

proptest! {
    /// SEMLOC02 round-trips arbitrary streams field-for-field.
    #[test]
    fn semloc_format_roundtrips(raws in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..200))
    {
        let instrs: Vec<Instr> = raws.into_iter().map(instr_from).collect();
        let bytes = encode(&instrs);
        let mut sink = RecordingSink::new();
        let n = TraceReader::new(&bytes[..]).expect("valid header")
            .replay(&mut sink).expect("valid stream");
        prop_assert_eq!(n, instrs.len() as u64);
        prop_assert_eq!(sink.instrs(), instrs.as_slice());
    }

    /// The SoA buffer round-trips the same streams, and converting through
    /// the SEMLOC02 format preserves them too.
    #[test]
    fn trace_buffer_roundtrips(raws in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..200))
    {
        let instrs: Vec<Instr> = raws.into_iter().map(instr_from).collect();
        let mut buf = TraceBuffer::new();
        for i in &instrs {
            buf.push(i);
        }
        prop_assert_eq!(buf.len(), instrs.len());
        prop_assert_eq!(buf.iter().collect::<Vec<_>>(), instrs.clone());

        let mut bytes = Vec::new();
        buf.write_semloc(&mut bytes).expect("vec write");
        let back = TraceBuffer::read_semloc(&bytes[..]).expect("own output");
        prop_assert_eq!(back.iter().collect::<Vec<_>>(), instrs);
    }

    /// Truncating a valid stream anywhere inside the payload fails cleanly
    /// (an I/O or data error — never a panic, never silent success).
    #[test]
    fn truncation_is_detected(raws in proptest::collection::vec(
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..40),
        cut in any::<u64>())
    {
        let instrs: Vec<Instr> = raws.into_iter().map(instr_from).collect();
        let bytes = encode(&instrs);
        // Cut somewhere after the header but before the final trailer byte.
        let cut = 8 + (cut as usize) % (bytes.len() - 8 - 1);
        let mut sink = RecordingSink::new();
        let res = TraceReader::new(&bytes[..cut]).and_then(|mut r| r.replay(&mut sink));
        prop_assert!(res.is_err(), "truncation at {cut}/{} must error", bytes.len());
    }
}

#[test]
fn bad_magic_is_invalid_data() {
    for junk in [
        &b"SEMLOC00"[..],
        &b"\0\0\0\0\0\0\0\0"[..],
        &b"SEMLOC02"[..8 - 1],
    ] {
        let err = TraceReader::new(junk).unwrap_err();
        assert!(
            err.kind() == ErrorKind::InvalidData || err.kind() == ErrorKind::UnexpectedEof,
            "got {err:?}"
        );
    }
}

#[test]
fn trailer_count_mismatch_is_invalid_data() {
    let instrs: Vec<Instr> = (0..5u64)
        .map(|i| instr_from((i, i * 8, i * 64, i)))
        .collect();
    let mut bytes = encode(&instrs);
    // The trailer is MAX marker + little-endian count + checksum: the
    // count's low byte sits 16 bytes from the end. Tamper it.
    let n = bytes.len();
    bytes[n - 16] = bytes[n - 16].wrapping_add(1);
    let mut sink = RecordingSink::new();
    let err = TraceReader::new(&bytes[..])
        .unwrap()
        .replay(&mut sink)
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("count mismatch"), "got {err}");
}

#[test]
fn unknown_record_kind_is_invalid_data() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"SEMLOC02");
    bytes.push(0x7b); // neither a kind tag nor the trailer marker
    let err = TraceReader::new(&bytes[..])
        .unwrap()
        .next_instr()
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidData);
    assert!(err.to_string().contains("bad record kind"), "got {err}");
}

#[test]
fn reserved_hint_packing_decodes_as_none() {
    // SEMLOC02 encodes "no hints" as an all-ones u32; the one hint value
    // that packs to the same bits (type 0xffff, link 0x3fff, Index) is
    // therefore unrepresentable in the stream format and reads back as
    // `None`. The SoA `TraceBuffer` uses a presence flag instead and
    // round-trips it exactly.
    let edge = SemanticHints {
        type_id: u16::MAX,
        link_offset: 0x3fff,
        ref_form: RefForm::Index,
    };
    assert_eq!(edge.pack(), u32::MAX);
    let i = Instr::load(0x400, 0x1000, 8, Reg(1), None, Some(edge), 7);

    let bytes = encode(&[i]);
    let mut sink = RecordingSink::new();
    TraceReader::new(&bytes[..])
        .unwrap()
        .replay(&mut sink)
        .unwrap();
    match sink.instrs()[0].kind {
        InstrKind::Load { hints, .. } => assert_eq!(hints, None, "sentinel collision"),
        _ => unreachable!(),
    }

    let mut buf = TraceBuffer::new();
    buf.push(&i);
    assert_eq!(buf.iter().next().unwrap(), i, "SoA buffer is exact");
}

#[test]
fn empty_trace_roundtrips() {
    let bytes = encode(&[]);
    let mut sink = RecordingSink::new();
    let n = TraceReader::new(&bytes[..])
        .unwrap()
        .replay(&mut sink)
        .unwrap();
    assert_eq!(n, 0);
    assert!(sink.instrs().is_empty());
    assert!(TraceBuffer::read_semloc(&bytes[..]).unwrap().is_empty());
}
