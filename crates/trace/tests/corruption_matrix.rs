//! Exhaustive corruption matrix for the `SEMLOC02` encoding: every
//! single-bit mutation of every byte of a valid serialized trace must
//! either fail to parse with a typed `io::Error` or — were the format ever
//! to grow don't-care bytes — decode to a buffer whose canonical re-encode
//! reproduces the mutated bytes exactly. Nothing may parse into a
//! *different* instruction stream, and nothing may panic.
//!
//! With the trailer checksum in place the expectation is strict: the FNV-1a
//! fold step is bijective in each input byte, so *every* mutation below is
//! rejected; the matrix pins that at 100% and will start failing the
//! moment a byte stops being covered.

use proptest::prelude::*;

use semloc_trace::{BufferSink, Instr, Reg, SemanticHints, TraceBuffer, TraceSink};

/// A small but representative trace: loads/stores with and without
/// registers and hints, ALU ops, branches, wraparound addresses.
fn valid_bytes() -> Vec<u8> {
    let mut sink = BufferSink::with_limit(0);
    for i in 0..40u64 {
        let pc = 0x400000 + i * 4;
        match i % 5 {
            0 => sink.instr(Instr::load(
                pc,
                0x10_0000 + i * 64,
                8,
                Reg((i % 30) as u8),
                Some(Reg(((i + 7) % 30) as u8)),
                None,
                i.wrapping_mul(0x9e37_79b9),
            )),
            1 => sink.instr(Instr::store(
                pc,
                u64::MAX - i * 8,
                4,
                Some(Reg(2)),
                Some(Reg(3)),
            )),
            2 => sink.instr(Instr::alu(pc, Some(Reg(4)), None, Some(Reg(5)), i)),
            3 => sink.instr(Instr::load(
                pc,
                0x20_0000 + i * 96,
                8,
                Reg(6),
                Some(Reg(1)),
                Some(SemanticHints {
                    type_id: (i % 7) as u16,
                    link_offset: (i % 48) as u16,
                    ref_form: semloc_trace::RefForm::Arrow,
                }),
                i,
            )),
            _ => sink.instr(Instr::branch(pc, i % 3 == 0, pc + 8, Some(Reg(9)))),
        }
    }
    let buf = sink.into_buffer();
    let mut bytes = Vec::new();
    buf.write_semloc(&mut bytes).unwrap();
    bytes
}

/// Decode every instruction (forcing full trailer validation) or report
/// the typed error.
fn parse(bytes: &[u8]) -> std::io::Result<TraceBuffer> {
    TraceBuffer::read_semloc(bytes)
}

#[test]
fn every_single_bit_mutation_is_rejected_or_canonical() {
    let clean = valid_bytes();
    // Sanity: the unmutated bytes round-trip.
    let round = {
        let buf = parse(&clean).expect("clean trace must parse");
        let mut out = Vec::new();
        buf.write_semloc(&mut out).unwrap();
        out
    };
    assert_eq!(round, clean, "canonical re-encode must be stable");

    let mut rejected = 0u64;
    let mut canonical = 0u64;
    for i in 0..clean.len() {
        for bit in 0..8 {
            let mut mutated = clean.clone();
            mutated[i] ^= 1 << bit;
            match parse(&mutated) {
                Err(_) => rejected += 1,
                Ok(buf) => {
                    // The only acceptable parse is one that owns every
                    // mutated byte: re-encoding must reproduce them.
                    let mut out = Vec::new();
                    buf.write_semloc(&mut out).unwrap();
                    assert_eq!(
                        out, mutated,
                        "byte {i} bit {bit}: mutation parsed into a stream \
                         that re-encodes differently — silent corruption"
                    );
                    canonical += 1;
                }
            }
        }
    }
    let total = (clean.len() * 8) as u64;
    assert_eq!(rejected + canonical, total);
    // The checksum covers every byte (magic, payload, trailer), so today
    // the matrix must be 100% rejection. If this assertion fires after an
    // intentional format change, some byte is no longer validated — decide
    // deliberately whether that's acceptable before relaxing it.
    assert_eq!(
        canonical, 0,
        "{canonical}/{total} mutations parsed; every byte should be \
         checksum-protected"
    );
}

proptest! {
    #[test]
    fn multi_byte_corruption_never_parses_silently(
        seed in any::<u64>(),
        hits in 1usize..6,
    ) {
        let clean = valid_bytes();
        let mut mutated = clean.clone();
        let mut state = seed | 1;
        for _ in 0..hits {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = (state >> 16) as usize % mutated.len();
            let bit = (state >> 8) as u8 % 8;
            mutated[i] ^= 1 << bit;
        }
        if mutated == clean {
            // An even number of hits on the same bit can cancel out.
            prop_assert!(parse(&mutated).is_ok());
        } else {
            prop_assert!(
                parse(&mutated).is_err(),
                "corrupted trace parsed successfully"
            );
        }
    }

    #[test]
    fn random_prefixes_never_parse_as_nonempty_traces(len in 0usize..200) {
        // Arbitrary garbage (including short prefixes of valid data) must
        // never yield instructions.
        let clean = valid_bytes();
        let prefix = &clean[..len.min(clean.len() - 1)];
        prop_assert!(parse(prefix).is_err(), "truncated prefix parsed");
    }
}
