//! ISA-agnostic instruction records.
//!
//! Workloads emit a stream of [`Instr`] values; the out-of-order core model
//! consumes them. The record carries just enough microarchitectural detail
//! for a trace-driven timing model: program counter, register dependencies,
//! an operation class with its latency or memory address, and — for loads
//! that the instrumented compiler recognized — [`SemanticHints`].

use crate::hints::SemanticHints;
use crate::Addr;

/// An architectural register name. The simulated ISA has 32 general
/// registers, mirroring x86-64's 16 GPRs plus renaming headroom for the
/// workload generators.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// Returns the register index, panicking in debug builds if it is out of
    /// range.
    #[inline]
    pub fn index(self) -> usize {
        debug_assert!((self.0 as usize) < Self::COUNT, "register out of range");
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The operation class of an instruction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum InstrKind {
    /// A register-to-register computation with the given execute latency in
    /// cycles (1 for simple integer ops, more for mul/div/fp).
    Alu {
        /// Execute latency in cycles (≥ 1).
        latency: u32,
    },
    /// A data-cache load.
    Load {
        /// Virtual address accessed.
        addr: Addr,
        /// Access size in bytes.
        size: u8,
        /// Compiler-injected semantic hints, when the access is a
        /// pointer-typed load the instrumentation recognized.
        hints: Option<SemanticHints>,
    },
    /// A data-cache store.
    Store {
        /// Virtual address accessed.
        addr: Addr,
        /// Access size in bytes.
        size: u8,
    },
    /// A conditional or unconditional control transfer.
    Branch {
        /// Whether the branch was taken (drives the branch-history context
        /// attribute and the branch predictor model).
        taken: bool,
        /// Target address (used only for predictor indexing).
        target: Addr,
    },
    /// A no-op (also models the hint-carrying extended NOPs of the paper
    /// when counting instruction overhead).
    Nop,
}

/// A single dynamic instruction in a trace.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Instr {
    /// Program counter of the instruction. Workloads assign stable PCs per
    /// static code site so PC-indexed predictors behave realistically.
    pub pc: Addr,
    /// Operation class and operands.
    pub kind: InstrKind,
    /// First source register, if any.
    pub src1: Option<Reg>,
    /// Second source register, if any.
    pub src2: Option<Reg>,
    /// Destination register, if any.
    pub dst: Option<Reg>,
    /// The architectural value written to `dst` (for loads: the loaded
    /// value, e.g. the pointer to the next node). Zero when meaningless.
    /// This feeds the "data stored in general registers" and "previously
    /// loaded data" context attributes of Table 1.
    pub result: u64,
}

impl Instr {
    /// A 1-cycle ALU op `dst <- f(src1, src2)` producing `result`.
    pub fn alu(
        pc: Addr,
        dst: Option<Reg>,
        src1: Option<Reg>,
        src2: Option<Reg>,
        result: u64,
    ) -> Self {
        Instr {
            pc,
            kind: InstrKind::Alu { latency: 1 },
            src1,
            src2,
            dst,
            result,
        }
    }

    /// A load of `size` bytes at `addr` into `dst`, producing `result`.
    pub fn load(
        pc: Addr,
        addr: Addr,
        size: u8,
        dst: Reg,
        addr_src: Option<Reg>,
        hints: Option<SemanticHints>,
        result: u64,
    ) -> Self {
        Instr {
            pc,
            kind: InstrKind::Load { addr, size, hints },
            src1: addr_src,
            src2: None,
            dst: Some(dst),
            result,
        }
    }

    /// A store of `size` bytes at `addr` whose data comes from `data_src`.
    pub fn store(
        pc: Addr,
        addr: Addr,
        size: u8,
        addr_src: Option<Reg>,
        data_src: Option<Reg>,
    ) -> Self {
        Instr {
            pc,
            kind: InstrKind::Store { addr, size },
            src1: addr_src,
            src2: data_src,
            dst: None,
            result: 0,
        }
    }

    /// A branch at `pc` to `target`, with the given resolved direction,
    /// conditioned on `cond_src`.
    pub fn branch(pc: Addr, taken: bool, target: Addr, cond_src: Option<Reg>) -> Self {
        Instr {
            pc,
            kind: InstrKind::Branch { taken, target },
            src1: cond_src,
            src2: None,
            dst: None,
            result: 0,
        }
    }

    /// A no-op at `pc`.
    pub fn nop(pc: Addr) -> Self {
        Instr {
            pc,
            kind: InstrKind::Nop,
            src1: None,
            src2: None,
            dst: None,
            result: 0,
        }
    }

    /// Whether this instruction accesses data memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InstrKind::Load { .. } | InstrKind::Store { .. })
    }

    /// The data address accessed, if this is a memory operation.
    #[inline]
    pub fn mem_addr(&self) -> Option<Addr> {
        match self.kind {
            InstrKind::Load { addr, .. } | InstrKind::Store { addr, .. } => Some(addr),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_classify_memory_ops() {
        let l = Instr::load(0x10, 0x1000, 8, Reg(1), None, None, 7);
        let s = Instr::store(0x18, 0x1008, 8, Some(Reg(1)), Some(Reg(2)));
        let a = Instr::alu(0x20, Some(Reg(3)), Some(Reg(1)), None, 0);
        let b = Instr::branch(0x28, true, 0x10, Some(Reg(3)));
        assert!(l.is_mem() && s.is_mem());
        assert!(!a.is_mem() && !b.is_mem());
        assert_eq!(l.mem_addr(), Some(0x1000));
        assert_eq!(s.mem_addr(), Some(0x1008));
        assert_eq!(a.mem_addr(), None);
    }

    #[test]
    fn load_records_result_and_dst() {
        let l = Instr::load(0x10, 0x1000, 8, Reg(4), Some(Reg(5)), None, 0xdead);
        assert_eq!(l.dst, Some(Reg(4)));
        assert_eq!(l.src1, Some(Reg(5)));
        assert_eq!(l.result, 0xdead);
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(7).to_string(), "r7");
    }
}
