//! Per-access machine context (Table 1 of the paper).
//!
//! The prefetcher observes, for every demand memory access, a snapshot of
//! the hardware attributes the CPU can capture plus the software attributes
//! injected by the compiler. [`AccessContext`] is that snapshot; it is
//! assembled by the core model at load/store issue and handed to whichever
//! prefetcher is attached to the L1.

use crate::hints::SemanticHints;
use crate::{Addr, Seq};

/// Number of recent memory-access block addresses carried in the context.
/// The paper notes address history "must be used sparingly" to avoid overly
/// localized learning; four is enough for delta features.
pub const RECENT_ADDRS: usize = 4;

/// The machine/program state snapshot accompanying one demand access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessContext {
    /// Position of this access in the demand memory-access stream (the unit
    /// in which prefetch distance and reward depth are measured).
    pub seq: Seq,
    /// Program counter of the memory instruction.
    pub pc: Addr,
    /// Virtual address accessed.
    pub addr: Addr,
    /// Whether the access is a store.
    pub is_write: bool,
    /// Global branch history register (last 16 branch outcomes, newest in
    /// bit 0).
    pub branch_history: u16,
    /// Block addresses of the most recent demand accesses, newest first.
    pub recent_addrs: [Addr; RECENT_ADDRS],
    /// Value of the first source register of the access (e.g. the base
    /// pointer, or a key being searched).
    pub reg1: u64,
    /// Value of the second source register of the access.
    pub reg2: u64,
    /// The most recently loaded data value (globally).
    pub last_loaded: u64,
    /// Compiler-injected semantic hints, when present.
    pub hints: Option<SemanticHints>,
}

impl AccessContext {
    /// A context with every attribute zeroed except the address/PC — handy
    /// for tests and for prefetchers that only use spatio-temporal state.
    pub fn bare(seq: Seq, pc: Addr, addr: Addr, is_write: bool) -> Self {
        AccessContext {
            seq,
            pc,
            addr,
            is_write,
            branch_history: 0,
            recent_addrs: [0; RECENT_ADDRS],
            reg1: 0,
            reg2: 0,
            last_loaded: 0,
            hints: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_context_zeroes_attributes() {
        let c = AccessContext::bare(3, 0x400, 0x1000, false);
        assert_eq!(c.seq, 3);
        assert_eq!(c.pc, 0x400);
        assert_eq!(c.addr, 0x1000);
        assert!(!c.is_write);
        assert_eq!(c.branch_history, 0);
        assert_eq!(c.recent_addrs, [0; RECENT_ADDRS]);
        assert!(c.hints.is_none());
    }
}
