//! Compact binary trace recording and replay.
//!
//! Workloads are deterministic, so traces usually need no storage — but
//! persisting a trace is useful for cross-tool comparison, for debugging a
//! specific interval, and for driving the simulator from traces produced
//! elsewhere. The format is a dense little-endian encoding, roughly 20–30
//! bytes per instruction, with a magic header and a trailer carrying both
//! the instruction count and an FNV-1a checksum of every record byte for
//! integrity checking: any corruption of the payload is detected at the
//! trailer, not silently replayed.

use std::io::{self, Read, Write};

use crate::hints::SemanticHints;
use crate::instr::{Instr, InstrKind, Reg};
use crate::sink::TraceSink;

const MAGIC: &[u8; 8] = b"SEMLOC02";

const K_ALU: u8 = 0;
const K_LOAD: u8 = 1;
const K_STORE: u8 = 2;
const K_BRANCH: u8 = 3;
const K_NOP: u8 = 4;

/// FNV-1a offset basis; the checksum accumulator starts here.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

/// Fold `bytes` into an FNV-1a accumulator. Every step is a bijection of
/// the accumulator state, so two streams differing in any byte keep
/// differing hashes no matter what identical suffix follows.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn reg_byte(r: Option<Reg>) -> u8 {
    r.map_or(u8::MAX, |r| r.0)
}

/// A [`TraceSink`] that serializes every instruction to a writer.
///
/// ```rust
/// use semloc_trace::{Instr, RecordingSink, Reg, TraceReader, TraceSink, TraceWriter};
///
/// # fn main() -> std::io::Result<()> {
/// let mut writer = TraceWriter::new(Vec::new(), 0)?;
/// writer.instr(Instr::load(0x400, 0x1000, 8, Reg(1), None, None, 7));
/// let bytes = writer.finish()?;
///
/// let mut replayed = RecordingSink::new();
/// TraceReader::new(&bytes[..])?.replay(&mut replayed)?;
/// assert_eq!(replayed.instrs().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    count: u64,
    limit: u64,
    hash: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace on `out`, recording at most `limit` instructions
    /// (0 = unbounded). Writes the header immediately.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the header.
    pub fn new(mut out: W, limit: u64) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        // Count placeholder is not rewritten (streams may not seek); the
        // count lives in the trailer instead.
        Ok(TraceWriter {
            out,
            count: 0,
            limit,
            hash: FNV_OFFSET,
        })
    }

    /// Instructions recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finish the trace: writes the trailer (kind marker + count +
    /// record checksum) and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the trailer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(&[u8::MAX])?;
        self.out.write_all(&self.count.to_le_bytes())?;
        self.out.write_all(&self.hash.to_le_bytes())?;
        Ok(self.out)
    }

    /// Write record bytes, folding them into the running checksum.
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.out.write_all(bytes)?;
        self.hash = fnv1a(self.hash, bytes);
        Ok(())
    }

    fn encode(&mut self, i: &Instr) -> io::Result<()> {
        match i.kind {
            InstrKind::Alu { latency } => {
                self.put(&[K_ALU])?;
                self.put(&latency.to_le_bytes())?;
            }
            InstrKind::Load { addr, size, hints } => {
                self.put(&[K_LOAD])?;
                self.put(&addr.to_le_bytes())?;
                self.put(&[size])?;
                let packed = hints.map_or(u32::MAX, |h| h.pack());
                self.put(&packed.to_le_bytes())?;
            }
            InstrKind::Store { addr, size } => {
                self.put(&[K_STORE])?;
                self.put(&addr.to_le_bytes())?;
                self.put(&[size])?;
            }
            InstrKind::Branch { taken, target } => {
                self.put(&[K_BRANCH, taken as u8])?;
                self.put(&target.to_le_bytes())?;
            }
            InstrKind::Nop => self.put(&[K_NOP])?,
        }
        self.put(&i.pc.to_le_bytes())?;
        self.put(&[reg_byte(i.src1), reg_byte(i.src2), reg_byte(i.dst)])?;
        self.put(&i.result.to_le_bytes())?;
        Ok(())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn instr(&mut self, instr: Instr) {
        if self.done() {
            return;
        }
        // An I/O failure mid-trace poisons the writer by saturating the
        // limit; `finish` will still report the true count.
        if self.encode(&instr).is_err() {
            self.limit = self.count.max(1);
            return;
        }
        self.count += 1;
    }

    fn done(&self) -> bool {
        self.limit != 0 && self.count >= self.limit
    }
}

/// Reads a trace produced by [`TraceWriter`] and replays it into any sink.
///
/// The trailer's count and checksum are validated when the reader reaches
/// it; consumers that stop early (a sink reporting `done()`) deliberately
/// skip that validation, since they never observe the unread tail.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    replayed: u64,
    hash: u64,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic header does not match, or any
    /// underlying I/O error.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a semloc trace",
            ));
        }
        Ok(TraceReader {
            input,
            replayed: 0,
            hash: FNV_OFFSET,
        })
    }

    /// Read record bytes, folding them into the running checksum.
    fn fill(&mut self, buf: &mut [u8]) -> io::Result<()> {
        self.input.read_exact(buf)?;
        self.hash = fnv1a(self.hash, buf);
        Ok(())
    }

    fn byte_h(&mut self) -> io::Result<u8> {
        let mut b = [0u8; 1];
        self.fill(&mut b)?;
        Ok(b[0])
    }

    fn u32_h(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.fill(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64_h(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.fill(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn reg_h(&mut self) -> io::Result<Option<Reg>> {
        let b = self.byte_h()?;
        Ok((b != u8::MAX).then_some(Reg(b)))
    }

    /// Read a trailer field (not part of the checksummed payload).
    fn trailer_u64(&mut self) -> io::Result<u64> {
        let mut b = [0u8; 8];
        self.input.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Read the next instruction, or `None` at the (validated) trailer.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a malformed record, or a count or checksum
    /// mismatch at the trailer.
    pub fn next_instr(&mut self) -> io::Result<Option<Instr>> {
        let mut kind = [0u8; 1];
        self.input.read_exact(&mut kind)?;
        if kind[0] == u8::MAX {
            let count = self.trailer_u64()?;
            if count != self.replayed {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "trace count mismatch: trailer {count}, read {}",
                        self.replayed
                    ),
                ));
            }
            let checksum = self.trailer_u64()?;
            if checksum != self.hash {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "trace checksum mismatch: trailer {checksum:#018x}, computed {:#018x}",
                        self.hash
                    ),
                ));
            }
            return Ok(None);
        }
        self.hash = fnv1a(self.hash, &kind);
        let kind = match kind[0] {
            K_ALU => InstrKind::Alu {
                latency: self.u32_h()?,
            },
            K_LOAD => {
                let addr = self.u64_h()?;
                let size = self.byte_h()?;
                let packed = self.u32_h()?;
                let hints = (packed != u32::MAX).then(|| SemanticHints::unpack(packed));
                InstrKind::Load { addr, size, hints }
            }
            K_STORE => InstrKind::Store {
                addr: self.u64_h()?,
                size: self.byte_h()?,
            },
            K_BRANCH => InstrKind::Branch {
                taken: self.byte_h()? != 0,
                target: self.u64_h()?,
            },
            K_NOP => InstrKind::Nop,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad record kind {other}"),
                ));
            }
        };
        let pc = self.u64_h()?;
        let src1 = self.reg_h()?;
        let src2 = self.reg_h()?;
        let dst = self.reg_h()?;
        let result = self.u64_h()?;
        self.replayed += 1;
        Ok(Some(Instr {
            pc,
            kind,
            src1,
            src2,
            dst,
            result,
        }))
    }

    /// Replay the whole trace into `sink` (stops early if the sink is
    /// done). Returns the number of instructions replayed.
    ///
    /// # Errors
    ///
    /// Returns any decoding error.
    pub fn replay(&mut self, sink: &mut dyn TraceSink) -> io::Result<u64> {
        let mut n = 0;
        while let Some(i) = self.next_instr()? {
            if sink.done() {
                break;
            }
            sink.instr(i);
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::load(
                0x400,
                0x1234,
                8,
                Reg(3),
                Some(Reg(1)),
                Some(SemanticHints::link(7, 16)),
                0xAB,
            ),
            Instr::alu(0x408, Some(Reg(4)), Some(Reg(3)), None, 99),
            Instr::store(0x410, 0x5678, 8, Some(Reg(4)), Some(Reg(3))),
            Instr::branch(0x418, true, 0x400, Some(Reg(4))),
            Instr::nop(0x420),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for i in sample() {
            w.instr(i);
        }
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut sink = RecordingSink::new();
        let n = r.replay(&mut sink).unwrap();
        assert_eq!(n, 5);
        assert_eq!(sink.instrs(), sample().as_slice());
    }

    #[test]
    fn writer_honours_limit() {
        let mut w = TraceWriter::new(Vec::new(), 2).unwrap();
        for i in sample() {
            w.instr(i);
        }
        assert_eq!(w.count(), 2);
        assert!(w.done());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // The previous format revision is rejected the same way: the
        // checksum trailer changed the stream layout, so SEMLOC01 files
        // must regenerate rather than misparse.
        let err = TraceReader::new(&b"SEMLOC01rest"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_trace_fails_cleanly() {
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for i in sample() {
            w.instr(i);
        }
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 3);
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut sink = RecordingSink::new();
        assert!(r.replay(&mut sink).is_err());
    }

    #[test]
    fn payload_corruption_fails_checksum() {
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for i in sample() {
            w.instr(i);
        }
        let mut bytes = w.finish().unwrap();
        // Flip one bit inside the first record's result field — a spot
        // that stays structurally valid, so only the checksum catches it.
        bytes[8 + 14 + 8 + 3] ^= 0x10;
        let mut sink = RecordingSink::new();
        let err = TraceReader::new(&bytes[..])
            .unwrap()
            .replay(&mut sink)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "got {err}");
    }

    #[test]
    fn workload_scale_roundtrip() {
        // A larger pseudo-random trace survives the roundtrip byte-exactly.
        let mut instrs = Vec::new();
        let mut state = 1u64;
        for i in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            instrs.push(match state % 4 {
                0 => Instr::load(
                    i * 8,
                    state % (1 << 30),
                    8,
                    Reg((state % 32) as u8),
                    None,
                    None,
                    state,
                ),
                1 => Instr::alu(i * 8, Some(Reg((state % 32) as u8)), None, None, state),
                2 => Instr::store(i * 8, state % (1 << 30), 8, None, None),
                _ => Instr::branch(i * 8, state & 8 != 0, state % (1 << 20), None),
            });
        }
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for &i in &instrs {
            w.instr(i);
        }
        let bytes = w.finish().unwrap();
        let mut sink = RecordingSink::new();
        TraceReader::new(&bytes[..])
            .unwrap()
            .replay(&mut sink)
            .unwrap();
        assert_eq!(sink.instrs(), instrs.as_slice());
    }
}
