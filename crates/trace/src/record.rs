//! Compact binary trace recording and replay.
//!
//! Workloads are deterministic, so traces usually need no storage — but
//! persisting a trace is useful for cross-tool comparison, for debugging a
//! specific interval, and for driving the simulator from traces produced
//! elsewhere. The format is a dense little-endian encoding, roughly 20–30
//! bytes per instruction, with a magic header and an instruction count for
//! integrity checking.

use std::io::{self, Read, Write};

use crate::hints::SemanticHints;
use crate::instr::{Instr, InstrKind, Reg};
use crate::sink::TraceSink;

const MAGIC: &[u8; 8] = b"SEMLOC01";

const K_ALU: u8 = 0;
const K_LOAD: u8 = 1;
const K_STORE: u8 = 2;
const K_BRANCH: u8 = 3;
const K_NOP: u8 = 4;

fn write_reg<W: Write>(w: &mut W, r: Option<Reg>) -> io::Result<()> {
    w.write_all(&[r.map_or(u8::MAX, |r| r.0)])
}

fn read_reg<R: Read>(r: &mut R) -> io::Result<Option<Reg>> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok((b[0] != u8::MAX).then_some(Reg(b[0])))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// A [`TraceSink`] that serializes every instruction to a writer.
///
/// ```rust
/// use semloc_trace::{Instr, RecordingSink, Reg, TraceReader, TraceSink, TraceWriter};
///
/// # fn main() -> std::io::Result<()> {
/// let mut writer = TraceWriter::new(Vec::new(), 0)?;
/// writer.instr(Instr::load(0x400, 0x1000, 8, Reg(1), None, None, 7));
/// let bytes = writer.finish()?;
///
/// let mut replayed = RecordingSink::new();
/// TraceReader::new(&bytes[..])?.replay(&mut replayed)?;
/// assert_eq!(replayed.instrs().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    count: u64,
    limit: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Start a trace on `out`, recording at most `limit` instructions
    /// (0 = unbounded). Writes the header immediately.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the header.
    pub fn new(mut out: W, limit: u64) -> io::Result<Self> {
        out.write_all(MAGIC)?;
        // Count placeholder is not rewritten (streams may not seek); the
        // count lives in the trailer instead.
        Ok(TraceWriter {
            out,
            count: 0,
            limit,
        })
    }

    /// Instructions recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finish the trace: writes the trailer (kind marker + count) and
    /// returns the writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the trailer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.write_all(&[u8::MAX])?;
        self.out.write_all(&self.count.to_le_bytes())?;
        Ok(self.out)
    }

    fn encode(&mut self, i: &Instr) -> io::Result<()> {
        let o = &mut self.out;
        match i.kind {
            InstrKind::Alu { latency } => {
                o.write_all(&[K_ALU])?;
                o.write_all(&latency.to_le_bytes())?;
            }
            InstrKind::Load { addr, size, hints } => {
                o.write_all(&[K_LOAD])?;
                o.write_all(&addr.to_le_bytes())?;
                o.write_all(&[size])?;
                let packed = hints.map_or(u32::MAX, |h| h.pack());
                o.write_all(&packed.to_le_bytes())?;
            }
            InstrKind::Store { addr, size } => {
                o.write_all(&[K_STORE])?;
                o.write_all(&addr.to_le_bytes())?;
                o.write_all(&[size])?;
            }
            InstrKind::Branch { taken, target } => {
                o.write_all(&[K_BRANCH, taken as u8])?;
                o.write_all(&target.to_le_bytes())?;
            }
            InstrKind::Nop => o.write_all(&[K_NOP])?,
        }
        o.write_all(&i.pc.to_le_bytes())?;
        write_reg(o, i.src1)?;
        write_reg(o, i.src2)?;
        write_reg(o, i.dst)?;
        o.write_all(&i.result.to_le_bytes())?;
        Ok(())
    }
}

impl<W: Write> TraceSink for TraceWriter<W> {
    fn instr(&mut self, instr: Instr) {
        if self.done() {
            return;
        }
        // An I/O failure mid-trace poisons the writer by saturating the
        // limit; `finish` will still report the true count.
        if self.encode(&instr).is_err() {
            self.limit = self.count.max(1);
            return;
        }
        self.count += 1;
    }

    fn done(&self) -> bool {
        self.limit != 0 && self.count >= self.limit
    }
}

/// Reads a trace produced by [`TraceWriter`] and replays it into any sink.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    replayed: u64,
}

impl<R: Read> TraceReader<R> {
    /// Open a trace, validating the header.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` if the magic header does not match, or any
    /// underlying I/O error.
    pub fn new(mut input: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a semloc trace",
            ));
        }
        Ok(TraceReader { input, replayed: 0 })
    }

    /// Read the next instruction, or `None` at the (validated) trailer.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a malformed record or a count mismatch at
    /// the trailer.
    pub fn next_instr(&mut self) -> io::Result<Option<Instr>> {
        let mut kind = [0u8; 1];
        self.input.read_exact(&mut kind)?;
        let kind = match kind[0] {
            u8::MAX => {
                let count = read_u64(&mut self.input)?;
                if count != self.replayed {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "trace count mismatch: trailer {count}, read {}",
                            self.replayed
                        ),
                    ));
                }
                return Ok(None);
            }
            K_ALU => InstrKind::Alu {
                latency: read_u32(&mut self.input)?,
            },
            K_LOAD => {
                let addr = read_u64(&mut self.input)?;
                let mut size = [0u8; 1];
                self.input.read_exact(&mut size)?;
                let packed = read_u32(&mut self.input)?;
                let hints = (packed != u32::MAX).then(|| SemanticHints::unpack(packed));
                InstrKind::Load {
                    addr,
                    size: size[0],
                    hints,
                }
            }
            K_STORE => {
                let addr = read_u64(&mut self.input)?;
                let mut size = [0u8; 1];
                self.input.read_exact(&mut size)?;
                InstrKind::Store {
                    addr,
                    size: size[0],
                }
            }
            K_BRANCH => {
                let mut taken = [0u8; 1];
                self.input.read_exact(&mut taken)?;
                InstrKind::Branch {
                    taken: taken[0] != 0,
                    target: read_u64(&mut self.input)?,
                }
            }
            K_NOP => InstrKind::Nop,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad record kind {other}"),
                ));
            }
        };
        let pc = read_u64(&mut self.input)?;
        let src1 = read_reg(&mut self.input)?;
        let src2 = read_reg(&mut self.input)?;
        let dst = read_reg(&mut self.input)?;
        let result = read_u64(&mut self.input)?;
        self.replayed += 1;
        Ok(Some(Instr {
            pc,
            kind,
            src1,
            src2,
            dst,
            result,
        }))
    }

    /// Replay the whole trace into `sink` (stops early if the sink is
    /// done). Returns the number of instructions replayed.
    ///
    /// # Errors
    ///
    /// Returns any decoding error.
    pub fn replay(&mut self, sink: &mut dyn TraceSink) -> io::Result<u64> {
        let mut n = 0;
        while let Some(i) = self.next_instr()? {
            if sink.done() {
                break;
            }
            sink.instr(i);
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::load(
                0x400,
                0x1234,
                8,
                Reg(3),
                Some(Reg(1)),
                Some(SemanticHints::link(7, 16)),
                0xAB,
            ),
            Instr::alu(0x408, Some(Reg(4)), Some(Reg(3)), None, 99),
            Instr::store(0x410, 0x5678, 8, Some(Reg(4)), Some(Reg(3))),
            Instr::branch(0x418, true, 0x400, Some(Reg(4))),
            Instr::nop(0x420),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for i in sample() {
            w.instr(i);
        }
        let bytes = w.finish().unwrap();
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut sink = RecordingSink::new();
        let n = r.replay(&mut sink).unwrap();
        assert_eq!(n, 5);
        assert_eq!(sink.instrs(), sample().as_slice());
    }

    #[test]
    fn writer_honours_limit() {
        let mut w = TraceWriter::new(Vec::new(), 2).unwrap();
        for i in sample() {
            w.instr(i);
        }
        assert_eq!(w.count(), 2);
        assert!(w.done());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = TraceReader::new(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_trace_fails_cleanly() {
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for i in sample() {
            w.instr(i);
        }
        let mut bytes = w.finish().unwrap();
        bytes.truncate(bytes.len() - 3);
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        let mut sink = RecordingSink::new();
        assert!(r.replay(&mut sink).is_err());
    }

    #[test]
    fn workload_scale_roundtrip() {
        // A larger pseudo-random trace survives the roundtrip byte-exactly.
        let mut instrs = Vec::new();
        let mut state = 1u64;
        for i in 0..5000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            instrs.push(match state % 4 {
                0 => Instr::load(
                    i * 8,
                    state % (1 << 30),
                    8,
                    Reg((state % 32) as u8),
                    None,
                    None,
                    state,
                ),
                1 => Instr::alu(i * 8, Some(Reg((state % 32) as u8)), None, None, state),
                2 => Instr::store(i * 8, state % (1 << 30), 8, None, None),
                _ => Instr::branch(i * 8, state & 8 != 0, state % (1 << 20), None),
            });
        }
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for &i in &instrs {
            w.instr(i);
        }
        let bytes = w.finish().unwrap();
        let mut sink = RecordingSink::new();
        TraceReader::new(&bytes[..])
            .unwrap()
            .replay(&mut sink)
            .unwrap();
        assert_eq!(sink.instrs(), instrs.as_slice());
    }
}
