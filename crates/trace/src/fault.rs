//! Deterministic fault injection for trace serialization and storage.
//!
//! The differential/fault harness needs to prove that every way a stored
//! trace can go bad — flipped bits, truncated files, interrupted writes,
//! outright garbage — is either *detected* (a typed [`std::io::Error`]
//! surfaces at the trace layer) or *tolerated* (the consumer provably falls
//! back to regenerating the stream), never silently replayed as a wrong
//! answer. This module provides the vocabulary for injecting those faults
//! deterministically: a [`FaultPlan`] mutates serialized bytes in place,
//! and [`ShortWriter`] simulates an I/O sink that dies mid-write (disk
//! full, killed process).

use std::io::{self, Write};

/// A single deterministic corruption of a serialized trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// XOR bit `bit` (0–7) of the byte at `offset`. Out-of-range offsets
    /// wrap, so a plan built for one trace stays applicable to another.
    BitFlip { offset: usize, bit: u8 },
    /// Keep only the first `keep` bytes (a partially-written or
    /// partially-copied file).
    Truncate { keep: usize },
    /// Overwrite the 8-byte magic header with an unrelated tag.
    BadMagic,
    /// Add `delta` to the first byte of the trailer's little-endian
    /// instruction count, making the trailer lie about the payload.
    CountSkew { delta: u8 },
    /// Replace the entire buffer with `len` bytes of non-trace garbage
    /// (a poisoned cache file written by something else entirely).
    Garbage { len: usize },
}

impl Fault {
    /// Apply this fault to `bytes` in place. Faults are total: they apply
    /// meaningfully to any buffer, including an empty one.
    pub fn apply(&self, bytes: &mut Vec<u8>) {
        match *self {
            Fault::BitFlip { offset, bit } => {
                if !bytes.is_empty() {
                    let i = offset % bytes.len();
                    bytes[i] ^= 1 << (bit % 8);
                }
            }
            Fault::Truncate { keep } => bytes.truncate(keep),
            Fault::BadMagic => {
                for (i, b) in b"NOTTRACE".iter().enumerate() {
                    if i < bytes.len() {
                        bytes[i] = *b;
                    }
                }
            }
            Fault::CountSkew { delta } => {
                // Trailer layout: 0xFF marker, count u64 LE, checksum u64
                // LE — the count's low byte sits 16 bytes from the end.
                if bytes.len() >= 17 {
                    let i = bytes.len() - 16;
                    bytes[i] = bytes[i].wrapping_add(delta);
                }
            }
            Fault::Garbage { len } => {
                bytes.clear();
                bytes.extend((0..len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(11)));
            }
        }
    }
}

/// An ordered list of [`Fault`]s applied to serialized trace bytes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// A plan with a single fault.
    pub fn with(fault: Fault) -> Self {
        FaultPlan {
            faults: vec![fault],
        }
    }

    /// Append a fault to the plan.
    pub fn push(&mut self, fault: Fault) {
        self.faults.push(fault);
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Apply every fault, in order, to `bytes`.
    pub fn corrupt(&self, bytes: &mut Vec<u8>) {
        for f in &self.faults {
            f.apply(bytes);
        }
    }
}

/// A writer that fails after accepting `budget` bytes, simulating a disk
/// that fills up or a process killed mid-write. The failure is a typed
/// `WriteZero` error, so `write_all` callers see it immediately.
#[derive(Debug)]
pub struct ShortWriter<W: Write> {
    inner: W,
    remaining: u64,
}

impl<W: Write> ShortWriter<W> {
    /// Wrap `inner`, accepting at most `budget` bytes before failing.
    pub fn new(inner: W, budget: u64) -> Self {
        ShortWriter {
            inner,
            remaining: budget,
        }
    }

    /// The wrapped writer (with whatever prefix made it through).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ShortWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.remaining == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write: byte budget exhausted",
            ));
        }
        let take = (buf.len() as u64).min(self.remaining) as usize;
        let n = self.inner.write(&buf[..take])?;
        self.remaining -= n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Instr, Reg};
    use crate::record::{TraceReader, TraceWriter};
    use crate::sink::{RecordingSink, TraceSink};

    fn valid_trace(n: u64) -> Vec<u8> {
        let mut w = TraceWriter::new(Vec::new(), 0).unwrap();
        for i in 0..n {
            w.instr(Instr::load(
                0x400 + i * 4,
                0x1000 + i * 64,
                8,
                Reg(1),
                None,
                None,
                i,
            ));
        }
        w.finish().unwrap()
    }

    fn replay(bytes: &[u8]) -> io::Result<u64> {
        let mut sink = RecordingSink::new();
        TraceReader::new(bytes)?.replay(&mut sink)
    }

    #[test]
    fn every_fault_kind_is_detected_on_read() {
        let faults = [
            Fault::BitFlip { offset: 40, bit: 3 },
            Fault::Truncate { keep: 25 },
            Fault::BadMagic,
            Fault::CountSkew { delta: 1 },
            Fault::Garbage { len: 64 },
        ];
        for fault in faults {
            let mut bytes = valid_trace(10);
            FaultPlan::with(fault.clone()).corrupt(&mut bytes);
            assert!(
                replay(&bytes).is_err(),
                "{fault:?} must surface as a typed error"
            );
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let clean = valid_trace(5);
        let mut bytes = clean.clone();
        FaultPlan::new().corrupt(&mut bytes);
        assert_eq!(bytes, clean);
        assert!(FaultPlan::new().is_empty());
        assert_eq!(replay(&bytes).unwrap(), 5);
    }

    #[test]
    fn faults_compose_in_order() {
        let mut plan = FaultPlan::new();
        plan.push(Fault::Truncate { keep: 30 });
        plan.push(Fault::BitFlip { offset: 9, bit: 0 });
        let mut bytes = valid_trace(5);
        plan.corrupt(&mut bytes);
        assert_eq!(bytes.len(), 30);
        assert!(replay(&bytes).is_err());
    }

    #[test]
    fn short_writer_fails_with_write_zero() {
        let mut w = TraceWriter::new(ShortWriter::new(Vec::new(), 40), 0).unwrap();
        for i in 0..100u64 {
            w.instr(Instr::load(
                0x400,
                0x1000 + i * 64,
                8,
                Reg(1),
                None,
                None,
                i,
            ));
        }
        // The byte budget dies mid-payload: the writer poisons itself and
        // records fewer instructions than were offered.
        assert!(w.count() < 100, "short write must poison the writer");
        let err = w.finish().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn short_writer_passes_through_under_budget() {
        let mut sw = ShortWriter::new(Vec::new(), 1024);
        sw.write_all(b"hello").unwrap();
        assert_eq!(sw.into_inner(), b"hello");
    }
}
