//! Instruction/memory-access trace model for the semloc simulator.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace:
//!
//! * [`Instr`] / [`InstrKind`] — the ISA-agnostic instruction records that
//!   workloads emit and the out-of-order core model consumes.
//! * [`SemanticHints`] — the compiler-injected software attributes of the
//!   paper (object type id, link offset, form of reference). In the original
//!   system a modified LLVM pass packed these into an extended-NOP
//!   immediately preceding each pointer-typed load; here the workload
//!   generator attaches them directly to the load record, which carries the
//!   exact same information to the prefetcher.
//! * [`AccessContext`] — the per-access machine context (Table 1 of the
//!   paper) handed to prefetchers.
//! * [`AddressSpace`] — a simulated virtual-address allocator with pluggable
//!   placement policies, so the same algorithm can be laid out "naively"
//!   (scattered heap) or "spatially optimized" (sequential arrays).
//! * [`TraceSink`] / [`Emitter`] — the push-based streaming interface through
//!   which workloads drive a simulator without materializing traces.
//!
//! # Example
//!
//! ```rust
//! use semloc_trace::{AddressSpace, Emitter, Placement, RecordingSink, Reg};
//!
//! let mut space = AddressSpace::new(1, Placement::Bump);
//! let a = space.alloc(64);
//! let mut sink = RecordingSink::new();
//! let mut em = Emitter::new(&mut sink);
//! em.load(0x400000, a, Reg(1), None, None, a + 64);
//! assert_eq!(sink.instrs().len(), 1);
//! ```

// Mirror of semloc-lint rule D3 (no-unwrap); D1/D2 are mirrored via clippy.toml.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod address_space;
pub mod buffer;
pub mod context;
pub mod decoded;
pub mod emit;
pub mod fault;
pub mod hints;
pub mod instr;
pub mod record;
pub mod sink;
pub mod snap;

pub use address_space::{AddressSpace, Placement};
pub use buffer::{BufferSink, TraceBuffer, BLOCK_LEN};
pub use context::{AccessContext, RECENT_ADDRS};
pub use decoded::{DecodedChunk, DecodedTrace, InstrBlock};
pub use emit::{Emitter, PcAlloc};
pub use fault::{Fault, FaultPlan, ShortWriter};
pub use hints::{RefForm, SemanticHints};
pub use instr::{Instr, InstrKind, Reg};
pub use record::{TraceReader, TraceWriter};
pub use sink::{CountingSink, RecordingSink, TraceSink};
pub use snap::{snap_err, SnapReader, SnapWriter, Snapshot};

/// A virtual address in the simulated machine.
pub type Addr = u64;

/// A simulated core clock cycle.
pub type Cycle = u64;

/// A monotone sequence number over the *demand memory access* stream.
///
/// The paper measures prefetch distance and reward depth in "memory
/// accesses", not cycles; this type indexes that stream.
pub type Seq = u64;

/// Align `addr` down to a `block`-byte boundary. `block` must be a power of
/// two.
#[inline]
pub fn align_down(addr: Addr, block: u64) -> Addr {
    debug_assert!(block.is_power_of_two());
    addr & !(block - 1)
}

/// The block index of `addr` at `block`-byte granularity.
#[inline]
pub fn block_of(addr: Addr, block: u64) -> u64 {
    debug_assert!(block.is_power_of_two());
    addr >> block.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_down_masks_low_bits() {
        assert_eq!(align_down(0x1234, 64), 0x1200);
        assert_eq!(align_down(0x1240, 64), 0x1240);
        assert_eq!(align_down(63, 64), 0);
    }

    #[test]
    fn block_of_shifts() {
        assert_eq!(block_of(0, 32), 0);
        assert_eq!(block_of(31, 32), 0);
        assert_eq!(block_of(32, 32), 1);
        assert_eq!(block_of(0x1000, 64), 0x40);
    }
}
