//! Push-based trace streaming.
//!
//! Workloads *drive* a [`TraceSink`] rather than materializing traces: a
//! kernel is an ordinary Rust function that calls [`TraceSink::instr`] (via
//! [`Emitter`](crate::Emitter)) for every dynamic instruction. The simulator
//! implements `TraceSink`, so multi-million-instruction runs need no trace
//! storage; deterministic (seeded) workloads are re-run to replay a trace.

use crate::instr::{Instr, InstrKind};

/// A consumer of a dynamic instruction stream.
///
/// Implemented by the out-of-order core model, by statistics collectors, and
/// by the test helpers in this module.
pub trait TraceSink {
    /// Consume the next dynamic instruction.
    fn instr(&mut self, instr: Instr);

    /// Ask the producer to stop early. Workloads with unbounded loops check
    /// this between emissions; it becomes `true` once an instruction budget
    /// is exhausted.
    fn done(&self) -> bool {
        false
    }
}

impl<S: TraceSink + ?Sized> TraceSink for &mut S {
    fn instr(&mut self, instr: Instr) {
        (**self).instr(instr)
    }
    fn done(&self) -> bool {
        (**self).done()
    }
}

/// A sink that records every instruction, for tests and offline analysis.
#[derive(Debug, Default, Clone)]
pub struct RecordingSink {
    instrs: Vec<Instr>,
    limit: Option<usize>,
}

impl RecordingSink {
    /// A recorder with no instruction limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder that reports `done()` after `limit` instructions.
    pub fn with_limit(limit: usize) -> Self {
        RecordingSink {
            instrs: Vec::new(),
            limit: Some(limit),
        }
    }

    /// The recorded instructions, in emission order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Consume the recorder and return the recorded instructions.
    pub fn into_instrs(self) -> Vec<Instr> {
        self.instrs
    }

    /// The recorded memory accesses (loads and stores) only.
    pub fn mem_accesses(&self) -> impl Iterator<Item = &Instr> {
        self.instrs.iter().filter(|i| i.is_mem())
    }
}

impl TraceSink for RecordingSink {
    fn instr(&mut self, instr: Instr) {
        if !self.done() {
            self.instrs.push(instr);
        }
    }

    fn done(&self) -> bool {
        self.limit.is_some_and(|l| self.instrs.len() >= l)
    }
}

/// A sink that only counts instructions by class — used to size workloads
/// and to compute the `Prob(mem op)` workload parameter of §4.3.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Total dynamic instructions.
    pub total: u64,
    /// Dynamic loads.
    pub loads: u64,
    /// Dynamic stores.
    pub stores: u64,
    /// Dynamic branches.
    pub branches: u64,
    /// Optional instruction budget after which `done()` is reported.
    pub limit: u64,
}

impl CountingSink {
    /// A counter with no budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter that reports `done()` after `limit` instructions.
    pub fn with_limit(limit: u64) -> Self {
        CountingSink {
            limit,
            ..Self::default()
        }
    }

    /// Fraction of instructions that access memory, or 0 if empty.
    pub fn mem_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.loads + self.stores) as f64 / self.total as f64
        }
    }
}

impl TraceSink for CountingSink {
    fn instr(&mut self, instr: Instr) {
        self.total += 1;
        match instr.kind {
            InstrKind::Load { .. } => self.loads += 1,
            InstrKind::Store { .. } => self.stores += 1,
            InstrKind::Branch { .. } => self.branches += 1,
            _ => {}
        }
    }

    fn done(&self) -> bool {
        self.limit != 0 && self.total >= self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    fn sample() -> [Instr; 4] {
        [
            Instr::load(0, 0x100, 8, Reg(1), None, None, 0),
            Instr::store(8, 0x108, 8, None, None),
            Instr::alu(16, Some(Reg(2)), None, None, 0),
            Instr::branch(24, true, 0, None),
        ]
    }

    #[test]
    fn recording_sink_records_in_order() {
        let mut s = RecordingSink::new();
        for i in sample() {
            s.instr(i);
        }
        assert_eq!(s.instrs().len(), 4);
        assert_eq!(s.mem_accesses().count(), 2);
    }

    #[test]
    fn recording_sink_honours_limit() {
        let mut s = RecordingSink::with_limit(2);
        for i in sample() {
            s.instr(i);
        }
        assert_eq!(s.instrs().len(), 2);
        assert!(s.done());
    }

    #[test]
    fn counting_sink_classifies() {
        let mut s = CountingSink::new();
        for i in sample() {
            s.instr(i);
        }
        assert_eq!((s.total, s.loads, s.stores, s.branches), (4, 1, 1, 1));
        assert!((s.mem_fraction() - 0.5).abs() < 1e-12);
        assert!(!s.done());
    }

    #[test]
    fn counting_sink_budget() {
        let mut s = CountingSink::with_limit(3);
        for i in sample() {
            s.instr(i);
        }
        assert!(s.done());
    }

    #[test]
    fn sink_is_usable_through_mut_ref() {
        fn feed<S: TraceSink>(mut s: S) -> bool {
            s.instr(Instr::nop(0));
            s.done()
        }
        let mut c = CountingSink::with_limit(1);
        assert!(feed(&mut c));
        assert_eq!(c.total, 1);
    }
}
