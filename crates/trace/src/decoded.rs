//! Fully-decoded trace lanes for zero-decode block replay.
//!
//! [`DecodedTrace`] is the flat struct-of-arrays twin of
//! [`TraceBuffer`](crate::TraceBuffer): every varint is expanded once into
//! fixed-width parallel lanes (op byte, absolute PC, a kind-dependent
//! 64-bit auxiliary word, access size, packed hints, the three register
//! operands, and the architectural result), so replay becomes pure
//! sequential lane reads with no per-instruction decode work. The layout
//! costs ~33 B/instr — a deliberate space-for-time trade against the
//! ~6-10 B/instr varint encoding — which is why callers cache these behind
//! a byte-budgeted LRU rather than keeping one per capture forever.
//!
//! Decoding is chunk-parallel friendly: [`DecodedChunk::decode`] decodes
//! any `[start, start+len)` instruction range independently (seeking via
//! the buffer's block marks), and [`DecodedTrace::assemble`] stitches the
//! chunks back together. [`DecodedTrace::decode`] is the serial
//! convenience form. Both produce bit-identical [`Instr`] streams to
//! [`TraceBuffer::iter`](crate::TraceBuffer::iter) — pinned by proptests
//! in the workloads crate.
//!
//! Replay consumers step whole [`BLOCK_LEN`]-instruction blocks at a time
//! through [`InstrBlock`] views (see `Cpu::step_block` in the cpu crate),
//! which keeps the engine loop free of per-instruction bounds/budget
//! checks and lets it prefetch the next block's lanes while the current
//! one executes.

use crate::buffer::{
    TraceBuffer, F_AUX, F_DST, F_RESULT, F_SRC1, F_SRC2, KIND_MASK, K_ALU, K_BRANCH, K_LOAD,
    K_STORE,
};
use crate::hints::SemanticHints;
use crate::instr::{Instr, InstrKind, Reg};

/// One independently-decoded instruction range, produced by
/// [`DecodedChunk::decode`] (typically fanned out across a worker pool)
/// and consumed by [`DecodedTrace::assemble`].
#[derive(Debug)]
pub struct DecodedChunk {
    start: usize,
    ops: Vec<u8>,
    pcs: Vec<u64>,
    aux: Vec<u64>,
    sizes: Vec<u8>,
    hints: Vec<u32>,
    src1: Vec<u8>,
    src2: Vec<u8>,
    dst: Vec<u8>,
    results: Vec<u64>,
}

impl DecodedChunk {
    /// Decode `len` instructions starting at index `start` of `buf`.
    /// Ranges past the end are clamped; chunks may be decoded in any
    /// order and on any thread (the buffer is only read).
    pub fn decode(buf: &TraceBuffer, start: usize, len: usize) -> Self {
        let start = start.min(buf.len());
        let len = len.min(buf.len() - start);
        let mut c = DecodedChunk {
            start,
            ops: Vec::with_capacity(len),
            pcs: Vec::with_capacity(len),
            aux: Vec::with_capacity(len),
            sizes: Vec::with_capacity(len),
            hints: Vec::with_capacity(len),
            src1: Vec::with_capacity(len),
            src2: Vec::with_capacity(len),
            dst: Vec::with_capacity(len),
            results: Vec::with_capacity(len),
        };
        for i in buf.iter_from(start).take(len) {
            let mut op = match i.kind {
                InstrKind::Alu { .. } => K_ALU,
                InstrKind::Load { .. } => K_LOAD,
                InstrKind::Store { .. } => K_STORE,
                InstrKind::Branch { .. } => K_BRANCH,
                InstrKind::Nop => crate::buffer::K_NOP,
            };
            if i.src1.is_some() {
                op |= F_SRC1;
            }
            if i.src2.is_some() {
                op |= F_SRC2;
            }
            if i.dst.is_some() {
                op |= F_DST;
            }
            if i.result != 0 {
                op |= F_RESULT;
            }
            let (aux, size, hint) = match i.kind {
                InstrKind::Alu { latency } => (latency as u64, 0u8, 0u32),
                InstrKind::Load { addr, size, hints } => {
                    if hints.is_some() {
                        op |= F_AUX;
                    }
                    (addr, size, hints.map_or(0, |h| h.pack()))
                }
                InstrKind::Store { addr, size } => (addr, size, 0),
                InstrKind::Branch { taken, target } => {
                    if taken {
                        op |= F_AUX;
                    }
                    (target, 0, 0)
                }
                InstrKind::Nop => (0, 0, 0),
            };
            c.ops.push(op);
            c.pcs.push(i.pc);
            c.aux.push(aux);
            c.sizes.push(size);
            c.hints.push(hint);
            c.src1.push(i.src1.map_or(0, |r| r.0));
            c.src2.push(i.src2.map_or(0, |r| r.0));
            c.dst.push(i.dst.map_or(0, |r| r.0));
            c.results.push(i.result);
        }
        c
    }

    /// Number of instructions in this chunk.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the chunk decoded no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// A fully-decoded trace: fixed-width parallel lanes over the whole
/// captured stream, replayable in [`BLOCK_LEN`]-instruction blocks with
/// zero per-instruction decode work.
pub struct DecodedTrace {
    ops: Box<[u8]>,
    pcs: Box<[u64]>,
    aux: Box<[u64]>,
    sizes: Box<[u8]>,
    hints: Box<[u32]>,
    src1: Box<[u8]>,
    src2: Box<[u8]>,
    dst: Box<[u8]>,
    results: Box<[u64]>,
}

impl DecodedTrace {
    /// Serially decode an entire buffer (the single-chunk case of
    /// [`DecodedTrace::assemble`]).
    pub fn decode(buf: &TraceBuffer) -> Self {
        Self::assemble(buf.len(), vec![DecodedChunk::decode(buf, 0, buf.len())])
    }

    /// Stitch independently-decoded chunks into one trace. The chunks
    /// must tile `[0, total)` exactly (any order, no gaps or overlaps).
    ///
    /// # Panics
    ///
    /// Panics if the chunks do not tile the range — that is a caller bug,
    /// not a recoverable condition.
    pub fn assemble(total: usize, mut chunks: Vec<DecodedChunk>) -> Self {
        chunks.sort_by_key(|c| c.start);
        let mut t = DecodedTrace {
            ops: vec![0; total].into_boxed_slice(),
            pcs: vec![0; total].into_boxed_slice(),
            aux: vec![0; total].into_boxed_slice(),
            sizes: vec![0; total].into_boxed_slice(),
            hints: vec![0; total].into_boxed_slice(),
            src1: vec![0; total].into_boxed_slice(),
            src2: vec![0; total].into_boxed_slice(),
            dst: vec![0; total].into_boxed_slice(),
            results: vec![0; total].into_boxed_slice(),
        };
        let mut at = 0usize;
        for c in &chunks {
            assert_eq!(c.start, at, "decoded chunks must tile the trace");
            let end = at + c.len();
            t.ops[at..end].copy_from_slice(&c.ops);
            t.pcs[at..end].copy_from_slice(&c.pcs);
            t.aux[at..end].copy_from_slice(&c.aux);
            t.sizes[at..end].copy_from_slice(&c.sizes);
            t.hints[at..end].copy_from_slice(&c.hints);
            t.src1[at..end].copy_from_slice(&c.src1);
            t.src2[at..end].copy_from_slice(&c.src2);
            t.dst[at..end].copy_from_slice(&c.dst);
            t.results[at..end].copy_from_slice(&c.results);
            at = end;
        }
        assert_eq!(at, total, "decoded chunks must cover the whole trace");
        t
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Resident lane bytes (the quantity the decode-cache byte budget
    /// accounts).
    pub fn bytes(&self) -> usize {
        Self::bytes_for(self.len())
    }

    /// Decoded footprint of a trace with `len` instructions — a pure
    /// function of the length, so cache admission can be decided before
    /// paying for the decode.
    pub fn bytes_for(len: usize) -> usize {
        // u8 ops + sizes + 3 reg lanes, u32 hints, u64 pcs + aux + results.
        len * (1 + 1 + 3 + 4 + 8 + 8 + 8)
    }

    /// Borrow the instruction range `[start, end)` as lane slices for
    /// batched stepping. Callers walk block boundaries ([`BLOCK_LEN`]);
    /// partial first/last blocks are fine.
    pub fn block(&self, start: usize, end: usize) -> InstrBlock<'_> {
        InstrBlock {
            ops: &self.ops[start..end],
            pcs: &self.pcs[start..end],
            aux: &self.aux[start..end],
            sizes: &self.sizes[start..end],
            hints: &self.hints[start..end],
            src1: &self.src1[start..end],
            src2: &self.src2[start..end],
            dst: &self.dst[start..end],
            results: &self.results[start..end],
        }
    }

    /// Reconstruct the full [`Instr`] at index `i` (bit-identical to the
    /// streaming decoder's output).
    pub fn instr(&self, i: usize) -> Instr {
        self.block(i, i + 1).instr(0)
    }

    /// Hint the hardware prefetcher at the lanes for the block starting at
    /// `start`, so the next block's lanes are warming while the current one
    /// executes. A no-op off x86_64 or past the end of the trace.
    #[inline]
    pub fn prefetch_block(&self, start: usize) {
        #[cfg(target_arch = "x86_64")]
        if start < self.ops.len() {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // semloc-lint: allow(unsafe-audit): _mm_prefetch is a pure cache hint with no memory-safety obligations; the pointers derive from in-bounds indices into live slices
            unsafe {
                _mm_prefetch(self.ops.as_ptr().add(start) as *const i8, _MM_HINT_T0);
                _mm_prefetch(self.pcs.as_ptr().add(start) as *const i8, _MM_HINT_T0);
                _mm_prefetch(self.aux.as_ptr().add(start) as *const i8, _MM_HINT_T0);
                _mm_prefetch(self.results.as_ptr().add(start) as *const i8, _MM_HINT_T0);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = start;
    }
}

impl std::fmt::Debug for DecodedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DecodedTrace")
            .field("instrs", &self.len())
            .field("bytes", &self.bytes())
            .finish()
    }
}

/// A borrowed lane view over a contiguous instruction range of a
/// [`DecodedTrace`], the unit consumed by `Cpu::step_block`.
#[derive(Clone, Copy, Debug)]
pub struct InstrBlock<'a> {
    /// Op bytes (kind tag + presence flags), as in the varint encoding.
    pub ops: &'a [u8],
    /// Absolute program counters.
    pub pcs: &'a [u64],
    /// Kind-dependent word: ALU latency, load/store address, branch target.
    pub aux: &'a [u64],
    /// Memory access sizes (zero for non-memory ops).
    pub sizes: &'a [u8],
    /// Packed semantic hints (valid only for loads flagged `F_AUX`).
    pub hints: &'a [u32],
    /// First source register (valid iff flagged).
    pub src1: &'a [u8],
    /// Second source register (valid iff flagged).
    pub src2: &'a [u8],
    /// Destination register (valid iff flagged).
    pub dst: &'a [u8],
    /// Architectural results.
    pub results: &'a [u64],
}

impl InstrBlock<'_> {
    /// Instructions in the block.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the block is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Reconstruct the full [`Instr`] at block-relative index `i`.
    #[inline]
    pub fn instr(&self, i: usize) -> Instr {
        let op = self.ops[i];
        let kind = match op & KIND_MASK {
            K_ALU => InstrKind::Alu {
                latency: self.aux[i] as u32,
            },
            K_LOAD => InstrKind::Load {
                addr: self.aux[i],
                size: self.sizes[i],
                hints: (op & F_AUX != 0).then(|| SemanticHints::unpack(self.hints[i])),
            },
            K_STORE => InstrKind::Store {
                addr: self.aux[i],
                size: self.sizes[i],
            },
            K_BRANCH => InstrKind::Branch {
                taken: op & F_AUX != 0,
                target: self.aux[i],
            },
            _ => InstrKind::Nop,
        };
        Instr {
            pc: self.pcs[i],
            kind,
            src1: (op & F_SRC1 != 0).then(|| Reg(self.src1[i])),
            src2: (op & F_SRC2 != 0).then(|| Reg(self.src2[i])),
            dst: (op & F_DST != 0).then(|| Reg(self.dst[i])),
            result: if op & F_RESULT != 0 {
                self.results[i]
            } else {
                0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BLOCK_LEN;
    use crate::instr::Reg;

    fn random_stream(n: u64) -> Vec<Instr> {
        let mut state = 0xdec0de_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        (0..n)
            .map(|i| {
                let r = next();
                match r % 5 {
                    0 => Instr::load(
                        i * 8,
                        next(),
                        (1 << (r % 4)) as u8,
                        Reg((r % 32) as u8),
                        (r & 32 != 0).then(|| Reg((next() % 32) as u8)),
                        (r & 64 != 0)
                            .then(|| SemanticHints::link((r >> 8) as u16, (r % 0x4000) as u16)),
                        next(),
                    ),
                    1 => Instr::alu(
                        next(),
                        Some(Reg((r % 32) as u8)),
                        None,
                        Some(Reg((next() % 32) as u8)),
                        next(),
                    ),
                    2 => Instr::store(i * 8, next(), 8, Some(Reg((r % 32) as u8)), None),
                    3 => Instr::branch(next(), r & 8 != 0, next(), None),
                    _ => Instr::nop(next()),
                }
            })
            .collect()
    }

    fn buffer_of(instrs: &[Instr]) -> TraceBuffer {
        let mut buf = TraceBuffer::new();
        for i in instrs {
            buf.push(i);
        }
        buf
    }

    #[test]
    fn serial_decode_matches_streaming() {
        // 5 full blocks plus a partial tail.
        let instrs = random_stream(5 * BLOCK_LEN as u64 + 37);
        let buf = buffer_of(&instrs);
        let d = DecodedTrace::decode(&buf);
        assert_eq!(d.len(), instrs.len());
        for (i, want) in instrs.iter().enumerate() {
            assert_eq!(&d.instr(i), want, "instr {i}");
        }
    }

    #[test]
    fn chunked_assembly_matches_serial() {
        let instrs = random_stream(4 * BLOCK_LEN as u64 + 100);
        let buf = buffer_of(&instrs);
        // Deliberately unaligned, out-of-order chunk tiling.
        let cuts = [0usize, 300, 301, 512, 1000, buf.len()];
        let mut chunks: Vec<DecodedChunk> = cuts
            .windows(2)
            .map(|w| DecodedChunk::decode(&buf, w[0], w[1] - w[0]))
            .collect();
        chunks.reverse();
        let d = DecodedTrace::assemble(buf.len(), chunks);
        for (i, want) in instrs.iter().enumerate() {
            assert_eq!(&d.instr(i), want, "instr {i}");
        }
    }

    #[test]
    fn block_views_cover_partial_tails() {
        let instrs = random_stream(BLOCK_LEN as u64 + 3);
        let buf = buffer_of(&instrs);
        let d = DecodedTrace::decode(&buf);
        let tail = d.block(BLOCK_LEN, d.len());
        assert_eq!(tail.len(), 3);
        for i in 0..tail.len() {
            assert_eq!(tail.instr(i), instrs[BLOCK_LEN + i]);
        }
        d.prefetch_block(0);
        d.prefetch_block(d.len()); // past-the-end is a no-op
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn assemble_rejects_gaps() {
        let buf = buffer_of(&random_stream(100));
        let c = DecodedChunk::decode(&buf, 10, 90);
        let _ = DecodedTrace::assemble(100, vec![c]);
    }

    #[test]
    fn empty_trace_decodes_empty() {
        let d = DecodedTrace::decode(&TraceBuffer::new());
        assert!(d.is_empty());
        assert_eq!(d.bytes(), 0);
    }
}
