//! Compiler-injected semantic hints (the software rows of Table 1).
//!
//! The original system used a modified LLVM pass that identified
//! pointer-based accesses to objects and packed three attributes into an
//! extended-NOP preceding the memory instruction:
//!
//! * a unique enumeration of the accessed *object type*,
//! * the *link offset* — the offset within the object of the pointer/index
//!   field used to reach the next element,
//! * the *form of reference* (`.`, `->`, `*`, array index).
//!
//! Hints are only attached to loads that produce pointer values (per §6 of
//! the paper, accesses through an already-hinted base pointer are skipped).

/// The syntactic form of a memory reference, as seen by the compiler.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum RefForm {
    /// Direct member access on a value (`a.b`).
    #[default]
    Dot,
    /// Member access through a pointer (`a->b`).
    Arrow,
    /// Plain pointer dereference (`*p`).
    Deref,
    /// Array subscript (`a[i]`).
    Index,
}

impl RefForm {
    /// A stable 2-bit encoding used when hashing contexts.
    #[inline]
    pub fn code(self) -> u8 {
        match self {
            RefForm::Dot => 0,
            RefForm::Arrow => 1,
            RefForm::Deref => 2,
            RefForm::Index => 3,
        }
    }

    /// All forms, in `code()` order.
    pub const ALL: [RefForm; 4] = [RefForm::Dot, RefForm::Arrow, RefForm::Deref, RefForm::Index];
}

/// The software attributes the modified compiler attaches to a pointer load.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct SemanticHints {
    /// Unique enumeration of the object type being accessed (e.g. graph
    /// vertex vs. edge, list node vs. payload).
    pub type_id: u16,
    /// Offset, within the object, of the pointer or index member used for
    /// this access (identifies which link of the structure is followed).
    pub link_offset: u16,
    /// The syntactic form of the reference.
    pub ref_form: RefForm,
}

impl SemanticHints {
    /// Hints for following a pointer member at `link_offset` of an object of
    /// type `type_id` (the common `node->next` case).
    pub fn link(type_id: u16, link_offset: u16) -> Self {
        SemanticHints {
            type_id,
            link_offset,
            ref_form: RefForm::Arrow,
        }
    }

    /// Hints for an indexed access into an array of objects of `type_id`.
    pub fn indexed(type_id: u16) -> Self {
        SemanticHints {
            type_id,
            link_offset: 0,
            ref_form: RefForm::Index,
        }
    }

    /// Hints for a plain dereference of a pointer to `type_id`.
    pub fn deref(type_id: u16) -> Self {
        SemanticHints {
            type_id,
            link_offset: 0,
            ref_form: RefForm::Deref,
        }
    }

    /// Pack the hints into the 32-bit immediate format the compiler backend
    /// used (type id in the high half, link offset next, ref form in the low
    /// bits).
    #[inline]
    pub fn pack(self) -> u32 {
        ((self.type_id as u32) << 16)
            | ((self.link_offset as u32 & 0x3fff) << 2)
            | self.ref_form.code() as u32
    }

    /// Unpack hints previously packed with [`SemanticHints::pack`].
    #[inline]
    pub fn unpack(raw: u32) -> Self {
        SemanticHints {
            type_id: (raw >> 16) as u16,
            link_offset: ((raw >> 2) & 0x3fff) as u16,
            ref_form: RefForm::ALL[(raw & 0b11) as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrips() {
        for form in RefForm::ALL {
            let h = SemanticHints {
                type_id: 0xBEEF,
                link_offset: 0x123,
                ref_form: form,
            };
            assert_eq!(SemanticHints::unpack(h.pack()), h);
        }
    }

    #[test]
    fn ref_form_codes_are_distinct() {
        let mut seen = [false; 4];
        for form in RefForm::ALL {
            let c = form.code() as usize;
            assert!(!seen[c]);
            seen[c] = true;
        }
    }

    #[test]
    fn constructors_set_expected_fields() {
        assert_eq!(SemanticHints::link(3, 8).ref_form, RefForm::Arrow);
        assert_eq!(SemanticHints::link(3, 8).link_offset, 8);
        assert_eq!(SemanticHints::indexed(4).ref_form, RefForm::Index);
        assert_eq!(SemanticHints::deref(5).ref_form, RefForm::Deref);
    }

    #[test]
    fn link_offset_is_masked_to_14_bits() {
        let h = SemanticHints {
            type_id: 1,
            link_offset: 0x3fff,
            ref_form: RefForm::Dot,
        };
        assert_eq!(SemanticHints::unpack(h.pack()).link_offset, 0x3fff);
    }
}
