//! Versioned binary snapshots of simulator state.
//!
//! Every stateful layer of the simulator implements [`Snapshot`]: a
//! complete, deterministic dump of its run state (including RNG streams)
//! into a [`SnapWriter`], and the inverse restore from a [`SnapReader`].
//! The contract is *bit identity*: a component that is saved, restored into
//! a freshly-constructed instance with the same configuration, and then
//! driven forward must produce exactly the same statistics as one that was
//! never interrupted — and re-saving a restored component must yield
//! byte-identical bytes.
//!
//! The encoding is a flat little-endian stream of tagged *sections*. Each
//! component opens its own section with a 4-byte ASCII tag and a `u32`
//! version; readers validate both before touching the payload, so a stale
//! or foreign snapshot fails with a typed [`std::io::Error`] instead of
//! silently misinterpreting bytes. Construction-time configuration
//! (geometries, capacities, seeds) is deliberately *not* serialized — the
//! restore target is always built from the same configuration, and restore
//! implementations validate structural parameters (table lengths, entry
//! counts) against their own.

use std::io;

/// Versioned save/restore of a component's complete run state.
pub trait Snapshot {
    /// Append this component's state to `w` as one or more tagged sections.
    fn save(&self, w: &mut SnapWriter);

    /// Restore state previously written by [`Snapshot::save`] from `r`.
    ///
    /// `self` must have been constructed with the same configuration as the
    /// saved instance; implementations validate structural parameters and
    /// fail with [`io::ErrorKind::InvalidData`] on any mismatch.
    fn restore(&mut self, r: &mut SnapReader<'_>) -> io::Result<()>;
}

/// An [`io::ErrorKind::InvalidData`] error for malformed snapshots.
pub fn snap_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Little-endian byte sink for [`Snapshot::save`].
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> Self {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the serialized snapshot.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Open a section: a 4-byte ASCII tag plus a `u32` version.
    pub fn section(&mut self, tag: [u8; 4], version: u32) {
        self.buf.extend_from_slice(&tag);
        self.put_u32(version);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i8` (two's complement byte).
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Append an `i16`, little-endian two's complement.
    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append an `f64` via its exact IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a collection length as a `u64`.
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Append raw bytes (length NOT prefixed; pair with [`Self::put_len`]).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }
}

/// Cursor over a serialized snapshot for [`Snapshot::restore`].
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless every byte has been consumed (trailing garbage guard).
    pub fn expect_end(&self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(snap_err(format!(
                "snapshot has {} trailing bytes",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "snapshot truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.remaining()
                ),
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// [`SnapReader::take`] into a fixed-size array: the only failure mode
    /// is truncation (typed EOF error) — the length match is by
    /// construction, so no unwrap is needed at the call sites.
    fn take_array<const N: usize>(&mut self) -> io::Result<[u8; N]> {
        let mut a = [0u8; N];
        a.copy_from_slice(self.take(N)?);
        Ok(a)
    }

    /// Validate a section header written by [`SnapWriter::section`].
    pub fn section(&mut self, tag: [u8; 4], version: u32) -> io::Result<()> {
        let got: [u8; 4] = self.take_array()?;
        if got != tag {
            return Err(snap_err(format!(
                "snapshot section mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(&tag),
                String::from_utf8_lossy(&got)
            )));
        }
        let v = self.get_u32()?;
        if v != version {
            return Err(snap_err(format!(
                "snapshot section {:?} version mismatch: expected {version}, found {v}",
                String::from_utf8_lossy(&tag)
            )));
        }
        Ok(())
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`, little-endian.
    pub fn get_u16(&mut self) -> io::Result<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read a `u32`, little-endian.
    pub fn get_u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a `u64`, little-endian.
    pub fn get_u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read an `i8`.
    pub fn get_i8(&mut self) -> io::Result<i8> {
        Ok(self.take(1)?[0] as i8)
    }

    /// Read an `i16`, little-endian two's complement.
    pub fn get_i16(&mut self) -> io::Result<i16> {
        Ok(i16::from_le_bytes(self.take_array()?))
    }

    /// Read an `i64`, little-endian two's complement.
    pub fn get_i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> io::Result<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(snap_err(format!("snapshot bool has invalid value {b}"))),
        }
    }

    /// Read an `f64` from its exact bit pattern.
    pub fn get_f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a collection length, bounds-checked against the bytes actually
    /// remaining (each element needs at least one byte), so a corrupt length
    /// cannot trigger an absurd allocation.
    pub fn get_len(&mut self) -> io::Result<usize> {
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(snap_err(format!(
                "snapshot length {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(n as usize)
    }

    /// Read exactly `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapWriter::new();
        w.section(*b"TST0", 3);
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 7);
        w.put_i8(-5);
        w.put_i16(-12345);
        w.put_i64(i64::MIN + 1);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-0.125);
        w.put_len(3);
        w.put_bytes(b"abc");
        let bytes = w.into_bytes();

        let mut r = SnapReader::new(&bytes);
        r.section(*b"TST0", 3).unwrap();
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.get_i8().unwrap(), -5);
        assert_eq!(r.get_i16().unwrap(), -12345);
        assert_eq!(r.get_i64().unwrap(), i64::MIN + 1);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), -0.125);
        let n = r.get_len().unwrap();
        assert_eq!(r.get_bytes(n).unwrap(), b"abc");
        r.expect_end().unwrap();
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let weird = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = SnapWriter::new();
        w.put_f64(weird);
        let bytes = w.into_bytes();
        let got = SnapReader::new(&bytes).get_f64().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn wrong_tag_is_rejected() {
        let mut w = SnapWriter::new();
        w.section(*b"AAAA", 1);
        let bytes = w.into_bytes();
        let err = SnapReader::new(&bytes).section(*b"BBBB", 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut w = SnapWriter::new();
        w.section(*b"AAAA", 1);
        let bytes = w.into_bytes();
        let err = SnapReader::new(&bytes).section(*b"AAAA", 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_is_unexpected_eof() {
        let mut w = SnapWriter::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes[..5]);
        let err = r.get_u64().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn absurd_length_is_rejected_without_allocation() {
        let mut w = SnapWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let err = SnapReader::new(&bytes).get_len().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let bytes = [7u8];
        let err = SnapReader::new(&bytes).get_bool().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = SnapWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
        r.get_u8().unwrap();
        r.expect_end().unwrap();
    }
}
