//! Compact in-memory trace storage: the record-once / replay-many buffer.
//!
//! [`TraceBuffer`] stores a captured instruction stream in struct-of-arrays
//! form with delta-encoded program counters and data addresses, so a
//! 400k-instruction trace costs a few megabytes and decodes with purely
//! sequential reads. It is the in-memory twin of the `SEMLOC02` on-disk
//! format in [`record`](crate::record): both round-trip every [`Instr`]
//! field bit-exactly, and [`TraceBuffer::write_semloc`] /
//! [`TraceBuffer::read_semloc`] convert between them.
//!
//! Layout per instruction:
//!
//! * one *op byte* (kind tag + presence flags) in the `ops` column,
//! * a zigzag-varint PC delta against the previous instruction's PC,
//! * for memory ops: a zigzag-varint address delta against the previous
//!   memory address, followed by the access size byte,
//! * register names for each present operand in the `regs` column,
//! * everything else (ALU latency, branch target delta, packed semantic
//!   hints, the architectural result) as varints in the `aux` column.
//!
//! Deltas make the common cases tiny: straight-line code has PC deltas of
//! +8, streaming kernels have constant address strides, and loop branches
//! have small target offsets.

use crate::hints::SemanticHints;
use crate::instr::{Instr, InstrKind, Reg};
use crate::sink::TraceSink;
use std::io::{self, Read, Write};

/// Kind tag in the low three bits of the op byte.
pub(crate) const KIND_MASK: u8 = 0b0000_0111;
pub(crate) const K_ALU: u8 = 0;
pub(crate) const K_LOAD: u8 = 1;
pub(crate) const K_STORE: u8 = 2;
pub(crate) const K_BRANCH: u8 = 3;
pub(crate) const K_NOP: u8 = 4;

/// Presence flags in the high five bits of the op byte.
pub(crate) const F_SRC1: u8 = 0x08;
pub(crate) const F_SRC2: u8 = 0x10;
pub(crate) const F_DST: u8 = 0x20;
/// Branch: taken. Load: carries semantic hints.
pub(crate) const F_AUX: u8 = 0x40;
pub(crate) const F_RESULT: u8 = 0x80;

/// Instructions per block: the granularity of [`TraceBuffer`] seek marks
/// and of [`DecodedTrace`](crate::decoded::DecodedTrace) batched stepping.
pub const BLOCK_LEN: usize = 256;

/// Decoder state at a block boundary: column positions plus the delta
/// baselines, captured every [`BLOCK_LEN`] pushes. 32 bytes per 256
/// instructions (~0.1 B/instr) buys O(1) mid-trace seeks and
/// chunk-parallel decoding.
#[derive(Clone, Copy, Debug, Default)]
struct Mark {
    p_pcs: u32,
    p_addrs: u32,
    p_regs: u32,
    p_aux: u32,
    prev_pc: u64,
    prev_addr: u64,
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

#[inline]
fn get_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*pos];
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// A captured dynamic instruction stream in compact struct-of-arrays form.
///
/// ```rust
/// use semloc_trace::{Instr, Reg, TraceBuffer};
///
/// let mut buf = TraceBuffer::new();
/// buf.push(&Instr::load(0x400, 0x1000, 8, Reg(1), None, None, 7));
/// buf.push(&Instr::alu(0x408, Some(Reg(2)), Some(Reg(1)), None, 9));
/// let decoded: Vec<Instr> = buf.iter().collect();
/// assert_eq!(decoded.len(), 2);
/// assert_eq!(decoded[0].mem_addr(), Some(0x1000));
/// ```
#[derive(Clone, Default)]
pub struct TraceBuffer {
    ops: Vec<u8>,
    pcs: Vec<u8>,
    addrs: Vec<u8>,
    regs: Vec<u8>,
    aux: Vec<u8>,
    // Decoder state at each block boundary; marks[k] describes the state
    // right before instruction (k+1)*BLOCK_LEN (block 0 starts from zero).
    marks: Vec<Mark>,
    // Encoder state (the decoder keeps its own copy in the cursor).
    prev_pc: u64,
    prev_addr: u64,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions stored.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the buffer holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total encoded size in bytes across all columns.
    pub fn encoded_bytes(&self) -> usize {
        self.ops.len() + self.pcs.len() + self.addrs.len() + self.regs.len() + self.aux.len()
    }

    /// Append one instruction.
    pub fn push(&mut self, i: &Instr) {
        if self.ops.len().is_multiple_of(BLOCK_LEN) && !self.ops.is_empty() {
            self.marks.push(Mark {
                p_pcs: self.pcs.len() as u32,
                p_addrs: self.addrs.len() as u32,
                p_regs: self.regs.len() as u32,
                p_aux: self.aux.len() as u32,
                prev_pc: self.prev_pc,
                prev_addr: self.prev_addr,
            });
        }
        let mut op = match i.kind {
            InstrKind::Alu { .. } => K_ALU,
            InstrKind::Load { .. } => K_LOAD,
            InstrKind::Store { .. } => K_STORE,
            InstrKind::Branch { .. } => K_BRANCH,
            InstrKind::Nop => K_NOP,
        };
        if i.src1.is_some() {
            op |= F_SRC1;
        }
        if i.src2.is_some() {
            op |= F_SRC2;
        }
        if i.dst.is_some() {
            op |= F_DST;
        }
        if i.result != 0 {
            op |= F_RESULT;
        }
        match i.kind {
            InstrKind::Branch { taken: true, .. } => op |= F_AUX,
            InstrKind::Load { hints: Some(_), .. } => op |= F_AUX,
            _ => {}
        }
        self.ops.push(op);

        put_varint(
            &mut self.pcs,
            zigzag(i.pc.wrapping_sub(self.prev_pc) as i64),
        );
        self.prev_pc = i.pc;

        for r in [i.src1, i.src2, i.dst].into_iter().flatten() {
            self.regs.push(r.0);
        }

        match i.kind {
            InstrKind::Alu { latency } => put_varint(&mut self.aux, latency as u64),
            InstrKind::Load { addr, size, hints } => {
                put_varint(
                    &mut self.addrs,
                    zigzag(addr.wrapping_sub(self.prev_addr) as i64),
                );
                self.addrs.push(size);
                self.prev_addr = addr;
                if let Some(h) = hints {
                    put_varint(&mut self.aux, h.pack() as u64);
                }
            }
            InstrKind::Store { addr, size } => {
                put_varint(
                    &mut self.addrs,
                    zigzag(addr.wrapping_sub(self.prev_addr) as i64),
                );
                self.addrs.push(size);
                self.prev_addr = addr;
            }
            InstrKind::Branch { target, .. } => {
                put_varint(&mut self.aux, zigzag(target.wrapping_sub(i.pc) as i64));
            }
            InstrKind::Nop => {}
        }

        if i.result != 0 {
            put_varint(&mut self.aux, i.result);
        }
    }

    /// Iterate the stored instructions in push order.
    pub fn iter(&self) -> TraceIter<'_> {
        TraceIter {
            buf: self,
            i: 0,
            p_pcs: 0,
            p_addrs: 0,
            p_regs: 0,
            p_aux: 0,
            prev_pc: 0,
            prev_addr: 0,
        }
    }

    /// Iterate the stored instructions starting at index `start`, seeking
    /// via the block marks: O(1) to the enclosing block boundary plus at
    /// most [`BLOCK_LEN`]`-1` decode-skips, instead of decoding the whole
    /// prefix. Starting at or past the end yields an exhausted iterator.
    pub fn iter_from(&self, start: usize) -> TraceIter<'_> {
        let start = start.min(self.ops.len());
        if start == self.ops.len() {
            let mut it = self.iter();
            it.i = self.ops.len();
            return it;
        }
        let block = start / BLOCK_LEN;
        let mut it = if block == 0 {
            self.iter()
        } else {
            let m = self.marks[block - 1];
            TraceIter {
                buf: self,
                i: block * BLOCK_LEN,
                p_pcs: m.p_pcs as usize,
                p_addrs: m.p_addrs as usize,
                p_regs: m.p_regs as usize,
                p_aux: m.p_aux as usize,
                prev_pc: m.prev_pc,
                prev_addr: m.prev_addr,
            }
        };
        for _ in it.i..start {
            it.next();
        }
        it
    }

    /// Serialize to the `SEMLOC02` on-disk format.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer; a short write is reported as
    /// [`io::ErrorKind::WriteZero`].
    pub fn write_semloc<W: Write>(&self, out: W) -> io::Result<()> {
        let mut w = crate::record::TraceWriter::new(out, 0)?;
        for i in self.iter() {
            w.instr(i);
        }
        if w.count() != self.len() as u64 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "trace serialization stopped early",
            ));
        }
        w.finish()?;
        Ok(())
    }

    /// Deserialize a buffer from the `SEMLOC02` on-disk format, validating
    /// the trailer.
    ///
    /// # Errors
    ///
    /// Returns any decoding error from [`TraceReader`](crate::TraceReader).
    pub fn read_semloc<R: Read>(input: R) -> io::Result<Self> {
        let mut r = crate::record::TraceReader::new(input)?;
        let mut buf = TraceBuffer::new();
        while let Some(i) = r.next_instr()? {
            buf.push(&i);
        }
        Ok(buf)
    }
}

impl std::fmt::Debug for TraceBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuffer")
            .field("instrs", &self.len())
            .field("encoded_bytes", &self.encoded_bytes())
            .finish()
    }
}

/// Sequential decoder over a [`TraceBuffer`].
#[derive(Clone, Debug)]
pub struct TraceIter<'a> {
    buf: &'a TraceBuffer,
    i: usize,
    p_pcs: usize,
    p_addrs: usize,
    p_regs: usize,
    p_aux: usize,
    prev_pc: u64,
    prev_addr: u64,
}

impl TraceIter<'_> {
    #[inline]
    fn reg(&mut self, present: bool) -> Option<Reg> {
        if present {
            let r = self.buf.regs[self.p_regs];
            self.p_regs += 1;
            Some(Reg(r))
        } else {
            None
        }
    }

    #[inline]
    fn mem_operand(&mut self) -> (u64, u8) {
        let delta = unzigzag(get_varint(&self.buf.addrs, &mut self.p_addrs));
        let addr = self.prev_addr.wrapping_add(delta as u64);
        self.prev_addr = addr;
        let size = self.buf.addrs[self.p_addrs];
        self.p_addrs += 1;
        (addr, size)
    }
}

impl Iterator for TraceIter<'_> {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        if self.i >= self.buf.ops.len() {
            return None;
        }
        let op = self.buf.ops[self.i];
        self.i += 1;

        let delta = unzigzag(get_varint(&self.buf.pcs, &mut self.p_pcs));
        let pc = self.prev_pc.wrapping_add(delta as u64);
        self.prev_pc = pc;

        let src1 = self.reg(op & F_SRC1 != 0);
        let src2 = self.reg(op & F_SRC2 != 0);
        let dst = self.reg(op & F_DST != 0);

        let kind = match op & KIND_MASK {
            K_ALU => InstrKind::Alu {
                latency: get_varint(&self.buf.aux, &mut self.p_aux) as u32,
            },
            K_LOAD => {
                let (addr, size) = self.mem_operand();
                let hints = (op & F_AUX != 0).then(|| {
                    SemanticHints::unpack(get_varint(&self.buf.aux, &mut self.p_aux) as u32)
                });
                InstrKind::Load { addr, size, hints }
            }
            K_STORE => {
                let (addr, size) = self.mem_operand();
                InstrKind::Store { addr, size }
            }
            K_BRANCH => {
                let tdelta = unzigzag(get_varint(&self.buf.aux, &mut self.p_aux));
                InstrKind::Branch {
                    taken: op & F_AUX != 0,
                    target: pc.wrapping_add(tdelta as u64),
                }
            }
            _ => InstrKind::Nop,
        };

        let result = if op & F_RESULT != 0 {
            get_varint(&self.buf.aux, &mut self.p_aux)
        } else {
            0
        };

        Some(Instr {
            pc,
            kind,
            src1,
            src2,
            dst,
            result,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.buf.ops.len() - self.i;
        (rem, Some(rem))
    }
}

/// A [`TraceSink`] that captures into a [`TraceBuffer`], mirroring the
/// budget gating of the simulated core: instructions are accepted while the
/// count is below `limit` and silently dropped after, and `done()` flips
/// exactly when the limit is reached (`limit == 0` is unbounded). This
/// makes a capture see the *same* `done()` transitions a budgeted
/// [`Cpu`](crate::TraceSink)-driven run would, so the captured stream is
/// bit-identical to what the simulator consumed.
#[derive(Debug, Default)]
pub struct BufferSink {
    buf: TraceBuffer,
    limit: u64,
}

impl BufferSink {
    /// Capture at most `limit` instructions (0 = unbounded).
    pub fn with_limit(limit: u64) -> Self {
        BufferSink {
            buf: TraceBuffer::new(),
            limit,
        }
    }

    /// Instructions captured so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the sink, returning the captured buffer.
    pub fn into_buffer(self) -> TraceBuffer {
        self.buf
    }
}

impl TraceSink for BufferSink {
    fn instr(&mut self, instr: Instr) {
        if !self.done() {
            self.buf.push(&instr);
        }
    }

    fn done(&self) -> bool {
        self.limit != 0 && self.buf.len() as u64 >= self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RecordingSink;

    fn sample() -> Vec<Instr> {
        vec![
            Instr::load(
                0x400,
                0x1234,
                8,
                Reg(3),
                Some(Reg(1)),
                Some(SemanticHints::link(7, 16)),
                0xAB,
            ),
            Instr::alu(0x408, Some(Reg(4)), Some(Reg(3)), None, 99),
            Instr::store(0x410, 0x5678, 8, Some(Reg(4)), Some(Reg(3))),
            Instr::branch(0x418, true, 0x400, Some(Reg(4))),
            Instr::branch(0x420, false, 0x500, None),
            Instr::nop(0x428),
            // Backwards-moving PC and address exercise negative deltas.
            Instr::load(0x200, 0x100, 4, Reg(1), None, None, 0),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let mut buf = TraceBuffer::new();
        for i in sample() {
            buf.push(&i);
        }
        let decoded: Vec<Instr> = buf.iter().collect();
        assert_eq!(decoded, sample());
    }

    #[test]
    fn large_random_stream_roundtrips() {
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut instrs = Vec::new();
        for i in 0..20_000u64 {
            let r = next();
            instrs.push(match r % 5 {
                0 => Instr::load(
                    i * 8,
                    next(),
                    (1 << (r % 4)) as u8,
                    Reg((r % 32) as u8),
                    (r & 32 != 0).then(|| Reg((next() % 32) as u8)),
                    (r & 64 != 0)
                        .then(|| SemanticHints::link((r >> 8) as u16, (r % 0x4000) as u16)),
                    next(),
                ),
                1 => Instr::alu(
                    next(),
                    Some(Reg((r % 32) as u8)),
                    None,
                    Some(Reg((next() % 32) as u8)),
                    next(),
                ),
                2 => Instr::store(i * 8, next(), 8, Some(Reg((r % 32) as u8)), None),
                3 => Instr::branch(next(), r & 8 != 0, next(), None),
                _ => Instr::nop(next()),
            });
        }
        let mut buf = TraceBuffer::new();
        for i in &instrs {
            buf.push(i);
        }
        let decoded: Vec<Instr> = buf.iter().collect();
        assert_eq!(decoded, instrs);
        assert!(
            buf.encoded_bytes() < instrs.len() * 34,
            "SoA encoding must beat the ~34-byte flat Instr struct (got {} bytes for {} instrs)",
            buf.encoded_bytes(),
            instrs.len()
        );
    }

    #[test]
    fn sequential_stream_is_compact() {
        // A streaming loop (fixed pc step, fixed stride) should cost only a
        // few bytes per instruction once deltas kick in.
        let mut buf = TraceBuffer::new();
        for i in 0..10_000u64 {
            buf.push(&Instr::load(
                0x400,
                0x10_0000 + i * 64,
                8,
                Reg(1),
                None,
                None,
                0,
            ));
        }
        // op 1 + pc-delta 1 + addr-delta 2 + size 1 + dst reg 1 = 6 bytes,
        // vs ~34 for the flat struct and ~30 for SEMLOC02.
        let per_instr = buf.encoded_bytes() as f64 / buf.len() as f64;
        assert!(
            per_instr < 6.5,
            "streaming loads should encode near 6 B/instr, got {per_instr:.1}"
        );
    }

    #[test]
    fn semloc_format_roundtrip_matches() {
        let mut buf = TraceBuffer::new();
        for i in sample() {
            buf.push(&i);
        }
        let mut bytes = Vec::new();
        buf.write_semloc(&mut bytes).unwrap();
        // The serialized form is a valid SEMLOC02 trace...
        let mut sink = RecordingSink::new();
        crate::record::TraceReader::new(&bytes[..])
            .unwrap()
            .replay(&mut sink)
            .unwrap();
        assert_eq!(sink.instrs(), sample().as_slice());
        // ...and reading it back into a buffer preserves the stream.
        let back = TraceBuffer::read_semloc(&bytes[..]).unwrap();
        assert_eq!(back.iter().collect::<Vec<_>>(), sample());
    }

    #[test]
    fn read_semloc_rejects_garbage() {
        assert!(TraceBuffer::read_semloc(&b"NOTATRACE"[..]).is_err());
    }

    #[test]
    fn buffer_sink_gates_like_the_core() {
        let mut s = BufferSink::with_limit(3);
        for i in sample() {
            s.instr(i);
        }
        assert!(s.done());
        let buf = s.into_buffer();
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.iter().collect::<Vec<_>>(), sample()[..3].to_vec());
    }

    #[test]
    fn unbounded_sink_captures_everything() {
        let mut s = BufferSink::with_limit(0);
        for i in sample() {
            s.instr(i);
        }
        assert!(!s.done());
        assert_eq!(s.len(), sample().len());
    }

    #[test]
    fn iter_from_matches_skip_everywhere() {
        let mut state = 0x5eed_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state
        };
        let mut buf = TraceBuffer::new();
        let n = 3 * BLOCK_LEN + 17;
        for i in 0..n as u64 {
            let r = next();
            buf.push(&match r % 3 {
                0 => Instr::load(i * 8, next(), 8, Reg((r % 32) as u8), None, None, next()),
                1 => Instr::branch(next(), r & 8 != 0, next(), None),
                _ => Instr::alu(next(), Some(Reg(1)), None, None, next()),
            });
        }
        let all: Vec<Instr> = buf.iter().collect();
        // Boundaries, mid-block, the very end, and past the end.
        for start in [0, 1, 255, 256, 257, 511, 512, 700, n - 1, n, n + 5] {
            let got: Vec<Instr> = buf.iter_from(start).collect();
            assert_eq!(got, all[start.min(n)..], "start {start}");
        }
    }

    #[test]
    fn zigzag_roundtrips_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 8, -8] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut bytes = Vec::new();
        put_varint(&mut bytes, u64::MAX);
        let mut pos = 0;
        assert_eq!(get_varint(&bytes, &mut pos), u64::MAX);
        assert_eq!(pos, bytes.len());
    }
}
