//! Simulated virtual address space with pluggable placement policies.
//!
//! The paper's central experiment contrasts *naive, pointer-based* layouts
//! with *spatially optimized* ones (§7.5, Fig 14), and its motivating Fig 1
//! shows a linked list whose nodes "quickly lose consecutive order in
//! memory". To reproduce both regimes, every workload allocation goes
//! through an [`AddressSpace`] configured with a [`Placement`] policy:
//!
//! * [`Placement::Bump`] — sequential carving, maximal spatial locality
//!   (models arrays and arena allocation);
//! * [`Placement::Scatter`] — allocations of each size class are handed out
//!   in random order from shuffled slabs (models a churned heap where
//!   consecutive `malloc`s land far apart);
//! * [`Placement::Pools`] — size-class pools filled sequentially but
//!   interleaved across classes (models a real `malloc` under moderate
//!   churn: locality within a type, interleaving between types).
//!
//! Addresses are only *names* — no data is stored — but allocations never
//! overlap, which property tests verify.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeMap;

use crate::Addr;

/// Base of the simulated heap. Chosen to look like a typical x86-64 heap
/// address and to keep workload addresses clear of the (synthetic) code
/// addresses used for PCs.
pub const HEAP_BASE: Addr = 0x0000_5555_0000_0000;

/// Size of the slab carved per size class when a scatter/pool bag runs dry.
///
/// 4 KiB mirrors page-local slab allocators: scattered allocations are
/// spatially unordered *within* a slab but stay page-local, which is the
/// regime the paper's 1-byte block deltas (±4 kB at 32-byte granularity,
/// §5/§7.3) are designed for.
const SLAB_BYTES: u64 = 1 << 12;

/// Placement policy for [`AddressSpace`].
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Placement {
    /// Sequential bump allocation: consecutive `alloc` calls return
    /// consecutive addresses. Maximal spatial locality.
    #[default]
    Bump,
    /// Slot-scattering: each size class pre-carves slabs and hands out slots
    /// in random order, so consecutive allocations are spatially unrelated.
    Scatter,
    /// Size-class pools: each class bumps within its own slab, giving
    /// locality within a class but interleaving between classes.
    Pools,
}

/// A simulated virtual-address allocator.
///
/// Deterministic for a given `(seed, policy)` pair, so replaying a workload
/// with the same seed reproduces the identical address stream.
#[derive(Debug)]
pub struct AddressSpace {
    policy: Placement,
    rng: StdRng,
    brk: Addr,
    allocated: u64,
    /// Free slots per size class (Scatter). Keyed by size class; a BTreeMap
    /// keeps any future iteration deterministic (rule D1) — the randomized
    /// part of scatter placement lives in the seeded shuffle, not the map.
    bags: BTreeMap<u64, Vec<Addr>>,
    /// Bump cursor and slab end per size class (Pools).
    pools: BTreeMap<u64, (Addr, Addr)>,
}

impl AddressSpace {
    /// Create an address space with the given RNG seed and placement policy.
    pub fn new(seed: u64, policy: Placement) -> Self {
        AddressSpace {
            policy,
            rng: StdRng::seed_from_u64(seed ^ 0x5ee1_0c8a_11e5_7a11),
            brk: HEAP_BASE,
            allocated: 0,
            bags: BTreeMap::new(),
            pools: BTreeMap::new(),
        }
    }

    /// The placement policy in use.
    pub fn placement(&self) -> &Placement {
        &self.policy
    }

    /// Total bytes handed out so far (rounded to size classes).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }

    /// Allocate `size` bytes (8-byte aligned). Returns the base address.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn alloc(&mut self, size: u64) -> Addr {
        assert!(size > 0, "zero-sized allocation");
        let class = size_class(size);
        self.allocated += class;
        match self.policy {
            Placement::Bump => self.bump(class),
            Placement::Scatter => self.scatter(class),
            Placement::Pools => self.pool(class),
        }
    }

    /// Allocate a contiguous array of `count` elements of `elem_size` bytes,
    /// always placed sequentially regardless of policy (arrays are contiguous
    /// in any layout; only *object* placement differs between layouts).
    pub fn alloc_array(&mut self, elem_size: u64, count: u64) -> Addr {
        assert!(elem_size > 0 && count > 0, "zero-sized array allocation");
        let bytes = elem_size * count;
        self.allocated += bytes;
        self.bump(round_up(bytes, 8))
    }

    fn bump(&mut self, bytes: u64) -> Addr {
        let a = self.brk;
        self.brk += bytes;
        a
    }

    #[allow(clippy::expect_used)]
    fn scatter(&mut self, class: u64) -> Addr {
        let bag = self.bags.entry(class).or_default();
        if bag.is_empty() {
            let slots = (SLAB_BYTES / class).max(1);
            let base = self.brk;
            self.brk += slots * class;
            bag.extend((0..slots).map(|i| base + i * class));
            bag.shuffle(&mut self.rng);
        }
        // semloc-lint: allow(no-unwrap): the refill above banked `slots >= 1` addresses
        bag.pop().expect("slab refill produced at least one slot")
    }

    fn pool(&mut self, class: u64) -> Addr {
        let (cursor, end) = match self.pools.get(&class) {
            Some(&(c, e)) if c + class <= e => (c, e),
            _ => {
                let base = self.brk;
                self.brk += SLAB_BYTES.max(class);
                (base, base + SLAB_BYTES.max(class))
            }
        };
        self.pools.insert(class, (cursor + class, end));
        cursor
    }
}

/// Round `size` up to its allocation size class (8-byte aligned, power of
/// two up to 4 KiB, then 4 KiB multiples) — mirrors a slab malloc.
fn size_class(size: u64) -> u64 {
    if size <= 8 {
        8
    } else if size <= 4096 {
        size.next_power_of_two()
    } else {
        round_up(size, 4096)
    }
}

fn round_up(v: u64, to: u64) -> u64 {
    v.div_ceil(to) * to
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_is_sequential() {
        let mut s = AddressSpace::new(1, Placement::Bump);
        let a = s.alloc(32);
        let b = s.alloc(32);
        assert_eq!(b, a + 32);
    }

    #[test]
    fn scatter_is_not_sequential_but_disjoint() {
        let mut s = AddressSpace::new(1, Placement::Scatter);
        let addrs: Vec<Addr> = (0..256).map(|_| s.alloc(32)).collect();
        let sequential = addrs.windows(2).filter(|w| w[1] == w[0] + 32).count();
        // A shuffled bag leaves almost no consecutive pairs.
        assert!(
            sequential < 32,
            "scatter produced {sequential} sequential pairs"
        );
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        assert!(
            sorted.windows(2).all(|w| w[1] - w[0] >= 32),
            "overlapping slots"
        );
    }

    #[test]
    fn pools_keep_classes_contiguous() {
        let mut s = AddressSpace::new(1, Placement::Pools);
        let a1 = s.alloc(32);
        let _b = s.alloc(64);
        let a2 = s.alloc(32);
        assert_eq!(a2, a1 + 32, "same-class allocations should be adjacent");
    }

    #[test]
    fn arrays_are_contiguous_under_any_policy() {
        for policy in [Placement::Bump, Placement::Scatter, Placement::Pools] {
            let mut s = AddressSpace::new(7, policy);
            let base = s.alloc_array(8, 100);
            let next = s.alloc_array(8, 1);
            assert!(next >= base + 800);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = AddressSpace::new(42, Placement::Scatter);
        let mut b = AddressSpace::new(42, Placement::Scatter);
        for _ in 0..100 {
            assert_eq!(a.alloc(24), b.alloc(24));
        }
    }

    #[test]
    fn size_classes() {
        assert_eq!(size_class(1), 8);
        assert_eq!(size_class(9), 16);
        assert_eq!(size_class(24), 32);
        assert_eq!(size_class(4096), 4096);
        assert_eq!(size_class(5000), 8192);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_panics() {
        AddressSpace::new(0, Placement::Bump).alloc(0);
    }
}
