//! Convenience layer for workload kernels that emit instruction streams.
//!
//! [`Emitter`] wraps a [`TraceSink`] with methods mirroring the instruction
//! constructors, plus filler helpers; [`PcAlloc`] hands out stable synthetic
//! program counters so each *static code site* in a kernel keeps one PC
//! across the whole run (PC-indexed predictors depend on this).

use crate::instr::{Instr, Reg};
use crate::sink::TraceSink;
use crate::{Addr, SemanticHints};

/// Base of the synthetic code segment (clear of the simulated heap).
pub const CODE_BASE: Addr = 0x0000_0000_0040_0000;

/// Allocates stable synthetic program counters for static code sites.
///
/// ```rust
/// use semloc_trace::PcAlloc;
/// let mut pcs = PcAlloc::new(0);
/// let site_a = pcs.site();
/// let site_b = pcs.site();
/// assert_ne!(site_a, site_b);
/// ```
#[derive(Debug, Clone)]
pub struct PcAlloc {
    next: Addr,
}

impl PcAlloc {
    /// A PC allocator for the `region`-th kernel; regions are 64 KiB apart
    /// so different kernels never share PCs.
    pub fn new(region: u32) -> Self {
        PcAlloc {
            next: CODE_BASE + (region as Addr) * 0x1_0000,
        }
    }

    /// Allocate the next code-site PC (8-byte spaced, like real code).
    pub fn site(&mut self) -> Addr {
        let pc = self.next;
        self.next += 8;
        pc
    }

    /// Allocate `n` consecutive sites, returning the first.
    pub fn sites(&mut self, n: u32) -> Addr {
        let pc = self.next;
        self.next += 8 * n as Addr;
        pc
    }
}

/// Ergonomic instruction emission over any [`TraceSink`].
#[derive(Debug)]
pub struct Emitter<'a, S: TraceSink + ?Sized> {
    sink: &'a mut S,
    emitted: u64,
}

impl<'a, S: TraceSink + ?Sized> Emitter<'a, S> {
    /// Wrap a sink.
    pub fn new(sink: &'a mut S) -> Self {
        Emitter { sink, emitted: 0 }
    }

    /// Instructions emitted through this emitter so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Whether the sink has asked the producer to stop (budget exhausted).
    pub fn done(&self) -> bool {
        self.sink.done()
    }

    /// Emit a raw instruction.
    pub fn raw(&mut self, instr: Instr) {
        self.emitted += 1;
        self.sink.instr(instr);
    }

    /// Emit a load of 8 bytes at `addr` into `dst` (address from
    /// `addr_src`), producing `result`.
    pub fn load(
        &mut self,
        pc: Addr,
        addr: Addr,
        dst: Reg,
        addr_src: Option<Reg>,
        hints: Option<SemanticHints>,
        result: u64,
    ) {
        self.raw(Instr::load(pc, addr, 8, dst, addr_src, hints, result));
    }

    /// Emit a store of 8 bytes at `addr`.
    pub fn store(&mut self, pc: Addr, addr: Addr, addr_src: Option<Reg>, data_src: Option<Reg>) {
        self.raw(Instr::store(pc, addr, 8, addr_src, data_src));
    }

    /// Emit a 1-cycle ALU op.
    pub fn alu(
        &mut self,
        pc: Addr,
        dst: Option<Reg>,
        src1: Option<Reg>,
        src2: Option<Reg>,
        result: u64,
    ) {
        self.raw(Instr::alu(pc, dst, src1, src2, result));
    }

    /// Emit `n` independent 1-cycle ALU filler ops at `pc` (models the
    /// non-memory work between accesses, which sets `Prob(mem op)`).
    pub fn work(&mut self, pc: Addr, n: u32) {
        for _ in 0..n {
            self.raw(Instr::alu(pc, None, None, None, 0));
        }
    }

    /// Emit a long-latency ALU op (mul/div/fp), `latency` cycles.
    pub fn alu_long(&mut self, pc: Addr, latency: u32, dst: Option<Reg>, src1: Option<Reg>) {
        self.raw(Instr {
            pc,
            kind: crate::InstrKind::Alu { latency },
            src1,
            src2: None,
            dst,
            result: 0,
        });
    }

    /// Emit a branch.
    pub fn branch(&mut self, pc: Addr, taken: bool, target: Addr, cond_src: Option<Reg>) {
        self.raw(Instr::branch(pc, taken, target, cond_src));
    }

    /// Emit a no-op (e.g. to model hint-NOP overhead explicitly).
    pub fn nop(&mut self, pc: Addr) {
        self.raw(Instr::nop(pc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CountingSink, RecordingSink};

    #[test]
    fn pc_alloc_regions_do_not_collide() {
        let mut a = PcAlloc::new(0);
        let mut b = PcAlloc::new(1);
        for _ in 0..1000 {
            a.site();
        }
        assert!(b.site() > a.site());
    }

    #[test]
    fn emitter_counts_and_forwards() {
        let mut sink = RecordingSink::new();
        let mut em = Emitter::new(&mut sink);
        em.load(0x400000, 0x1000, Reg(1), None, None, 0);
        em.work(0x400008, 3);
        em.branch(0x400020, true, 0x400000, None);
        assert_eq!(em.emitted(), 5);
        assert_eq!(sink.instrs().len(), 5);
    }

    #[test]
    fn emitter_reports_sink_budget() {
        let mut sink = CountingSink::with_limit(2);
        let mut em = Emitter::new(&mut sink);
        em.work(0, 1);
        assert!(!em.done());
        em.work(0, 1);
        assert!(em.done());
    }
}
