//! The paper's headline claims, asserted as (scaled-down) integration
//! tests. These use reduced instruction budgets, so thresholds are looser
//! than the full-budget numbers recorded in `EXPERIMENTS.md`; the *shape*
//! (who wins, direction of effects) is what is locked in.

use semloc::harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc::mem::Prefetcher;
use semloc::workloads::kernel_by_name;

fn cfg() -> SimConfig {
    SimConfig::default().with_budget(200_000)
}

/// §1/§7.3: the context prefetcher outperforms spatio-temporal prefetchers
/// on irregular workloads.
#[test]
fn context_beats_spatio_temporal_on_irregular_workloads() {
    let c = cfg();
    let mut ctx_wins = 0;
    let names = ["mcf", "omnetpp", "list", "ssca_lds"];
    for name in names {
        let k = kernel_by_name(name).unwrap();
        let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &c);
        let ctx = run_kernel(k.as_ref(), &PrefetcherKind::context(), &c)
            .speedup_over(&base)
            .expect("finite IPCs");
        let best_other = [
            PrefetcherKind::Stride,
            PrefetcherKind::GhbGdc,
            PrefetcherKind::GhbPcdc,
            PrefetcherKind::Sms,
        ]
        .iter()
        .map(|pf| {
            run_kernel(k.as_ref(), pf, &c)
                .speedup_over(&base)
                .expect("finite IPCs")
        })
        .fold(0.0f64, f64::max);
        if ctx > best_other {
            ctx_wins += 1;
        }
        assert!(
            ctx > 1.1,
            "{name}: context must deliver a real speedup, got {ctx:.2}"
        );
    }
    assert!(
        ctx_wins >= 3,
        "context must win most irregular workloads ({ctx_wins}/4)"
    );
}

/// §7.2: the context prefetcher sharply reduces L2 MPKI on memory-bound
/// irregular code.
#[test]
fn context_reduces_l2_mpki_severalfold() {
    let k = kernel_by_name("mcf").unwrap();
    let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg());
    let ctx = run_kernel(k.as_ref(), &PrefetcherKind::context(), &cfg());
    assert!(
        ctx.l2_mpki() < base.l2_mpki() / 2.0,
        "L2 MPKI {} -> {} is not a substantial reduction",
        base.l2_mpki(),
        ctx.l2_mpki()
    );
}

/// §7.1: the prefetcher's hit depths concentrate in/after the reward
/// window start rather than below it.
#[test]
fn hit_depths_respond_to_the_reward_window() {
    let k = kernel_by_name("list").unwrap();
    let r = run_kernel(k.as_ref(), &PrefetcherKind::context(), &cfg());
    let learn = r.learn.unwrap();
    let in_or_after_window = 1.0 - learn.depth_cdf.cdf_at(17);
    assert!(
        in_or_after_window > 0.5,
        "only {in_or_after_window:.2} of hits at depth >= 18"
    );
}

/// Table 2: the context prefetcher's storage budget is ~31 kB and the
/// competitors are scaled to it.
#[test]
fn storage_budgets_match_table2() {
    let ctx = PrefetcherKind::context().build().storage_bytes() as f64 / 1024.0;
    assert!((24.0..=40.0).contains(&ctx), "context storage {ctx:.1} kB");
    for pf in [
        PrefetcherKind::GhbGdc,
        PrefetcherKind::Sms,
        PrefetcherKind::Stride,
    ] {
        let b = pf.build().storage_bytes() as f64 / 1024.0;
        assert!(
            (10.0..=40.0).contains(&b),
            "{} storage {b:.1} kB",
            pf.label()
        );
    }
}

/// §2.1/Fig 1: identical semantics, different layouts — the array twin of
/// the list traversal is far more spatially regular.
#[test]
fn layout_twins_differ_spatially() {
    let c = cfg();
    let list = run_kernel(
        kernel_by_name("list").unwrap().as_ref(),
        &PrefetcherKind::Stride,
        &c,
    );
    let array = run_kernel(
        kernel_by_name("array").unwrap().as_ref(),
        &PrefetcherKind::Stride,
        &c,
    );
    // Stride prefetching covers the array but is helpless on the list.
    let array_cover = array.mem.classes.hit_prefetched + array.mem.classes.shorter_wait;
    let list_cover = list.mem.classes.hit_prefetched + list.mem.classes.shorter_wait;
    assert!(
        array_cover > 100 * (list_cover + 1),
        "stride: array {array_cover} vs list {list_cover}"
    );
}

/// §7.5/Fig 14: the context prefetcher improves the naive linked layout
/// without touching the code (layout-agnostic programming).
#[test]
fn context_helps_naive_linked_layouts() {
    let c = cfg();
    let k = kernel_by_name("ssca2-list").unwrap();
    let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &c);
    let ctx = run_kernel(k.as_ref(), &PrefetcherKind::context(), &c);
    let s = ctx.speedup_over(&base).expect("finite IPCs");
    assert!(s > 1.05, "got {s:.3}");
}

/// The reducer's dynamic feature selection matters (DESIGN ablation A2):
/// with it frozen, irregular chains must not be learned better.
#[test]
fn frozen_reducer_does_not_beat_adaptive() {
    use semloc::context::ContextConfig;
    let c = cfg();
    let k = kernel_by_name("list").unwrap();
    let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &c);
    let adaptive = run_kernel(k.as_ref(), &PrefetcherKind::context(), &c)
        .speedup_over(&base)
        .expect("finite IPCs");
    let frozen_cfg = ContextConfig {
        freeze_reducer: true,
        initial_active: 1, // IP only, fixed
        ..ContextConfig::default()
    };
    let frozen = run_kernel(k.as_ref(), &PrefetcherKind::Context(frozen_cfg), &c)
        .speedup_over(&base)
        .expect("finite IPCs");
    assert!(
        adaptive >= frozen * 0.95,
        "adaptive {adaptive:.2} must not lose to frozen-IP-only {frozen:.2}"
    );
}
