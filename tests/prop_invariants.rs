//! Property-based tests over cross-crate invariants.

use proptest::prelude::*;

use semloc::bandit::scored::Replacement;
use semloc::bandit::{BellReward, RewardFunction, ScoredSet};
use semloc::context::{ContextKey, ContextStatesTable, PrefetchQueue};
use semloc::mem::{Cache, CacheConfig, LookupResult, MshrFile, MshrKind};
use semloc::trace::{AddressSpace, Placement};

proptest! {
    /// A cache never reports a hit for a line that was never filled, and
    /// always hits a line after an unconflicted fill completes.
    #[test]
    fn cache_coherence(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cache = Cache::new(CacheConfig { size_bytes: 4096, ways: 4, line_bytes: 64, latency: 1, mshrs: 4 });
        let mut filled = std::collections::BTreeSet::new();
        for (i, &a) in addrs.iter().enumerate() {
            let now = i as u64 * 10;
            match cache.lookup_demand(a, now, false) {
                LookupResult::Hit { .. } | LookupResult::InFlight { .. } => {
                    prop_assert!(filled.contains(&(a / 64)), "hit on never-filled line {a:#x}");
                }
                LookupResult::Miss => {
                    cache.fill(a, now, false, false);
                    filled.insert(a / 64);
                }
            }
            // Immediately after a fill the line must be present.
            prop_assert!(!matches!(cache.probe(a, now + 1_000_000), LookupResult::Miss));
        }
    }

    /// The cache's occupancy never exceeds its geometric capacity.
    #[test]
    fn cache_capacity_bound(addrs in proptest::collection::vec(0u64..10_000_000, 1..400)) {
        let mut cache = Cache::new(CacheConfig { size_bytes: 2048, ways: 2, line_bytes: 64, latency: 1, mshrs: 4 });
        for (i, &a) in addrs.iter().enumerate() {
            cache.fill(a, i as u64, i % 3 == 0, false);
            prop_assert!(cache.valid_lines() <= 32, "capacity is 32 lines");
        }
    }

    /// MSHR files never exceed capacity in concurrently-active entries and
    /// merge lookups only match the same line.
    #[test]
    fn mshr_capacity_and_merging(ops in proptest::collection::vec((0u64..100_000, 1u64..500), 1..100)) {
        let mut m = MshrFile::new(4, 64);
        let mut now = 0u64;
        for (addr, dt) in ops {
            now += dt;
            let before = m.free(now);
            prop_assert!(before <= 4);
            if m.lookup(addr, now).is_none() && before > 0 {
                prop_assert!(m.try_allocate(addr, now + 300, MshrKind::Demand, now));
                prop_assert_eq!(m.lookup(addr, now).map(|(f, _)| f), Some(now + 300));
                // Any address within the same line merges with the entry.
                prop_assert!(m.lookup((addr & !63) + 63, now).is_some());
            }
        }
    }

    /// The address space never hands out overlapping allocations, under any
    /// placement policy.
    #[test]
    fn allocations_never_overlap(
        sizes in proptest::collection::vec(1u64..300, 1..120),
        policy in prop_oneof![Just(Placement::Bump), Just(Placement::Scatter), Just(Placement::Pools)],
        seed in 0u64..1000,
    ) {
        let mut space = AddressSpace::new(seed, policy);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for s in sizes {
            let a = space.alloc(s);
            for &(b, len) in &spans {
                prop_assert!(a + s <= b || b + len <= a, "overlap: [{a}, {})+{s} vs [{b}, {})+{len}", a + s, b + len);
            }
            spans.push((a, s));
        }
    }

    /// Scored sets preserve: bounded size, the best candidate is maximal,
    /// and duplicate insertion never duplicates.
    #[test]
    fn scored_set_invariants(ops in proptest::collection::vec((0i8..20, -20i32..20), 1..200)) {
        let mut set: ScoredSet<i8, 4> = ScoredSet::new(Replacement::LowestScore);
        for (action, r) in ops {
            if r == 0 {
                set.insert(action);
            } else {
                set.reward(action, r);
            }
            prop_assert!(set.len() <= 4);
            let ranked = set.ranked();
            prop_assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1), "ranked must be sorted");
            if let Some((_, best)) = set.best() {
                prop_assert!(ranked.iter().all(|&(_, s)| s <= best));
            }
            let mut seen = std::collections::BTreeSet::new();
            prop_assert!(ranked.iter().all(|&(a, _)| seen.insert(a)), "duplicate action stored");
        }
    }

    /// The prefetch queue: every entry is rewarded at most once, expiry
    /// preserves FIFO order, and depth equals the sequence distance.
    #[test]
    fn prefetch_queue_invariants(blocks in proptest::collection::vec(0u64..32, 1..300)) {
        let mut q = PrefetchQueue::new(16);
        let mut hits = Vec::new();
        let mut total_hits = 0usize;
        let mut pushed = 0u64;
        for (seq, &b) in blocks.iter().enumerate() {
            let seq = seq as u64;
            hits.clear();
            q.record_access(b, seq, &mut hits);
            for h in &hits {
                prop_assert_eq!(h.depth as u64, seq - h.entry.issue_seq);
                prop_assert_eq!(h.entry.block, b);
            }
            total_hits += hits.len();
            let (_, expired) = q.push(b.wrapping_add(1), ContextKey(1), semloc::context::FullHash(0), 1, seq, seq.is_multiple_of(3));
            pushed += 1;
            if let Some(e) = expired {
                prop_assert!(e.issue_seq + 16 <= seq, "expired entry was not the oldest");
            }
            prop_assert!(q.len() <= 16);
        }
        prop_assert!(total_hits as u64 <= pushed, "each entry rewarded at most once");
    }

    /// The bell reward is bounded, peaks inside its window, and is negative
    /// only beyond the window's far edge.
    #[test]
    fn bell_reward_shape(lo in 2u32..40, span in 3u32..60, depth in 0u32..300) {
        let bell = BellReward::new(lo, lo + span, 16, -8, -4);
        let r = bell.reward(depth);
        prop_assert!((-8..=16).contains(&r));
        if depth <= lo + span {
            prop_assert!(r >= 0, "late/in-window reward must be non-negative, got {r} at {depth}");
        }
        prop_assert!(bell.reward((2 * lo + span) / 2) >= r || depth <= lo + span);
    }

    /// CST lookups never fabricate contexts: a lookup only succeeds for the
    /// key most recently written to that slot.
    #[test]
    fn cst_lookup_consistency(keys in proptest::collection::vec(0u32..0x7ffff, 1..150)) {
        let mut cst = ContextStatesTable::new(64, Replacement::LowestScore);
        let mut last_by_slot: std::collections::BTreeMap<usize, u32> = Default::default();
        for raw in keys {
            let key = ContextKey(raw);
            cst.add_candidate(key, 1);
            last_by_slot.insert(key.cst_index(64), raw);
            // Whatever is stored at this slot must correspond to the last
            // writer with a matching tag.
            prop_assert!(cst.lookup(key).is_some());
            for (&slot, &writer) in &last_by_slot {
                let w = ContextKey(writer);
                if slot == key.cst_index(64) && w.cst_tag() != key.cst_tag() {
                    prop_assert!(cst.lookup(w).is_none(), "stale context visible after overwrite");
                }
            }
        }
    }
}
