//! Cross-crate integration tests: full workload → core → hierarchy →
//! prefetcher runs through the public API.

use semloc::harness::{run_kernel, Matrix, PrefetcherKind, SimConfig};
use semloc::workloads::{all_kernels, kernel_by_name, microbenchmarks, spec_suite};

fn quick() -> SimConfig {
    SimConfig::default().with_budget(80_000)
}

#[test]
fn every_registered_workload_simulates_under_every_prefetcher() {
    let cfg = SimConfig::default().with_budget(25_000);
    let lineup = [
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::GhbGdc,
        PrefetcherKind::GhbPcdc,
        PrefetcherKind::Sms,
        PrefetcherKind::Markov,
        PrefetcherKind::NextLine,
        PrefetcherKind::context(),
    ];
    for kernel in all_kernels() {
        for pf in &lineup {
            let r = run_kernel(kernel.as_ref(), pf, &cfg);
            assert!(
                r.cpu.instructions >= cfg.instr_budget,
                "{}/{} stalled at {} instructions",
                kernel.name(),
                pf.label(),
                r.cpu.instructions
            );
            assert!(
                r.cpu.cycles > 0 && r.cpu.ipc() > 0.0,
                "{}/{} produced no cycles",
                kernel.name(),
                pf.label()
            );
            assert!(
                r.mem.demand_accesses > 0,
                "{}/{} made no memory accesses",
                kernel.name(),
                pf.label()
            );
        }
    }
}

#[test]
fn class_counts_cover_every_demand_access() {
    for name in ["mcf", "array", "bst"] {
        let k = kernel_by_name(name).unwrap();
        let r = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
        assert_eq!(
            r.mem.classes.demands(),
            r.mem.demand_accesses,
            "{name}: classification must partition the demand stream"
        );
    }
}

#[test]
fn miss_accounting_is_consistent() {
    for pf in [PrefetcherKind::None, PrefetcherKind::context()] {
        let k = kernel_by_name("list").unwrap();
        let r = run_kernel(k.as_ref(), &pf, &quick());
        // Misses + merges cannot exceed demand accesses; L2 misses cannot
        // exceed L1 misses (demand path).
        assert!(r.mem.l1_misses + r.mem.l1_mshr_merges <= r.mem.demand_accesses);
        assert!(r.mem.l2_misses <= r.mem.l1_misses);
    }
}

#[test]
fn prefetching_never_changes_instruction_count() {
    let k = kernel_by_name("hmmer").unwrap();
    let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &quick());
    let ctx = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
    assert_eq!(
        base.cpu.instructions, ctx.cpu.instructions,
        "prefetching is microarchitectural only"
    );
    assert_eq!(base.cpu.loads, ctx.cpu.loads);
    assert_eq!(base.cpu.branches, ctx.cpu.branches);
}

#[test]
fn matrix_runs_share_one_baseline() {
    let kernels = vec![kernel_by_name("list").unwrap()];
    let m = Matrix::run(
        &kernels,
        &[PrefetcherKind::Sms, PrefetcherKind::context()],
        &quick(),
        |_| {},
    );
    assert_eq!(m.prefetchers(), &["none", "sms", "context"]);
    let s_none = m.speedup("list", "none").unwrap();
    assert!((s_none - 1.0).abs() < 1e-12);
    assert!(m.speedup("list", "context").unwrap() > 0.5);
}

#[test]
fn registry_partitions_are_consistent() {
    let total = all_kernels().len();
    assert_eq!(
        microbenchmarks().len() + spec_suite().len() + 7,
        total,
        "3 PBBS + 2 Graph500 + 2 HPCS"
    );
}

#[test]
fn issue_threshold_throttles_real_prefetches() {
    use semloc::context::ContextConfig;
    let k = kernel_by_name("bst").unwrap();
    let default_run = run_kernel(k.as_ref(), &PrefetcherKind::context(), &quick());
    let cfg = ContextConfig {
        issue_score_threshold: 100, // only near-saturated candidates qualify
        max_degree: 1,
        ..ContextConfig::default()
    };
    let strict = run_kernel(k.as_ref(), &PrefetcherKind::Context(cfg), &quick());
    assert!(
        strict.mem.prefetches_issued < default_run.mem.prefetches_issued / 2,
        "strict threshold must issue far fewer real prefetches ({} vs {})",
        strict.mem.prefetches_issued,
        default_run.mem.prefetches_issued
    );
    let learn = strict.learn.unwrap();
    assert!(
        learn.shadow_issued > 0,
        "training must continue through shadows"
    );
}

#[test]
fn calibrated_context_runs_and_learns() {
    let k = kernel_by_name("mcf").unwrap();
    let r = run_kernel(k.as_ref(), &PrefetcherKind::context_calibrated(), &quick());
    let learn = r.learn.expect("learning stats");
    assert!(learn.collected > 0);
    assert!(r.cpu.ipc() > 0.0);
}
