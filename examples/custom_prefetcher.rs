//! Implementing your own prefetcher against the `Prefetcher` trait and
//! racing it against the built-ins.
//!
//! The example builds a tiny "PC-localized next-two-lines" prefetcher in
//! ~30 lines, attaches it to the simulated hierarchy, and compares it with
//! next-line and the context prefetcher on a streaming and an irregular
//! workload.
//!
//! ```sh
//! cargo run --release --example custom_prefetcher
//! ```

use semloc::cpu::{Cpu, CpuConfig};
use semloc::harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc::mem::{Hierarchy, MemConfig, MemPressure, PrefetchReq, Prefetcher};
use semloc::trace::AccessContext;
use semloc::workloads::kernel_by_name;

/// Prefetch the next two lines, but only for PCs that have recently missed
/// in a forward direction — a toy design, implemented from scratch.
#[derive(Debug, Default)]
struct NextTwoForward {
    last_addr: [u64; 16],
    issued: u64,
}

impl Prefetcher for NextTwoForward {
    fn name(&self) -> &'static str {
        "next-two-forward"
    }

    fn on_access(
        &mut self,
        ctx: &AccessContext,
        _pressure: MemPressure,
        out: &mut Vec<PrefetchReq>,
    ) {
        let slot = ((ctx.pc >> 3) & 15) as usize;
        let prev = self.last_addr[slot];
        self.last_addr[slot] = ctx.addr;
        if ctx.addr > prev && ctx.addr - prev < 4096 {
            let line = ctx.addr & !63;
            out.push(PrefetchReq::real(line + 64, 1));
            out.push(PrefetchReq::real(line + 128, 2));
            self.issued += 2;
        }
    }

    fn storage_bytes(&self) -> usize {
        16 * 8
    }
}

fn run_custom(kernel_name: &str, cfg: &SimConfig) -> f64 {
    // Wiring a prefetcher manually (what `run_kernel` does internally).
    let kernel = kernel_by_name(kernel_name).expect("workload");
    let hierarchy = Hierarchy::new(MemConfig::default(), NextTwoForward::default());
    let mut cpu = Cpu::new(CpuConfig::default(), hierarchy, cfg.instr_budget);
    kernel.run(&mut cpu);
    let (stats, _) = cpu.finish();
    stats.ipc()
}

fn main() {
    let cfg = SimConfig::default().with_budget(200_000);
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "workload", "custom", "next-line", "context"
    );
    for name in ["array", "hmmer", "list", "mcf"] {
        let kernel = kernel_by_name(name).expect("workload");
        let base = run_kernel(kernel.as_ref(), &PrefetcherKind::None, &cfg);
        let custom = run_custom(name, &cfg) / base.cpu.ipc();
        let nl = run_kernel(kernel.as_ref(), &PrefetcherKind::NextLine, &cfg)
            .speedup_over(&base)
            .expect("finite IPCs");
        let ctx = run_kernel(kernel.as_ref(), &PrefetcherKind::context(), &cfg)
            .speedup_over(&base)
            .expect("finite IPCs");
        println!("{name:<12} {custom:>11.2}x {nl:>11.2}x {ctx:>11.2}x");
    }
    println!("\n(a 128-byte table buys decent streaming coverage; semantic patterns need the context prefetcher)");
}
