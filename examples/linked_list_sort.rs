//! The paper's motivating example (Fig 1): linked-list insertion sort.
//!
//! Shows both halves of the argument:
//! 1. the *physical* access stream is disordered while the *logical*
//!    traversal is perfectly linear (semantic locality), and
//! 2. the context prefetcher exploits exactly that recurrence at runtime.
//!
//! ```sh
//! cargo run --release --example linked_list_sort
//! ```

use semloc::harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc::trace::{InstrKind, RecordingSink};
use semloc::workloads::ukernels::ListSort;
use semloc::workloads::Kernel;

fn main() {
    // --- 1. inspect the access stream itself ---
    let kernel = ListSort {
        elems: 100,
        seed: 42,
    };
    let mut sink = RecordingSink::with_limit(30_000);
    kernel.run(&mut sink);
    let link_loads: Vec<u64> = sink
        .instrs()
        .iter()
        .filter_map(|i| match i.kind {
            InstrKind::Load {
                addr,
                hints: Some(_),
                ..
            } => Some(addr),
            _ => None,
        })
        .collect();

    // Physical disorder: how often does the next link load sit at a higher
    // address than the previous one (a sorted-in-memory list would be ~100%)?
    let ascending = link_loads.windows(2).filter(|w| w[1] > w[0]).count() as f64
        / (link_loads.len() - 1) as f64;
    // Semantic recurrence: how often is a (node -> next) transition one we
    // have seen before?
    let mut seen = std::collections::BTreeSet::new();
    let mut recurring = 0usize;
    for w in link_loads.windows(2) {
        if !seen.insert((w[0], w[1])) {
            recurring += 1;
        }
    }
    println!("linked-list insertion sort, 100 random elements:");
    println!(
        "  physical order:    {:.0}% of consecutive link loads ascend (random ~50%)",
        ascending * 100.0
    );
    println!(
        "  semantic order:    {:.0}% of node->next transitions recur across insertions",
        recurring as f64 / (link_loads.len() - 1) as f64 * 100.0
    );

    // --- 2. let the prefetcher exploit the recurrence ---
    let cfg = SimConfig::default().with_budget(300_000);
    let big = ListSort::default();
    let base = run_kernel(&big, &PrefetcherKind::None, &cfg);
    let stride = run_kernel(&big, &PrefetcherKind::Stride, &cfg);
    let ctx = run_kernel(&big, &PrefetcherKind::context(), &cfg);
    println!("\nfull-size run ({} elements):", big.elems);
    println!(
        "  stride prefetcher: {:.2}x (no spatial pattern to find)",
        stride.speedup_over(&base).expect("finite IPCs")
    );
    println!(
        "  context prefetcher: {:.2}x",
        ctx.speedup_over(&base).expect("finite IPCs")
    );
    if let Some(l) = &ctx.learn {
        println!(
            "  context learned {} associations, {:.0}% prediction accuracy",
            l.collected,
            l.prediction_accuracy() * 100.0
        );
    }
}
