//! Data-layout-agnostic programming (paper §7.5 / Fig 14): run Graph500
//! BFS in a spatially-optimized CSR layout and in a naive pointer-linked
//! layout, under several prefetchers, and compare what each prefetcher does
//! for the naive code.
//!
//! ```sh
//! cargo run --release --example graph_bfs
//! ```

use semloc::harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc::workloads::graph500::Graph500;

fn main() {
    let cfg = SimConfig::default().with_budget(300_000);
    let csr = Graph500::csr();
    let linked = Graph500::linked();
    let lineup = [
        PrefetcherKind::None,
        PrefetcherKind::Stride,
        PrefetcherKind::GhbPcdc,
        PrefetcherKind::Sms,
        PrefetcherKind::context(),
    ];

    println!("Graph500 BFS, 512 vertices x degree 8, same graph in two layouts\n");
    println!(
        "{:<11} {:>10} {:>13} {:>12}",
        "prefetcher", "CSR cpi", "linked cpi", "linked/CSR"
    );
    let mut base_linked = 0.0;
    let mut ctx_linked = 0.0;
    for pf in &lineup {
        let rc = run_kernel(&csr, pf, &cfg);
        let rl = run_kernel(&linked, pf, &cfg);
        if pf.label() == "none" {
            base_linked = rl.cpu.cpi();
        }
        if pf.label() == "context" {
            ctx_linked = rl.cpu.cpi();
        }
        println!(
            "{:<11} {:>10.2} {:>13.2} {:>12.2}",
            pf.label(),
            rc.cpu.cpi(),
            rl.cpu.cpi(),
            rl.cpu.cpi() / rc.cpu.cpi()
        );
    }
    println!(
        "\nthe naive linked layout improves {:.0}% under the context prefetcher without touching the code",
        (base_linked / ctx_linked - 1.0) * 100.0
    );
    println!("(the paper's point: semantic prefetching lets programmers skip spatial-layout contortions)");
}
