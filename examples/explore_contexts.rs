//! Peek inside a trained context prefetcher: which attributes did the
//! reducer activate, how full is the CST, and what do the strongest learned
//! context→delta associations look like?
//!
//! ```sh
//! cargo run --release --example explore_contexts
//! ```

use semloc::context::{Attr, ContextConfig, ContextPrefetcher};
use semloc::cpu::{Cpu, CpuConfig};
use semloc::mem::{Hierarchy, MemConfig};
use semloc::workloads::kernel_by_name;

fn main() {
    let kernel = kernel_by_name("list").expect("workload");
    println!("training the context prefetcher on `{}`...", kernel.name());

    let prefetcher = ContextPrefetcher::new(ContextConfig::default());
    let hierarchy = Hierarchy::new(MemConfig::default(), prefetcher);
    let mut cpu = Cpu::new(CpuConfig::default(), hierarchy, 300_000);
    kernel.run(&mut cpu);
    let (_, mem) = cpu.finish();
    let p = mem.prefetcher();

    println!("\n-- reducer: dynamic feature selection --");
    println!("attribute activation order: {:?}", Attr::ORDER);
    let hist = p.reducer().active_histogram();
    println!("active-attribute-count distribution over live reducer entries:");
    for (count, n) in hist.iter().enumerate() {
        if *n > 0 {
            println!(
                "  {count} attrs: {n:>6} entries  {}",
                "#".repeat((*n as usize / 50).min(60))
            );
        }
    }
    println!(
        "attribute activations: {} (context splits), deactivations: {} (context merges)",
        p.reducer().activations(),
        p.reducer().deactivations()
    );

    println!("\n-- context-states table --");
    println!(
        "occupancy: {}/{} entries",
        p.cst().occupancy(),
        p.cst().len()
    );
    let mut entries: Vec<(usize, Vec<(i16, i8)>)> = p.cst().dump().collect();
    entries.sort_by_key(|(_, links)| {
        std::cmp::Reverse(links.first().map(|&(_, s)| s).unwrap_or(i8::MIN))
    });
    println!("strongest learned associations (CST index -> ranked [delta x 32B blocks @ score]):");
    for (idx, links) in entries.iter().take(10) {
        let rendered: Vec<String> = links.iter().map(|(d, s)| format!("{d:+} @ {s}")).collect();
        println!("  [{idx:>4}] {}", rendered.join(", "));
    }

    let stats = p.learn_stats();
    println!("\n-- learning outcome --");
    println!("collected candidates: {}", stats.collected);
    println!(
        "prediction accuracy:  {:.0}%",
        stats.prediction_accuracy() * 100.0
    );
    println!(
        "hits in reward window: {:.0}%",
        stats.depth_cdf.fraction_in_window(18, 50) * 100.0
    );
}
