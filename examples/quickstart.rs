//! Quickstart: run one workload with and without the context-based
//! prefetcher and print the speedup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use semloc::harness::{run_kernel, PrefetcherKind, SimConfig};
use semloc::workloads::kernel_by_name;

fn main() {
    // Table 2 machine configuration, scaled-down steady-state phase.
    let cfg = SimConfig::default().with_budget(300_000);

    // Any Table 3 workload by name; `mcf` is the paper's heaviest pointer
    // chaser.
    let kernel = kernel_by_name("mcf").expect("mcf is registered");

    println!(
        "running `{}` on the Table-2 machine ({} instructions)...",
        kernel.name(),
        cfg.instr_budget
    );
    let baseline = run_kernel(kernel.as_ref(), &PrefetcherKind::None, &cfg);
    let context = run_kernel(kernel.as_ref(), &PrefetcherKind::context(), &cfg);

    println!("\n                 baseline    context");
    println!(
        "IPC            {:>9.3}  {:>9.3}",
        baseline.cpu.ipc(),
        context.cpu.ipc()
    );
    println!(
        "L1 MPKI        {:>9.1}  {:>9.1}",
        baseline.l1_mpki(),
        context.l1_mpki()
    );
    println!(
        "L2 MPKI        {:>9.2}  {:>9.2}",
        baseline.l2_mpki(),
        context.l2_mpki()
    );
    println!(
        "\nspeedup: {:.2}x",
        context.speedup_over(&baseline).expect("finite IPCs")
    );

    let learn = context.learn.expect("context prefetcher learning stats");
    println!(
        "prefetcher: {} real + {} shadow predictions, {:.0}% resolved as hits, {:.0}% of hits inside the 18-50 reward window",
        learn.real_issued,
        learn.shadow_issued,
        learn.prediction_accuracy() * 100.0,
        if learn.hits > 0 { learn.timely_hits as f64 / learn.hits as f64 * 100.0 } else { 0.0 },
    );
}
