//! The `semloc` command-line tool: run, compare, trace and inspect the
//! simulator without writing code.
//!
//! ```text
//! semloc list                         workloads and prefetchers
//! semloc run <kernel> [pf] [budget]   one simulation, full statistics
//! semloc compare <kernel> [budget]    every prefetcher on one workload
//! (run/compare take --json: machine-readable report incl. decode-cache counters)
//! semloc record <kernel> <file> [n]   write a binary trace
//! semloc replay <file> [pf]           simulate from a recorded trace
//! semloc inspect <kernel> [budget]    dump the trained prefetcher state
//! semloc table2                       print the machine configuration
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use semloc::context::{Attr, ContextConfig, ContextPrefetcher};
use semloc::cpu::{Cpu, CpuConfig};
use semloc::harness::{report, run_kernel, PrefetcherKind, RunResult, SimConfig, TraceStore};
use semloc::mem::{AccessClass, Hierarchy, MemConfig};
use semloc::trace::{TraceReader, TraceWriter};
use semloc::workloads::{all_kernels, kernel_by_name};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  semloc list\n  semloc run <kernel> [prefetcher] [budget] [--json]\n  semloc compare <kernel> [budget] [--json]\n  semloc record <kernel> <file> [instructions]\n  semloc replay <file> [prefetcher]\n  semloc inspect <kernel> [budget]\n  semloc table2"
    );
    ExitCode::from(2)
}

fn prefetcher_by_name(name: &str) -> Option<PrefetcherKind> {
    Some(match name {
        "none" => PrefetcherKind::None,
        "stride" => PrefetcherKind::Stride,
        "ghb-g/dc" | "ghb" => PrefetcherKind::GhbGdc,
        "ghb-pc/dc" => PrefetcherKind::GhbPcdc,
        "ghb-g/ac" => PrefetcherKind::GhbGac,
        "sms" => PrefetcherKind::Sms,
        "markov" => PrefetcherKind::Markov,
        "next-line" => PrefetcherKind::NextLine,
        "context" => PrefetcherKind::context(),
        "context-calibrated" => PrefetcherKind::context_calibrated(),
        _ => return None,
    })
}

const PREFETCHERS: [&str; 10] = [
    "none",
    "stride",
    "ghb-g/dc",
    "ghb-pc/dc",
    "ghb-g/ac",
    "sms",
    "markov",
    "next-line",
    "context",
    "context-calibrated",
];

fn print_result(r: &RunResult, baseline: Option<&RunResult>) {
    println!("workload:        {}", r.kernel);
    println!(
        "prefetcher:      {} ({:.1} kB)",
        r.prefetcher,
        r.storage_bytes as f64 / 1024.0
    );
    println!("instructions:    {}", r.cpu.instructions);
    println!("cycles:          {}", r.cpu.cycles);
    println!("IPC:             {:.3}", r.cpu.ipc());
    if let Some(b) = baseline {
        match r.speedup_over(b) {
            Ok(s) => println!("speedup:         {s:.2}x over no prefetching"),
            Err(e) => println!("speedup:         n/a ({e})"),
        }
    }
    println!(
        "L1 MPKI:         {:.2}   L2 MPKI: {:.2}",
        r.l1_mpki(),
        r.l2_mpki()
    );
    println!(
        "branches:        {} ({:.1}% mispredicted)",
        r.cpu.branches,
        if r.cpu.branches > 0 {
            r.cpu.mispredicts as f64 / r.cpu.branches as f64 * 100.0
        } else {
            0.0
        }
    );
    let c = &r.mem.classes;
    println!(
        "access classes:  hit-pf {:.1}% | shorter {:.1}% | non-timely {:.1}% | miss {:.1}% | hit-old {:.1}% | wrong {:.1}%",
        c.fraction(AccessClass::HitPrefetchedLine) * 100.0,
        c.fraction(AccessClass::ShorterWait) * 100.0,
        c.fraction(AccessClass::NonTimely) * 100.0,
        c.fraction(AccessClass::MissNotPrefetched) * 100.0,
        c.fraction(AccessClass::HitOlderDemand) * 100.0,
        c.wrong_fraction() * 100.0,
    );
    if let Some(l) = &r.learn {
        println!(
            "learning:        {} real + {} shadow, accuracy {:.0}%, {:.0}% of hits in the reward window",
            l.real_issued,
            l.shadow_issued,
            l.prediction_accuracy() * 100.0,
            if l.hits > 0 { l.timely_hits as f64 / l.hits as f64 * 100.0 } else { 0.0 },
        );
    }
}

fn cmd_list() -> ExitCode {
    println!("workloads (Table 3):");
    for k in all_kernels() {
        println!("  {:<14} {}", k.name(), k.suite().label());
    }
    println!("\nprefetchers:");
    for p in PREFETCHERS {
        println!("  {p}");
    }
    ExitCode::SUCCESS
}

/// The `--json` report for one run: flat metrics plus the decoded-trace
/// cache counters of the global [`TraceStore`]. Keys are stable — CI and
/// downstream tooling parse this shape.
fn run_json(r: &RunResult, baseline: &RunResult) -> String {
    let speedup = match r.speedup_over(baseline) {
        Ok(s) => format!("{s:.6}"),
        Err(_) => "null".to_string(),
    };
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"prefetcher\":\"{}\",",
            "\"instructions\":{},\"cycles\":{},\"ipc\":{:.6},",
            "\"speedup\":{},\"l1_mpki\":{:.6},\"l2_mpki\":{:.6},",
            "\"storage_bytes\":{},\"decode_cache\":{}}}"
        ),
        r.kernel,
        r.prefetcher,
        r.cpu.instructions,
        r.cpu.cycles,
        r.cpu.ipc(),
        speedup,
        r.l1_mpki(),
        r.l2_mpki(),
        r.storage_bytes,
        report::decode_cache_json(&TraceStore::global().decode_stats()),
    )
}

fn cmd_run(kernel: &str, pf: &str, budget: u64, json: bool) -> ExitCode {
    let Some(k) = kernel_by_name(kernel) else {
        eprintln!("unknown workload `{kernel}` (see `semloc list`)");
        return ExitCode::FAILURE;
    };
    let Some(pf) = prefetcher_by_name(pf) else {
        eprintln!("unknown prefetcher `{pf}` (see `semloc list`)");
        return ExitCode::FAILURE;
    };
    let cfg = SimConfig::default().with_budget(budget);
    let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
    let r = if matches!(pf, PrefetcherKind::None) {
        base.clone()
    } else {
        run_kernel(k.as_ref(), &pf, &cfg)
    };
    if json {
        println!("{}", run_json(&r, &base));
    } else {
        print_result(&r, Some(&base));
        println!(
            "decode cache:    {}",
            report::decode_cache_line(&TraceStore::global().decode_stats())
        );
    }
    ExitCode::SUCCESS
}

fn cmd_compare(kernel: &str, budget: u64, json: bool) -> ExitCode {
    let Some(k) = kernel_by_name(kernel) else {
        eprintln!("unknown workload `{kernel}`");
        return ExitCode::FAILURE;
    };
    let cfg = SimConfig::default().with_budget(budget);
    let base = run_kernel(k.as_ref(), &PrefetcherKind::None, &cfg);
    if json {
        let rows: Vec<String> = PREFETCHERS
            .iter()
            .map(|name| {
                let pf = prefetcher_by_name(name).expect("listed prefetchers exist");
                let r = if *name == "none" {
                    base.clone()
                } else {
                    run_kernel(k.as_ref(), &pf, &cfg)
                };
                run_json(&r, &base)
            })
            .collect();
        println!(
            "{{\"workload\":\"{}\",\"rows\":[{}],\"decode_cache\":{}}}",
            kernel,
            rows.join(","),
            report::decode_cache_json(&TraceStore::global().decode_stats()),
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<20} {:>8} {:>9} {:>9} {:>9}",
        "prefetcher", "IPC", "speedup", "L1 MPKI", "L2 MPKI"
    );
    for name in PREFETCHERS {
        let pf = prefetcher_by_name(name).expect("listed prefetchers exist");
        let r = if name == "none" {
            base.clone()
        } else {
            run_kernel(k.as_ref(), &pf, &cfg)
        };
        println!(
            "{:<20} {:>8.3} {:>8.2}x {:>9.2} {:>9.2}",
            name,
            r.cpu.ipc(),
            r.speedup_over(&base).unwrap_or(f64::NAN),
            r.l1_mpki(),
            r.l2_mpki()
        );
    }
    println!(
        "\ndecode cache: {}",
        report::decode_cache_line(&TraceStore::global().decode_stats())
    );
    ExitCode::SUCCESS
}

fn cmd_record(kernel: &str, path: &str, instrs: u64) -> ExitCode {
    let Some(k) = kernel_by_name(kernel) else {
        eprintln!("unknown workload `{kernel}`");
        return ExitCode::FAILURE;
    };
    let file = match File::create(path) {
        Ok(f) => BufWriter::new(f),
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = match TraceWriter::new(file, instrs) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("cannot write trace header: {e}");
            return ExitCode::FAILURE;
        }
    };
    k.run(&mut writer);
    let n = writer.count();
    match writer.finish() {
        Ok(_) => {
            println!("recorded {n} instructions of `{kernel}` to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("failed to finish trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_replay(path: &str, pf: &str) -> ExitCode {
    let Some(pf) = prefetcher_by_name(pf) else {
        eprintln!("unknown prefetcher `{pf}`");
        return ExitCode::FAILURE;
    };
    let file = match File::open(path) {
        Ok(f) => BufReader::new(f),
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reader = match TraceReader::new(file) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("not a semloc trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let hierarchy = Hierarchy::new(MemConfig::default(), pf.build());
    let mut cpu = Cpu::new(CpuConfig::default(), hierarchy, 0);
    match reader.replay(&mut cpu) {
        Ok(n) => {
            let (stats, mem) = cpu.finish();
            println!("replayed {n} instructions from {path}");
            println!(
                "IPC: {:.3}   L1 MPKI: {:.2}   L2 MPKI: {:.2}",
                stats.ipc(),
                mem.stats().l1_mpki(stats.instructions),
                mem.stats().l2_mpki(stats.instructions)
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_inspect(kernel: &str, budget: u64) -> ExitCode {
    let Some(k) = kernel_by_name(kernel) else {
        eprintln!("unknown workload `{kernel}`");
        return ExitCode::FAILURE;
    };
    let prefetcher = ContextPrefetcher::new(ContextConfig::default());
    let hierarchy = Hierarchy::new(MemConfig::default(), prefetcher);
    let mut cpu = Cpu::new(CpuConfig::default(), hierarchy, budget);
    k.run(&mut cpu);
    let (_, mem) = cpu.finish();
    let p = mem.prefetcher();
    println!("trained on `{kernel}` for {budget} instructions");
    println!("attribute order: {:?}", Attr::ORDER);
    let hist = p.reducer().active_histogram();
    println!("reducer active-attribute distribution:");
    for (count, n) in hist.iter().enumerate() {
        if *n > 0 {
            println!("  {count} attrs: {n} entries");
        }
    }
    println!(
        "splits: {}  merges: {}",
        p.reducer().activations(),
        p.reducer().deactivations()
    );
    println!("CST occupancy: {}/{}", p.cst().occupancy(), p.cst().len());
    let mut entries: Vec<(usize, Vec<(i16, i8)>)> = p.cst().dump().collect();
    entries.sort_by_key(|(_, l)| std::cmp::Reverse(l.first().map(|&(_, s)| s).unwrap_or(i8::MIN)));
    println!("strongest contexts:");
    for (idx, links) in entries.iter().take(8) {
        let shown: Vec<String> = links.iter().map(|(d, s)| format!("{d:+}@{s}")).collect();
        println!("  [{idx:>4}] {}", shown.join("  "));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let arg = |i: usize| args.get(i).map(String::as_str);
    let budget = |i: usize, default: u64| arg(i).and_then(|s| s.parse().ok()).unwrap_or(default);
    match arg(0) {
        Some("list") => cmd_list(),
        Some("run") => match arg(1) {
            Some(k) => cmd_run(k, arg(2).unwrap_or("context"), budget(3, 400_000), json),
            None => usage(),
        },
        Some("compare") => match arg(1) {
            Some(k) => cmd_compare(k, budget(2, 400_000), json),
            None => usage(),
        },
        Some("record") => match (arg(1), arg(2)) {
            (Some(k), Some(path)) => cmd_record(k, path, budget(3, 200_000)),
            _ => usage(),
        },
        Some("replay") => match arg(1) {
            Some(path) => cmd_replay(path, arg(2).unwrap_or("context")),
            None => usage(),
        },
        Some("inspect") => match arg(1) {
            Some(k) => cmd_inspect(k, budget(2, 400_000)),
            None => usage(),
        },
        Some("table2") => {
            println!("{}", SimConfig::default().table2());
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
