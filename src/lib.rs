//! # semloc — Semantic Locality and Context-based Prefetching
//!
//! A full Rust reproduction of Peled, Mannor, Weiser & Etsion,
//! *"Semantic Locality and Context-based Prefetching Using Reinforcement
//! Learning"* (ISCA 2015), including the simulation substrate the paper
//! ran on.
//!
//! This umbrella crate re-exports the workspace under stable module names
//! and hosts the runnable examples and cross-crate integration tests.
//!
//! | module | contents |
//! |---|---|
//! | [`trace`] | instruction/access records, semantic hints, simulated heap |
//! | [`mem`] | two-level cache hierarchy, MSHRs, prefetcher interface |
//! | [`cpu`] | trace-driven out-of-order core timing model |
//! | [`bandit`] | reinforcement-learning primitives (rewards, ε-greedy) |
//! | [`context`] | **the paper's context-based prefetcher** |
//! | [`baselines`] | stride, GHB (G/DC, PC/DC), SMS, Markov, next-line |
//! | [`workloads`] | Table 3 benchmarks (µkernels, Graph500, SSCA2, PBBS, SPEC proxies) |
//! | [`harness`] | run matrices, statistics, report formatting |
//!
//! # Quickstart
//!
//! ```rust
//! use semloc::harness::{run_kernel, PrefetcherKind, SimConfig};
//! use semloc::workloads::kernel_by_name;
//!
//! let cfg = SimConfig::default().with_budget(50_000);
//! let kernel = kernel_by_name("list").expect("registered workload");
//! let base = run_kernel(kernel.as_ref(), &PrefetcherKind::None, &cfg);
//! let ctx = run_kernel(kernel.as_ref(), &PrefetcherKind::context(), &cfg);
//! assert!(ctx.speedup_over(&base).expect("finite IPCs") > 0.5);
//! ```

pub use semloc_bandit as bandit;
pub use semloc_baselines as baselines;
pub use semloc_context as context;
pub use semloc_cpu as cpu;
pub use semloc_harness as harness;
pub use semloc_mem as mem;
pub use semloc_trace as trace;
pub use semloc_workloads as workloads;
